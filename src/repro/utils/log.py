"""Lightweight logging configuration shared by the library and the harness."""

from __future__ import annotations

import logging
import os
from typing import Optional

__all__ = ["get_logger"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_CONFIGURED = False


def _configure_root(level: Optional[str] = None) -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    level_name = level or os.environ.get("REPRO_LOG_LEVEL", "WARNING")
    logging.basicConfig(level=getattr(logging, level_name.upper(), logging.WARNING), format=_FORMAT)
    _CONFIGURED = True


def get_logger(name: str, level: Optional[str] = None) -> logging.Logger:
    """Return a library logger.

    The first call configures the root handler; the ``REPRO_LOG_LEVEL``
    environment variable controls verbosity (default ``WARNING`` so that
    pytest output stays clean).
    """
    _configure_root(level)
    logger = logging.getLogger(name)
    if level is not None:
        logger.setLevel(getattr(logging, level.upper(), logging.WARNING))
    return logger
