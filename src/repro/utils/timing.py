"""Wall-clock and per-phase timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager

__all__ = ["Timer", "PhaseTimer"]


@dataclass
class Timer:
    """A simple start/stop wall-clock timer.

    ``elapsed`` accumulates across multiple start/stop cycles, which is how
    the SBP driver charges time to the block-merge and MCMC phases
    separately.
    """

    elapsed: float = 0.0
    _started_at: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._started_at is not None:
            raise RuntimeError("Timer already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()


class PhaseTimer:
    """Accumulates elapsed time under named phases.

    Used to split SBP runtime into ``block_merge``, ``mcmc``,
    ``communication`` and ``finetune`` buckets so that the runtime model and
    the benchmark harness can report a breakdown comparable to the paper's
    discussion (e.g. DC-SBP's single-node fine-tuning bottleneck).
    """

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = {}

    def timer(self, phase: str) -> Timer:
        if phase not in self._timers:
            self._timers[phase] = Timer()
        return self._timers[phase]

    @contextmanager
    def measure(self, phase: str) -> Iterator[Timer]:
        with self.timer(phase).measure() as t:
            yield t

    def add(self, phase: str, seconds: float) -> None:
        """Charge ``seconds`` to ``phase`` without running a timer."""
        self.timer(phase).elapsed += float(seconds)

    def elapsed(self, phase: str) -> float:
        return self._timers[phase].elapsed if phase in self._timers else 0.0

    def total(self) -> float:
        return sum(t.elapsed for t in self._timers.values())

    def as_dict(self) -> Dict[str, float]:
        return {name: t.elapsed for name, t in sorted(self._timers.items())}

    def merge(self, other: "PhaseTimer") -> "PhaseTimer":
        """Accumulate another PhaseTimer's buckets into this one (in place)."""
        for name, t in other._timers.items():
            self.add(name, t.elapsed)
        return self
