"""Shared utilities: random number management, timers, and lightweight logging.

These helpers are intentionally dependency-free (beyond NumPy) so that every
other subpackage can use them without creating import cycles.
"""

from repro.utils.rng import RngRegistry, spawn_rng, derive_seed
from repro.utils.timing import Timer, PhaseTimer
from repro.utils.log import get_logger

__all__ = [
    "RngRegistry",
    "spawn_rng",
    "derive_seed",
    "Timer",
    "PhaseTimer",
    "get_logger",
]
