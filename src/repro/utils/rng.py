"""Deterministic random-number management.

Distributed SBP needs *independent but reproducible* random streams per MPI
rank (and per algorithm phase).  Seeding every rank with ``seed + rank`` is a
classic source of correlated streams; instead we derive child seeds with
NumPy's :class:`numpy.random.SeedSequence`, which is designed exactly for
spawning statistically independent streams from a root seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "RngRegistry"]


def derive_seed(root_seed: Optional[int], *path: int) -> int:
    """Derive a 63-bit integer seed from ``root_seed`` and a key path.

    Parameters
    ----------
    root_seed:
        The user-facing seed.  ``None`` yields a random seed (still returned
        as a concrete integer so the caller can log it).
    path:
        Integers identifying the consumer, e.g. ``(rank, phase_index)``.

    Returns
    -------
    int
        A deterministic function of ``(root_seed, *path)``.
    """
    if root_seed is None:
        root_seed = int(np.random.SeedSequence().entropy % (2**63 - 1))
    seq = np.random.SeedSequence(entropy=root_seed, spawn_key=tuple(int(p) for p in path))
    return int(seq.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))


def spawn_rng(root_seed: Optional[int], *path: int) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given key path."""
    return np.random.default_rng(derive_seed(root_seed, *path))


class RngRegistry:
    """A registry of named random streams derived from a single root seed.

    Each distinct key path gets its own generator, created lazily and cached,
    so that repeated lookups return the *same* generator object (and therefore
    continue the same stream).

    Examples
    --------
    >>> reg = RngRegistry(1234)
    >>> a = reg.get("mcmc", 0)
    >>> b = reg.get("mcmc", 1)
    >>> a is reg.get("mcmc", 0)
    True
    >>> a is b
    False
    """

    #: Namespace labels are hashed into integers via this table so that string
    #: keys can participate in SeedSequence spawn keys.
    _NAMESPACE_IDS: Dict[str, int] = {}

    def __init__(self, root_seed: Optional[int] = None) -> None:
        if root_seed is None:
            root_seed = int(np.random.SeedSequence().entropy % (2**63 - 1))
        self.root_seed = int(root_seed)
        self._streams: Dict[Tuple[int, ...], np.random.Generator] = {}

    @classmethod
    def _namespace_id(cls, name: str) -> int:
        if name not in cls._NAMESPACE_IDS:
            # Stable, order-independent hash of the namespace label.
            h = 0
            for ch in name:
                h = (h * 131 + ord(ch)) % (2**31 - 1)
            cls._NAMESPACE_IDS[name] = h
        return cls._NAMESPACE_IDS[name]

    def _key(self, path: Iterable) -> Tuple[int, ...]:
        key = []
        for part in path:
            if isinstance(part, str):
                key.append(self._namespace_id(part))
            else:
                key.append(int(part))
        return tuple(key)

    def get(self, *path) -> np.random.Generator:
        """Return the cached generator for ``path``, creating it if needed."""
        key = self._key(path)
        if key not in self._streams:
            self._streams[key] = spawn_rng(self.root_seed, *key)
        return self._streams[key]

    def seed_for(self, *path) -> int:
        """Return the integer seed that :meth:`get` would use for ``path``."""
        return derive_seed(self.root_seed, *self._key(path))

    def child(self, *path) -> "RngRegistry":
        """Return a new registry rooted at a derived seed.

        Useful for handing an entire independent seed universe to a simulated
        MPI rank.
        """
        return RngRegistry(self.seed_for(*path))
