"""Deterministic random-number management.

Distributed SBP needs *independent but reproducible* random streams per MPI
rank (and per algorithm phase).  Seeding every rank with ``seed + rank`` is a
classic source of correlated streams; instead we derive child seeds with
NumPy's :class:`numpy.random.SeedSequence`, which is designed exactly for
spawning statistically independent streams from a root seed.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "RngRegistry", "BatchedDrawRNG"]


def derive_seed(root_seed: Optional[int], *path: int) -> int:
    """Derive a 63-bit integer seed from ``root_seed`` and a key path.

    Parameters
    ----------
    root_seed:
        The user-facing seed.  ``None`` yields a random seed (still returned
        as a concrete integer so the caller can log it).
    path:
        Integers identifying the consumer, e.g. ``(rank, phase_index)``.

    Returns
    -------
    int
        A deterministic function of ``(root_seed, *path)``.
    """
    if root_seed is None:
        root_seed = int(np.random.SeedSequence().entropy % (2**63 - 1))
    seq = np.random.SeedSequence(entropy=root_seed, spawn_key=tuple(int(p) for p in path))
    return int(seq.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1))


def spawn_rng(root_seed: Optional[int], *path: int) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given key path."""
    return np.random.default_rng(derive_seed(root_seed, *path))


class RngRegistry:
    """A registry of named random streams derived from a single root seed.

    Each distinct key path gets its own generator, created lazily and cached,
    so that repeated lookups return the *same* generator object (and therefore
    continue the same stream).

    Examples
    --------
    >>> reg = RngRegistry(1234)
    >>> a = reg.get("mcmc", 0)
    >>> b = reg.get("mcmc", 1)
    >>> a is reg.get("mcmc", 0)
    True
    >>> a is b
    False
    """

    #: Namespace labels are hashed into integers via this table so that string
    #: keys can participate in SeedSequence spawn keys.
    _NAMESPACE_IDS: Dict[str, int] = {}

    def __init__(self, root_seed: Optional[int] = None) -> None:
        if root_seed is None:
            root_seed = int(np.random.SeedSequence().entropy % (2**63 - 1))
        self.root_seed = int(root_seed)
        self._streams: Dict[Tuple[int, ...], np.random.Generator] = {}

    @classmethod
    def _namespace_id(cls, name: str) -> int:
        if name not in cls._NAMESPACE_IDS:
            # Stable, order-independent hash of the namespace label.
            h = 0
            for ch in name:
                h = (h * 131 + ord(ch)) % (2**31 - 1)
            cls._NAMESPACE_IDS[name] = h
        return cls._NAMESPACE_IDS[name]

    def _key(self, path: Iterable) -> Tuple[int, ...]:
        key = []
        for part in path:
            if isinstance(part, str):
                key.append(self._namespace_id(part))
            else:
                key.append(int(part))
        return tuple(key)

    def get(self, *path) -> np.random.Generator:
        """Return the cached generator for ``path``, creating it if needed."""
        key = self._key(path)
        if key not in self._streams:
            self._streams[key] = spawn_rng(self.root_seed, *key)
        return self._streams[key]

    def seed_for(self, *path) -> int:
        """Return the integer seed that :meth:`get` would use for ``path``."""
        return derive_seed(self.root_seed, *self._key(path))

    def child(self, *path) -> "RngRegistry":
        """Return a new registry rooted at a derived seed.

        Useful for handing an entire independent seed universe to a simulated
        MPI rank.
        """
        return RngRegistry(self.seed_for(*path))


class BatchedDrawRNG:
    """Bit-exact ``Generator.random()`` / ``integers()`` over bulk raw draws.

    The merge-proposal walks make millions of tiny scalar RNG calls whose
    *order* is data-dependent (each draw's bound depends on the previous
    selection), so they cannot be replaced by one vectorized
    ``Generator.integers(size=...)`` call without changing the stream.  This
    wrapper gets the batching benefit anyway: it prefetches the underlying
    bit stream in large blocks (``BitGenerator.random_raw(size=...)`` — one
    numpy call per thousands of walk draws) and re-implements the exact
    word-to-value maps NumPy's :class:`~numpy.random.Generator` uses —

    * ``random()``: one 64-bit word, ``(word >> 11) · 2⁻⁵³``;
    * ``integers(low, high)`` with a range below 2³²: Lemire rejection
      sampling over buffered 32-bit half-words (the half-word buffer
      persists across calls, exactly like the generator's internal
      ``has_uint32`` state);
    * larger ranges: 64-bit Lemire rejection sampling —

    so every value returned is **bit-identical** to what the wrapped
    generator would have produced, and the walks' selections match the
    committed golden traces.  ``tests/test_batched_rng.py`` locks the
    emulation against NumPy across mixed call sequences.

    Call :meth:`sync` (or use the wrapper as a context manager) when done:
    it rewinds the wrapped generator to the pre-wrap state and advances it
    by exactly the words consumed, so subsequent draws *from the generator
    itself* continue the stream as if every call had gone through it.

    Requires a bit generator with ``advance`` (PCG64, the ``default_rng``
    family); :meth:`wrap` falls back to returning the plain generator
    otherwise.
    """

    __slots__ = (
        "_generator",
        "_bit_generator",
        "_initial_state",
        "_words",
        "_pos",
        "_consumed",
        "_buf32",
        "_prefetch",
        "_synced",
    )

    def __init__(self, generator: np.random.Generator, prefetch: int = 4096) -> None:
        self._generator = generator
        self._bit_generator = generator.bit_generator
        if not hasattr(self._bit_generator, "advance"):
            raise TypeError(
                f"{type(self._bit_generator).__name__} has no advance(); "
                "BatchedDrawRNG requires a PCG64-family bit generator"
            )
        state = copy.deepcopy(self._bit_generator.state)
        self._initial_state = state
        self._buf32: Optional[int] = int(state["uinteger"]) if state["has_uint32"] else None
        self._words: List[int] = []
        self._pos = 0
        self._consumed = 0
        self._prefetch = max(int(prefetch), 16)
        self._synced = False

    @classmethod
    def wrap(cls, generator, prefetch: int = 4096):
        """Return a batched wrapper, or ``generator`` itself if unsupported.

        Already-wrapped inputs (anything without a ``bit_generator``) are
        returned unchanged, so nesting is harmless.
        """
        bit_generator = getattr(generator, "bit_generator", None)
        if bit_generator is None or not hasattr(bit_generator, "advance"):
            return generator
        return cls(generator, prefetch=prefetch)

    # ------------------------------------------------------------------
    # Raw word supply
    # ------------------------------------------------------------------
    def _refill(self) -> None:
        self._words = self._bit_generator.random_raw(self._prefetch).tolist()
        self._pos = 0

    def _next64(self) -> int:
        if self._pos >= len(self._words):
            self._refill()
        word = self._words[self._pos]
        self._pos += 1
        self._consumed += 1
        return word

    def _next32(self) -> int:
        if self._buf32 is not None:
            value = self._buf32
            self._buf32 = None
            return value
        word = self._next64()
        # NumPy's buffered next_uint32 serves the low half first.
        self._buf32 = word >> 32
        return word & 0xFFFFFFFF

    # ------------------------------------------------------------------
    # Generator-compatible draws
    # ------------------------------------------------------------------
    def random(self) -> float:
        """Bit-identical to ``Generator.random()``."""
        return (self._next64() >> 11) * (1.0 / 9007199254740992.0)

    def integers(self, low: int, high: Optional[int] = None) -> int:
        """Bit-identical to ``Generator.integers(low, high)`` (int64 dtype)."""
        if high is None:
            low, high = 0, low
        span = int(high) - int(low) - 1  # inclusive range, as in NumPy
        if span < 0:
            raise ValueError("low >= high")
        if span == 0:
            return int(low)
        if span == 0xFFFFFFFF:
            # NumPy's special case: a full 32-bit range is one raw half-word.
            return int(low) + self._next32()
        if span < 0xFFFFFFFF:
            # Buffered 32-bit Lemire rejection sampling.
            span_excl = span + 1
            m = self._next32() * span_excl
            leftover = m & 0xFFFFFFFF
            if leftover < span_excl:
                threshold = (0x100000000 - span_excl) % span_excl
                while leftover < threshold:
                    m = self._next32() * span_excl
                    leftover = m & 0xFFFFFFFF
            return int(low) + (m >> 32)
        # 64-bit Lemire rejection sampling.
        span_excl = span + 1
        m = self._next64() * span_excl
        leftover = m & 0xFFFFFFFFFFFFFFFF
        if leftover < span_excl:
            threshold = (0x10000000000000000 - span_excl) % span_excl
            while leftover < threshold:
                m = self._next64() * span_excl
                leftover = m & 0xFFFFFFFFFFFFFFFF
        return int(low) + (m >> 64)

    # ------------------------------------------------------------------
    # State hand-back
    # ------------------------------------------------------------------
    def sync(self) -> np.random.Generator:
        """Hand the stream position back to the wrapped generator.

        The generator is rewound to its pre-wrap state, advanced by exactly
        the number of 64-bit words consumed, and its half-word buffer set to
        the emulation's — from here on it continues the stream bit-for-bit
        as if it had served every draw itself.  Idempotent.
        """
        if not self._synced:
            self._bit_generator.state = self._initial_state
            if self._consumed:
                self._bit_generator.advance(self._consumed)
            state = self._bit_generator.state
            state["has_uint32"] = 1 if self._buf32 is not None else 0
            state["uinteger"] = int(self._buf32) if self._buf32 is not None else 0
            self._bit_generator.state = state
            self._synced = True
        return self._generator

    def __enter__(self) -> "BatchedDrawRNG":
        return self

    def __exit__(self, *exc_info) -> None:
        self.sync()
