"""Cross-backend differential-testing harness.

The paper's headline guarantee for EDiSt is that the replicated blockmodels
stay bit-identical across ranks; this repository extends the same discipline
to its storage backends: under a fixed seed, every registered backend — the
``"dict"`` reference, the dense vectorized ``"csr"`` array and the
true-sparse ``"sparse_csr"`` representation (:data:`ALL_BACKENDS`) — must
walk through *exactly* the same sequence of states: identical merge
selections, identical assignments and identical description lengths at
every phase boundary, through sequential SBP, DC-SBP and EDiSt alike.  The
guarantee is enforced by tests (``tests/differential/``), not by
convention.

Two granularities are provided:

* :func:`trace_phases` drives block-merge / MCMC cycles by hand and captures
  a :class:`PhaseSnapshot` at every phase boundary (including the raw merge
  proposals, whose ΔDL floats are compared **bitwise**);
* :func:`run_backend_pair` runs a full pipeline (:func:`run_sequential`,
  :func:`run_dcsbp`, :func:`run_edist`) once per backend, and
  :func:`assert_results_identical` compares the end states plus the
  per-cycle history records (each of which is a phase-boundary DL).

The same discipline applies across *transports*: the threaded and the
multiprocess rank launchers (:data:`ALL_TRANSPORTS`) must be pure placement
decisions — :func:`run_transports` / :func:`assert_all_transports_identical`
hold DC-SBP and EDiSt to bit-identical results whichever substrate the
ranks run on.

:func:`golden_record` serialises a result for the golden-file regression
tests (description lengths are stored as ``float.hex`` so the comparison is
exact, not approximate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import SBPConfig
from repro.core.dcsbp import divide_and_conquer_sbp
from repro.core.edist import edist
from repro.core.mcmc import mcmc_phase
from repro.core.merges import propose_merges, select_and_apply_merges
from repro.core.results import SBPResult
from repro.core.sbp import stochastic_block_partition
from repro.graphs.graph import Graph
from repro.utils.rng import RngRegistry

__all__ = [
    "ALL_BACKENDS",
    "BACKEND_PAIR",
    "REFERENCE_BACKEND",
    "CANDIDATE_BACKENDS",
    "PhaseSnapshot",
    "PhaseTrace",
    "trace_phases",
    "assert_traces_identical",
    "run_sequential",
    "run_dcsbp",
    "run_edist",
    "run_backends",
    "run_backend_pair",
    "assert_results_identical",
    "assert_all_results_identical",
    "ALL_TRANSPORTS",
    "REFERENCE_TRANSPORT",
    "run_transports",
    "assert_all_transports_identical",
    "golden_record",
]

#: Every registered storage backend the differential suite compares: the
#: hash-map reference, the vectorized dense array and the scipy-free
#: true-sparse representation.  Mirrors the backend registry snapshot.
ALL_BACKENDS: Tuple[str, ...] = ("dict", "csr", "sparse_csr")

#: The backend whose behaviour defines correctness.
REFERENCE_BACKEND: str = "dict"

#: The backends compared against the reference (pairwise identity against a
#: common reference implies identity between the candidates too).
CANDIDATE_BACKENDS: Tuple[str, ...] = tuple(
    backend for backend in ALL_BACKENDS if backend != REFERENCE_BACKEND
)

#: Legacy alias (PR 2 era): the original two-backend comparison.
BACKEND_PAIR: Tuple[str, str] = ("dict", "csr")

#: The multi-rank transports the cross-transport suite compares (``"self"``
#: is excluded: it only ever runs single-rank launches).
ALL_TRANSPORTS: Tuple[str, ...] = ("threads", "processes")

#: The transport whose behaviour defines correctness (the original
#: simulated-MPI substrate).
REFERENCE_TRANSPORT: str = "threads"


@dataclass
class PhaseSnapshot:
    """The full observable state at one phase boundary.

    ``merge_proposals`` is only set for ``phase == "merge_proposals"`` and
    holds the ``(block, target, delta_dl)`` triples exactly as proposed —
    the ΔDL floats are compared bitwise, which is what pins down "identical
    merge selections" rather than merely identical outcomes.
    """

    cycle: int
    phase: str  # "merge_proposals" | "block_merge" | "mcmc"
    num_blocks: int
    description_length: float
    assignment: Optional[np.ndarray] = None
    merge_proposals: Optional[Tuple[Tuple[int, int, float], ...]] = None


@dataclass
class PhaseTrace:
    """Every phase boundary of one backend's run, in order."""

    backend: str
    snapshots: List[PhaseSnapshot]


def trace_phases(graph: Graph, config: SBPConfig, max_cycles: int = 4) -> PhaseTrace:
    """Run up to ``max_cycles`` (block-merge + MCMC) cycles, capturing state.

    The cycle structure mirrors the sequential driver (propose → select and
    apply → MCMC, halving the block count each cycle) but stops after a fixed
    number of cycles instead of running the golden-ratio search, so the trace
    covers the exploration phase deterministically on both backends.
    """
    rngs = RngRegistry(config.seed)
    blockmodel = Blockmodel.from_graph(graph, matrix_backend=config.matrix_backend)
    snapshots: List[PhaseSnapshot] = []
    for cycle in range(1, max_cycles + 1):
        num_to_merge = max(int(round(blockmodel.num_blocks * config.block_reduction_rate)), 0)
        if num_to_merge <= 0 or blockmodel.num_blocks - num_to_merge < config.min_blocks:
            break
        proposals = propose_merges(
            blockmodel, range(blockmodel.num_blocks), config, rngs.get("merge", cycle)
        )
        snapshots.append(
            PhaseSnapshot(
                cycle=cycle,
                phase="merge_proposals",
                num_blocks=blockmodel.num_blocks,
                description_length=blockmodel.description_length(),
                merge_proposals=tuple((p.block, p.target, p.delta_dl) for p in proposals),
            )
        )
        blockmodel = select_and_apply_merges(blockmodel, proposals, num_to_merge)
        snapshots.append(
            PhaseSnapshot(
                cycle=cycle,
                phase="block_merge",
                num_blocks=blockmodel.num_blocks,
                description_length=blockmodel.description_length(),
                assignment=blockmodel.assignment.copy(),
            )
        )
        phase = mcmc_phase(blockmodel, config, rngs.get("mcmc", cycle))
        snapshots.append(
            PhaseSnapshot(
                cycle=cycle,
                phase="mcmc",
                num_blocks=blockmodel.num_blocks,
                description_length=phase.description_length,
                assignment=blockmodel.assignment.copy(),
            )
        )
    return PhaseTrace(config.matrix_backend, snapshots)


def assert_traces_identical(reference: PhaseTrace, candidate: PhaseTrace) -> None:
    """Assert two phase traces are bit-identical at every boundary."""
    assert len(reference.snapshots) == len(candidate.snapshots), (
        f"trace lengths differ: {reference.backend} has {len(reference.snapshots)} "
        f"snapshots, {candidate.backend} has {len(candidate.snapshots)}"
    )
    for ref, cand in zip(reference.snapshots, candidate.snapshots):
        where = f"cycle {ref.cycle} phase {ref.phase!r} ({reference.backend} vs {candidate.backend})"
        assert (ref.cycle, ref.phase) == (cand.cycle, cand.phase), f"phase order diverged at {where}"
        assert ref.num_blocks == cand.num_blocks, f"block counts differ at {where}"
        assert ref.description_length == cand.description_length, (
            f"description lengths differ at {where}: "
            f"{ref.description_length!r} != {cand.description_length!r}"
        )
        if ref.assignment is not None or cand.assignment is not None:
            assert ref.assignment is not None and cand.assignment is not None
            assert np.array_equal(ref.assignment, cand.assignment), f"assignments differ at {where}"
        assert ref.merge_proposals == cand.merge_proposals, f"merge selections differ at {where}"


# ----------------------------------------------------------------------
# Full-pipeline runners
# ----------------------------------------------------------------------
def run_sequential(graph: Graph, config: SBPConfig) -> SBPResult:
    """Sequential / shared-memory SBP."""
    return stochastic_block_partition(graph, config)


def run_dcsbp(graph: Graph, config: SBPConfig, num_ranks: int = 2, run_context=None) -> SBPResult:
    """DC-SBP over simulated MPI ranks (transport from ``config.transport``)."""
    return divide_and_conquer_sbp(graph, num_ranks, config, run_context=run_context)


def run_edist(graph: Graph, config: SBPConfig, num_ranks: int = 2, run_context=None) -> SBPResult:
    """EDiSt over simulated MPI ranks (transport from ``config.transport``)."""
    return edist(graph, num_ranks, config, run_context=run_context)


def run_backends(
    runner: Callable[..., SBPResult],
    graph: Graph,
    config: SBPConfig,
    backends: Tuple[str, ...] = ALL_BACKENDS,
    **kwargs,
) -> Dict[str, SBPResult]:
    """Run ``runner`` once per backend, returning ``{backend: result}``."""
    return {
        backend: runner(graph, config.with_overrides(matrix_backend=backend), **kwargs)
        for backend in backends
    }


def run_backend_pair(
    runner: Callable[..., SBPResult],
    graph: Graph,
    config: SBPConfig,
    **kwargs,
) -> Tuple[SBPResult, SBPResult]:
    """Run ``runner`` once per backend of :data:`BACKEND_PAIR` (legacy)."""
    results = run_backends(runner, graph, config, backends=BACKEND_PAIR, **kwargs)
    return results[BACKEND_PAIR[0]], results[BACKEND_PAIR[1]]


def assert_results_identical(reference: SBPResult, candidate: SBPResult) -> None:
    """Assert two pipeline results are bit-identical, history included.

    Every :class:`~repro.core.results.IterationRecord` is a phase-boundary
    observation (block count and exact DL after each cycle's MCMC phase), so
    comparing the histories exactly extends the guarantee from the final
    state to the whole trajectory.
    """
    assert np.array_equal(reference.blockmodel.assignment, candidate.blockmodel.assignment), (
        "final assignments differ between backends"
    )
    assert reference.blockmodel.num_blocks == candidate.blockmodel.num_blocks
    assert reference.description_length == candidate.description_length, (
        f"final description lengths differ: "
        f"{reference.description_length!r} != {candidate.description_length!r}"
    )
    assert len(reference.history) == len(candidate.history), "history lengths differ"
    for ref, cand in zip(reference.history, candidate.history):
        assert ref.iteration == cand.iteration
        assert ref.num_blocks == cand.num_blocks, f"cycle {ref.iteration}: block counts differ"
        assert ref.description_length == cand.description_length, (
            f"cycle {ref.iteration}: description lengths differ: "
            f"{ref.description_length!r} != {cand.description_length!r}"
        )


def assert_all_results_identical(results: Dict[str, SBPResult]) -> None:
    """Assert every backend's result is bit-identical to the reference's.

    ``results`` maps backend name to result (as returned by
    :func:`run_backends`); the :data:`REFERENCE_BACKEND` entry anchors the
    comparison, so pairwise identity between all backends follows.
    """
    reference = results[REFERENCE_BACKEND]
    for backend, candidate in results.items():
        if backend == REFERENCE_BACKEND:
            continue
        try:
            assert_results_identical(reference, candidate)
        except AssertionError as exc:
            raise AssertionError(f"backend {backend!r} diverged from reference: {exc}") from exc


def run_transports(
    runner: Callable[..., SBPResult],
    graph: Graph,
    config: SBPConfig,
    transports: Tuple[str, ...] = ALL_TRANSPORTS,
    **kwargs,
) -> Dict[str, SBPResult]:
    """Run ``runner`` once per transport, returning ``{transport: result}``.

    The config's other fields (seed included) are held fixed, so the results
    must be bit-identical — where the ranks physically run is not allowed to
    leak into the algorithm.
    """
    return {
        transport: runner(graph, config.with_overrides(transport=transport), **kwargs)
        for transport in transports
    }


def assert_all_transports_identical(results: Dict[str, SBPResult]) -> None:
    """Assert every transport's result is bit-identical to the reference's.

    ``results`` maps transport name to result (as returned by
    :func:`run_transports`); :data:`REFERENCE_TRANSPORT` anchors the
    comparison.
    """
    reference = results[REFERENCE_TRANSPORT]
    for transport, candidate in results.items():
        if transport == REFERENCE_TRANSPORT:
            continue
        try:
            assert_results_identical(reference, candidate)
        except AssertionError as exc:
            raise AssertionError(f"transport {transport!r} diverged from reference: {exc}") from exc


# ----------------------------------------------------------------------
# Golden-file support
# ----------------------------------------------------------------------
def golden_record(result: SBPResult) -> Dict:
    """Serialisable exact record of a result (for golden-file regression).

    The description length is stored as ``float.hex`` so a golden comparison
    is bitwise, immune to decimal round-tripping.
    """
    return {
        "num_blocks": int(result.blockmodel.num_blocks),
        "description_length_hex": float(result.description_length).hex(),
        "assignment": [int(b) for b in result.blockmodel.assignment],
    }
