"""Testing utilities shipped with the library.

:mod:`repro.testing.differential` is the cross-backend differential-testing
harness: it runs the same algorithm through every blockmodel storage backend
under a fixed seed and asserts bit-identical behaviour.  It lives in the
package (rather than under ``tests/``) so downstream backends and benchmark
scripts can reuse it.
"""

from repro.testing.differential import (
    BACKEND_PAIR,
    PhaseSnapshot,
    PhaseTrace,
    assert_results_identical,
    assert_traces_identical,
    golden_record,
    run_backend_pair,
    run_dcsbp,
    run_edist,
    run_sequential,
    trace_phases,
)

__all__ = [
    "BACKEND_PAIR",
    "PhaseSnapshot",
    "PhaseTrace",
    "assert_results_identical",
    "assert_traces_identical",
    "golden_record",
    "run_backend_pair",
    "run_dcsbp",
    "run_edist",
    "run_sequential",
    "trace_phases",
]
