"""The top-level (sequential / shared-memory) SBP driver.

:func:`stochastic_block_partition` runs the agglomerative loop the paper
summarises in Fig. 1: starting from one block per vertex, alternate a
block-merge phase (Alg. 1) and an MCMC phase (Alg. 2), and let the
golden-ratio search decide the next block count until it brackets the
description-length minimum.

The driver is also used as a building block by DC-SBP (per-subgraph runs and
the root-rank fine-tuning) via the ``initial_blockmodel`` argument.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import SBPConfig
from repro.core.context import RunContext
from repro.core.golden_ratio import GoldenRatioSearch
from repro.core.mcmc import make_sweep_fn, mcmc_phase
from repro.core.merges import block_merge_phase
from repro.core.results import IterationRecord, SBPResult
from repro.graphs.graph import Graph
from repro.utils.rng import RngRegistry
from repro.utils.timing import PhaseTimer, Timer

__all__ = ["stochastic_block_partition"]

#: Hard cap on outer (merge + MCMC) cycles, as a safety net against a search
#: that keeps proposing new block counts.  The golden-ratio bracket converges
#: in O(log V) cycles in practice, far below this.
MAX_CYCLES = 200


def stochastic_block_partition(
    graph: Graph,
    config: Optional[SBPConfig] = None,
    initial_blockmodel: Optional[Blockmodel] = None,
    rng_registry: Optional[RngRegistry] = None,
    algorithm_label: str = "sbp",
    run_context: Optional[RunContext] = None,
) -> SBPResult:
    """Run (sequential or shared-memory-style) SBP on ``graph``.

    Parameters
    ----------
    graph:
        The graph to partition.
    config:
        Algorithm parameters; defaults to :class:`SBPConfig()`.
    initial_blockmodel:
        Start from this blockmodel instead of the one-block-per-vertex
        state.  Used by DC-SBP's fine-tuning stage, which resumes from the
        combined partial results.
    rng_registry:
        Random-stream registry; defaults to one derived from ``config.seed``.
    algorithm_label:
        Label recorded in the result (e.g. ``"sbp"``, ``"dcsbp-subgraph"``).
    run_context:
        Lifecycle context (observers, timeout, cooperative cancellation).
        On a stop the best blockmodel seen so far is returned as a
        well-formed partial result, with ``metadata["stopped"]`` recording
        the reason.

    Returns
    -------
    SBPResult
        The best blockmodel found, its description length, and per-phase
        timings / history.
    """
    config = config or SBPConfig()
    ctx = run_context or RunContext()
    rngs = rng_registry or RngRegistry(config.seed)
    timers = PhaseTimer()
    total_timer = Timer()
    total_timer.start()

    if initial_blockmodel is not None:
        current = initial_blockmodel.copy()
    else:
        current = Blockmodel.from_graph(graph, matrix_backend=config.matrix_backend)
    if current.graph is not graph and current.graph != graph:
        raise ValueError("initial_blockmodel must be defined over the same graph")

    search = GoldenRatioSearch(config.block_reduction_rate, config.min_blocks, run_context=ctx)
    sweep_fn = make_sweep_fn(config)
    num_to_merge = max(int(round(current.num_blocks * config.block_reduction_rate)), 0)
    history = []

    if initial_blockmodel is not None:
        # Fine-tuning mode (DC-SBP line 23): refine the supplied partition at
        # its current granularity first and seed the golden-ratio search with
        # it, so the search can return the starting block count if merging
        # only makes the description length worse.
        with timers.measure("mcmc"):
            warm = mcmc_phase(
                current, config, rngs.get("mcmc", 0), sweep_fn=sweep_fn, run_context=ctx
            )
        decision = search.update(current, warm.description_length)
        if config.track_history:
            history.append(
                IterationRecord(
                    iteration=0,
                    num_blocks=current.num_blocks,
                    description_length=warm.description_length,
                    mcmc_sweeps=warm.sweeps,
                    accepted_moves=warm.accepted_moves,
                )
            )
        ctx.emit_cycle(
            cycle=0,
            num_blocks=current.num_blocks,
            description_length=warm.description_length,
            mcmc_sweeps=warm.sweeps,
            accepted_moves=warm.accepted_moves,
            blockmodel=current,
        )
        if decision.done:
            num_to_merge = 0
        else:
            current = decision.start.copy()
            num_to_merge = decision.num_blocks_to_merge

    cycle = 0
    while cycle < MAX_CYCLES and num_to_merge > 0 and not ctx.should_stop():
        cycle += 1
        blocks_before = current.num_blocks
        with timers.measure("block_merge"):
            merged = block_merge_phase(current, num_to_merge, config, rngs.get("merge", cycle))
        ctx.emit_merge_phase(
            cycle=cycle,
            num_blocks_before=blocks_before,
            num_blocks_after=merged.num_blocks,
            num_merges_requested=num_to_merge,
        )
        with timers.measure("mcmc"):
            phase = mcmc_phase(
                merged, config, rngs.get("mcmc", cycle), sweep_fn=sweep_fn, run_context=ctx
            )
        dl = phase.description_length
        if config.validate:
            merged.check_consistency()
        if config.track_history:
            history.append(
                IterationRecord(
                    iteration=cycle,
                    num_blocks=merged.num_blocks,
                    description_length=dl,
                    mcmc_sweeps=phase.sweeps,
                    accepted_moves=phase.accepted_moves,
                    phase_seconds={
                        "block_merge": timers.elapsed("block_merge"),
                        "mcmc": timers.elapsed("mcmc"),
                    },
                )
            )
        decision = search.update(merged, dl)
        ctx.emit_cycle(
            cycle=cycle,
            num_blocks=merged.num_blocks,
            description_length=dl,
            mcmc_sweeps=phase.sweeps,
            accepted_moves=phase.accepted_moves,
            blockmodel=merged,
        )
        if decision.done:
            break
        current = decision.start.copy()
        num_to_merge = decision.num_blocks_to_merge

    if all(entry is None for entry in search.entries):
        # Degenerate inputs (e.g. a single-vertex graph) never enter the loop;
        # the current blockmodel is the answer.
        search.update(current, current.description_length())
    best = search.best()
    total_timer.stop()

    # Relabel the winning assignment contiguously for downstream consumers.
    final = Blockmodel.from_assignment(
        graph, best.blockmodel.assignment, relabel=True, matrix_backend=config.matrix_backend
    )
    metadata: dict = {"cycles": cycle}
    if ctx.stop_reason is not None:
        metadata["stopped"] = ctx.stop_reason
    return SBPResult(
        graph=graph,
        blockmodel=final,
        description_length=final.description_length(),
        algorithm=algorithm_label,
        num_ranks=1,
        runtime_seconds=total_timer.elapsed,
        phase_seconds=timers.as_dict(),
        history=history,
        metadata=metadata,
    )
