"""Result objects returned by the SBP drivers.

Every algorithm variant (sequential SBP, DC-SBP, EDiSt) returns an
:class:`SBPResult`, so the harness, the benchmarks, and downstream users can
treat them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel
from repro.blockmodel.entropy import normalized_description_length
from repro.evaluation.nmi import normalized_mutual_information
from repro.graphs.graph import Graph
from repro.mpi.stats import CommStats

__all__ = ["IterationRecord", "SBPResult"]


@dataclass(frozen=True)
class IterationRecord:
    """One outer (block-merge + MCMC) cycle of the agglomerative search."""

    iteration: int
    num_blocks: int
    description_length: float
    mcmc_sweeps: int
    accepted_moves: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)


@dataclass
class SBPResult:
    """The outcome of one community-detection run.

    Attributes
    ----------
    graph:
        The graph that was partitioned.
    blockmodel:
        The final blockmodel (assignment, block matrix, degrees).
    description_length:
        DL (Eq. 2) of the final blockmodel.
    algorithm:
        Label of the variant that produced the result
        (``"sbp"``, ``"dcsbp"``, ``"edist"``, ``"reference-dcsbp"`` …).
    num_ranks:
        Number of (simulated) MPI ranks used.
    runtime_seconds:
        Measured wall-clock of the run.
    phase_seconds:
        Measured time per phase (``block_merge``, ``mcmc``, ``finetune``,
        ``combine`` …), used by the harness's runtime model.
    history:
        Per-cycle records (present when ``config.track_history``).
    comm_stats:
        Aggregated communication counters across ranks.
    """

    graph: Graph
    blockmodel: Blockmodel
    description_length: float
    algorithm: str = "sbp"
    num_ranks: int = 1
    runtime_seconds: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    history: List[IterationRecord] = field(default_factory=list)
    comm_stats: Optional[CommStats] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def assignment(self) -> np.ndarray:
        """Final vertex-to-community assignment."""
        return self.blockmodel.assignment

    @property
    def num_communities(self) -> int:
        """Number of non-empty communities in the final partition."""
        return self.blockmodel.num_nonempty_blocks()

    def nmi(self, truth: Optional[np.ndarray] = None) -> float:
        """NMI against ``truth`` (defaults to the graph's planted labels)."""
        if truth is None:
            truth = self.graph.true_assignment
        if truth is None:
            raise ValueError("graph has no ground truth; pass `truth` explicitly or use dl_norm()")
        return normalized_mutual_information(truth, self.assignment)

    def dl_norm(self) -> float:
        """Normalised description length (lower is better)."""
        return normalized_description_length(self.description_length, self.graph)

    def summary(self) -> Dict[str, object]:
        """A flat, JSON-friendly summary used by the benchmark harness."""
        out: Dict[str, object] = {
            "algorithm": self.algorithm,
            "graph": self.graph.name,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
            "num_ranks": self.num_ranks,
            "num_communities": self.num_communities,
            "description_length": self.description_length,
            "dl_norm": self.dl_norm(),
            "runtime_seconds": self.runtime_seconds,
        }
        if self.graph.true_assignment is not None:
            out["nmi"] = self.nmi()
        out.update({f"seconds_{k}": v for k, v in self.phase_seconds.items()})
        return out
