"""Result objects returned by the SBP drivers.

Every algorithm variant (sequential SBP, DC-SBP, EDiSt) returns an
:class:`SBPResult`, so the harness, the benchmarks, and downstream users can
treat them interchangeably.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel
from repro.blockmodel.entropy import normalized_description_length
from repro.evaluation.nmi import normalized_mutual_information
from repro.graphs.graph import Graph
from repro.mpi.stats import CommStats

__all__ = ["IterationRecord", "SBPResult"]

#: Format marker embedded in persisted results, so ``load`` can reject
#: arbitrary JSON files with a clear error instead of a KeyError.
RESULT_FORMAT = "repro.sbpresult"
RESULT_FORMAT_VERSION = 1


def _json_safe(value):
    """Recursively convert ``value`` into JSON-serialisable builtins.

    NumPy scalars/arrays become Python numbers/lists; mappings and sequences
    recurse; anything else falls back to ``repr`` (metadata is best-effort —
    the typed fields of the result are handled explicitly).
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


@dataclass(frozen=True)
class IterationRecord:
    """One outer (block-merge + MCMC) cycle of the agglomerative search."""

    iteration: int
    num_blocks: int
    description_length: float
    mcmc_sweeps: int
    accepted_moves: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record; the DL is stored as ``float.hex`` for bit-exactness."""
        return {
            "iteration": int(self.iteration),
            "num_blocks": int(self.num_blocks),
            "description_length_hex": float(self.description_length).hex(),
            "mcmc_sweeps": int(self.mcmc_sweeps),
            "accepted_moves": int(self.accepted_moves),
            "phase_seconds": {str(k): float(v) for k, v in self.phase_seconds.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "IterationRecord":
        return cls(
            iteration=int(data["iteration"]),
            num_blocks=int(data["num_blocks"]),
            description_length=float.fromhex(str(data["description_length_hex"])),
            mcmc_sweeps=int(data["mcmc_sweeps"]),
            accepted_moves=int(data["accepted_moves"]),
            phase_seconds={str(k): float(v) for k, v in dict(data.get("phase_seconds", {})).items()},
        )


@dataclass
class SBPResult:
    """The outcome of one community-detection run.

    Attributes
    ----------
    graph:
        The graph that was partitioned.
    blockmodel:
        The final blockmodel (assignment, block matrix, degrees).
    description_length:
        DL (Eq. 2) of the final blockmodel.
    algorithm:
        Label of the variant that produced the result
        (``"sbp"``, ``"dcsbp"``, ``"edist"``, ``"reference-dcsbp"`` …).
    num_ranks:
        Number of (simulated) MPI ranks used.
    runtime_seconds:
        Measured wall-clock of the run.
    phase_seconds:
        Measured time per phase (``block_merge``, ``mcmc``, ``finetune``,
        ``combine`` …), used by the harness's runtime model.
    history:
        Per-cycle records (present when ``config.track_history``).
    comm_stats:
        Aggregated communication counters across ranks.
    """

    graph: Graph
    blockmodel: Blockmodel
    description_length: float
    algorithm: str = "sbp"
    num_ranks: int = 1
    runtime_seconds: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    history: List[IterationRecord] = field(default_factory=list)
    comm_stats: Optional[CommStats] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def assignment(self) -> np.ndarray:
        """Final vertex-to-community assignment."""
        return self.blockmodel.assignment

    @property
    def num_communities(self) -> int:
        """Number of non-empty communities in the final partition."""
        return self.blockmodel.num_nonempty_blocks()

    def nmi(self, truth: Optional[np.ndarray] = None) -> float:
        """NMI against ``truth`` (defaults to the graph's planted labels)."""
        if truth is None:
            truth = self.graph.true_assignment
        if truth is None:
            raise ValueError("graph has no ground truth; pass `truth` explicitly or use dl_norm()")
        return normalized_mutual_information(truth, self.assignment)

    def dl_norm(self) -> float:
        """Normalised description length (lower is better)."""
        return normalized_description_length(self.description_length, self.graph)

    def summary(self) -> Dict[str, object]:
        """A flat, JSON-friendly summary used by the benchmark harness."""
        out: Dict[str, object] = {
            "algorithm": self.algorithm,
            "graph": self.graph.name,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
            "num_ranks": self.num_ranks,
            "num_communities": self.num_communities,
            "description_length": self.description_length,
            "dl_norm": self.dl_norm(),
            "runtime_seconds": self.runtime_seconds,
        }
        if self.graph.true_assignment is not None:
            out["nmi"] = self.nmi()
        out.update({f"seconds_{k}": v for k, v in self.phase_seconds.items()})
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self, include_graph: bool = True) -> Dict[str, object]:
        """A JSON-ready dict of the full result; inverse of :meth:`from_dict`.

        Description lengths are stored as ``float.hex`` so reloading is
        bit-exact, matching the repository's golden-file convention.  With
        ``include_graph=False`` only a reference (name / sizes) is stored and
        :meth:`load` must be given the graph explicitly.

        ``include_graph=True`` (the default) embeds the full edge list, which
        makes the file self-contained but scales with the graph: on
        million-edge graphs expect files of hundreds of MB — pass
        ``include_graph=False`` there and keep the graph's own (far more
        compact) edge-list file next to it.
        """
        from repro.graphs.io import graph_to_dict  # local import: io is a leaf

        graph_entry: Dict[str, object] = {
            "name": self.graph.name,
            "num_vertices": int(self.graph.num_vertices),
            "num_edges": int(self.graph.num_edges),
        }
        if include_graph:
            graph_entry = graph_to_dict(self.graph)
        return {
            "format": RESULT_FORMAT,
            "version": RESULT_FORMAT_VERSION,
            "algorithm": self.algorithm,
            "num_ranks": int(self.num_ranks),
            "runtime_seconds": float(self.runtime_seconds),
            "description_length_hex": float(self.description_length).hex(),
            "num_blocks": int(self.blockmodel.num_blocks),
            "assignment": np.asarray(self.blockmodel.assignment).tolist(),
            "phase_seconds": {str(k): float(v) for k, v in self.phase_seconds.items()},
            "history": [record.to_dict() for record in self.history],
            "comm_stats": None if self.comm_stats is None else self.comm_stats.to_dict(),
            "metadata": _json_safe(self.metadata),
            "graph_included": bool(include_graph),
            "graph": graph_entry,
        }

    def to_json(self, include_graph: bool = True, indent: Optional[int] = None) -> str:
        """Serialise to a JSON string (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(include_graph=include_graph), indent=indent)

    def save(self, path: Union[str, Path], include_graph: bool = True) -> Path:
        """Write the result to ``path`` as JSON and return the path."""
        path = Path(path)
        path.write_text(self.to_json(include_graph=include_graph))
        return path

    @classmethod
    def from_dict(cls, data: Dict[str, object], graph: Optional[Graph] = None) -> "SBPResult":
        """Rebuild a result from :meth:`to_dict` output.

        The blockmodel is reconstructed from the stored assignment over the
        stored (or supplied) graph; the description length, history, and
        communication stats are restored bit-for-bit from the persisted
        values rather than recomputed.
        """
        from repro.graphs.io import graph_from_dict  # local import: io is a leaf

        if data.get("format") != RESULT_FORMAT:
            raise ValueError(
                f"not a persisted SBPResult (missing format marker {RESULT_FORMAT!r})"
            )
        if graph is None:
            if not data.get("graph_included", False):
                raise ValueError(
                    "result was saved with include_graph=False; pass the graph explicitly"
                )
            graph = graph_from_dict(data["graph"])
        assignment = np.asarray(data["assignment"], dtype=np.int64)
        blockmodel = Blockmodel.from_assignment(
            graph, assignment, num_blocks=int(data["num_blocks"])
        )
        comm_entry = data.get("comm_stats")
        return cls(
            graph=graph,
            blockmodel=blockmodel,
            description_length=float.fromhex(str(data["description_length_hex"])),
            algorithm=str(data["algorithm"]),
            num_ranks=int(data["num_ranks"]),
            runtime_seconds=float(data["runtime_seconds"]),
            phase_seconds={str(k): float(v) for k, v in dict(data.get("phase_seconds", {})).items()},
            history=[IterationRecord.from_dict(r) for r in data.get("history", [])],
            comm_stats=None if comm_entry is None else CommStats.from_dict(comm_entry),
            metadata=dict(data.get("metadata", {})),
        )

    @classmethod
    def load(cls, path: Union[str, Path], graph: Optional[Graph] = None) -> "SBPResult":
        """Read a result previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()), graph=graph)
