"""Divide-and-conquer distributed SBP (DC-SBP) — paper Alg. 3.

This is the baseline the paper compares EDiSt against (Uppal, Swope & Huang,
HPEC 2017):

1. vertices are dealt round-robin to the MPI ranks; each rank keeps only the
   edges internal to its share (crossing edges are dropped, which is what
   creates *island vertices* on sparse graphs);
2. every rank runs full SBP on its disconnected subgraph independently;
3. the per-rank partial results are gathered on the root rank and combined
   pairwise — every community of the second partial result is merged into
   the best community of the first by ΔDL — halving the number of partial
   results until at most ``dcsbp_combine_threshold`` (4) remain;
4. the survivors are merged into a single partition of the whole graph, and
   the root rank fine-tunes it by continuing SBP on the full graph.

The fine-tuning and combination run on the root alone, which is the serial
bottleneck the paper highlights; the per-rank subgraph runs and the
combination/fine-tuning are timed separately so the harness's runtime model
can expose it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel, resolve_merge_chain
from repro.blockmodel.deltas import delta_dl_for_merge
from repro.core.config import SBPConfig
from repro.core.context import RunContext
from repro.core.merges import best_segmented_merges
from repro.core.results import SBPResult
from repro.core.sbp import stochastic_block_partition
from repro.graphs.graph import Graph
from repro.graphs.partition_ops import extract_subgraph, round_robin_assignment
from repro.mpi.communicator import Communicator
from repro.mpi.launcher import run_distributed
from repro.mpi.stats import CommStats
from repro.utils.rng import RngRegistry
from repro.utils.timing import PhaseTimer, Timer

__all__ = ["PartialResult", "merge_partial_pair", "dcsbp_rank_program", "divide_and_conquer_sbp"]


@dataclass
class PartialResult:
    """A community assignment covering a subset of the graph's vertices.

    ``vertices`` holds global vertex ids; ``assignment[i]`` is the community
    (local labels ``0..num_communities-1``) of ``vertices[i]``.
    """

    vertices: np.ndarray
    assignment: np.ndarray
    #: Wall-clock seconds the owning rank spent producing this result.
    subgraph_seconds: float = 0.0
    #: Number of island (edge-less) vertices in the owning rank's subgraph.
    num_island_vertices: int = 0

    @property
    def num_communities(self) -> int:
        return int(self.assignment.max()) + 1 if self.assignment.size else 0

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.int64)
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if self.vertices.shape != self.assignment.shape:
            raise ValueError("vertices and assignment must have the same length")


def merge_partial_pair(
    graph: Graph,
    first: PartialResult,
    second: PartialResult,
    config: SBPConfig,
    rng: Optional[np.random.Generator] = None,
) -> PartialResult:
    """Merge the communities of ``second`` into those of ``first`` (Alg. 3, lines 14-21).

    A blockmodel is built over the union of the two vertex sets (using only
    the edges internal to that union) with the two results' communities given
    disjoint label ranges.  Every community from ``second`` is then merged
    into the ``first`` community that gives the best ΔDL.  When
    ``config.dcsbp_merge_candidates`` is set, only that many randomly chosen
    candidate targets are evaluated per community (a speed/quality knob the
    original implementation exposes through its sampling of merge targets).

    The combine blockmodel uses ``config.matrix_backend``; on the CSR
    backend every community's candidate targets are scored with one batched
    :func:`delta_dl_for_merges` call (bit-identical deltas, so both backends
    pick the same targets under the same seed).
    """
    union = np.concatenate([first.vertices, second.vertices])
    offset = first.num_communities
    labels = np.concatenate([first.assignment, second.assignment + offset])
    order = np.argsort(union, kind="stable")
    union_sorted = union[order]
    labels_sorted = labels[order]

    # Build the induced subgraph over the union and the matching local labels.
    owner = np.zeros(graph.num_vertices, dtype=np.int64)
    owner[union_sorted] = 1
    part = extract_subgraph(graph, owner, 1)
    local_labels = np.empty(part.subgraph.num_vertices, dtype=np.int64)
    local_labels[part.global_to_local[union_sorted]] = labels_sorted

    num_blocks = offset + second.num_communities
    blockmodel = Blockmodel.from_assignment(
        part.subgraph, local_labels, num_blocks=num_blocks, matrix_backend=config.matrix_backend
    )

    first_blocks = np.arange(offset, dtype=np.int64)
    merge_target = np.arange(num_blocks, dtype=np.int64)
    batched = getattr(blockmodel.matrix, "supports_batched_kernels", False)
    pair_targets: List[int] = []
    pair_segments: List[tuple] = []  # (block, start, end) into pair_targets
    for block in range(offset, num_blocks):
        if blockmodel.block_sizes[block] <= 0:
            continue
        candidates = first_blocks
        if config.dcsbp_merge_candidates is not None and rng is not None and first_blocks.size > config.dcsbp_merge_candidates:
            candidates = rng.choice(first_blocks, size=config.dcsbp_merge_candidates, replace=False)
        kept = [
            int(target)
            for target in candidates
            if not (blockmodel.block_sizes[int(target)] <= 0 and first_blocks.size > 1)
        ]
        if batched:
            start = len(pair_targets)
            pair_targets.extend(kept)
            pair_segments.append((block, start, len(pair_targets)))
            continue
        best_target = -1
        best_delta = float("inf")
        for target in kept:
            delta = delta_dl_for_merge(blockmodel, block, target)
            if delta < best_delta:
                best_delta = delta
                best_target = target
        if best_target >= 0:
            merge_target[block] = best_target
    if batched and pair_targets:
        for block, target, _delta in best_segmented_merges(blockmodel, pair_segments, pair_targets):
            merge_target[block] = target

    resolved = resolve_merge_chain(merge_target)
    merged_labels = resolved[local_labels]
    # Compact the surviving labels.
    _, merged_labels = np.unique(merged_labels, return_inverse=True)

    combined_vertices = part.local_to_global
    return PartialResult(
        vertices=combined_vertices,
        assignment=merged_labels.astype(np.int64),
        subgraph_seconds=first.subgraph_seconds + second.subgraph_seconds,
        num_island_vertices=first.num_island_vertices + second.num_island_vertices,
    )


def dcsbp_rank_program(
    comm: Communicator,
    graph: Graph,
    config: SBPConfig,
    run_context: Optional[RunContext] = None,
) -> Optional[dict]:
    """The per-rank DC-SBP program (paper Alg. 3).

    Every rank partitions its round-robin subgraph; the root combines the
    partial results, fine-tunes, and broadcasts the final assignment.  The
    return value (a dict of result pieces) is identical on every rank.

    Observer events fire from the root rank's fine-tuning stage only (whose
    history becomes the result's history); the per-rank subgraph runs share
    the context's stop state, so a cancellation or timeout winds down every
    worker, but they stay event-silent.
    """
    timers = PhaseTimer()
    root_ctx = run_context or RunContext()
    event_ctx = root_ctx if comm.rank == 0 else root_ctx.silent()
    rngs = RngRegistry(config.seed).child("dcsbp", comm.rank)

    # Line 1-3: independent SBP on the rank's round-robin subgraph.
    owner = round_robin_assignment(graph.num_vertices, comm.size)
    part = extract_subgraph(graph, owner, comm.rank)
    with timers.measure("subgraph_sbp"):
        sub_result = stochastic_block_partition(
            part.subgraph,
            config.with_seed(rngs.seed_for("subgraph")),
            algorithm_label="dcsbp-subgraph",
            run_context=root_ctx.silent(),
        )
    partial = PartialResult(
        vertices=part.local_to_global,
        assignment=sub_result.assignment.copy(),
        subgraph_seconds=timers.elapsed("subgraph_sbp"),
        num_island_vertices=part.num_island_vertices,
    )

    # Lines 5-13: ship partial results to the root.
    if comm.size > 1:
        if comm.rank == 0:
            partials: List[PartialResult] = [partial]
            for source in range(1, comm.size):
                partials.append(comm.recv(source=source, tag=1))
        else:
            comm.send(partial, dest=0, tag=1)
            partials = []
    else:
        partials = [partial]

    final_assignment: Optional[np.ndarray] = None
    finetune_cycles = 0
    finetune_history: list = []
    if comm.rank == 0:
        merge_rng = rngs.get("combine")
        # Lines 14-21: pairwise combination until at most the threshold remain.
        with timers.measure("combine"):
            while len(partials) > config.dcsbp_combine_threshold:
                next_round: List[PartialResult] = []
                for i in range(0, len(partials), 2):
                    if i + 1 < len(partials):
                        next_round.append(merge_partial_pair(graph, partials[i], partials[i + 1], config, merge_rng))
                    else:
                        next_round.append(partials[i])
                partials = next_round
            # Line 22: merge the survivors into one whole-graph partition.
            combined = partials[0]
            for other in partials[1:]:
                combined = merge_partial_pair(graph, combined, other, config, merge_rng)
            full_assignment = np.zeros(graph.num_vertices, dtype=np.int64)
            full_assignment[combined.vertices] = combined.assignment

        # Line 23: fine-tune on the whole graph, starting from the combination.
        with timers.measure("finetune"):
            initial = Blockmodel.from_assignment(
                graph, full_assignment, relabel=True, matrix_backend=config.matrix_backend
            )
            fine = stochastic_block_partition(
                graph,
                config.with_seed(rngs.seed_for("finetune")),
                initial_blockmodel=initial,
                algorithm_label="dcsbp-finetune",
                run_context=event_ctx,
            )
        final_assignment = fine.assignment
        finetune_cycles = fine.metadata.get("cycles", 0)
        finetune_history = fine.history

    if comm.size > 1:
        final_assignment = comm.bcast(final_assignment, root=0)
        island_total = comm.allreduce(partial.num_island_vertices)
    else:
        island_total = partial.num_island_vertices

    return {
        "assignment": final_assignment,
        "phase_seconds": timers.as_dict(),
        "num_island_vertices": island_total,
        "finetune_cycles": finetune_cycles,
        "history": finetune_history,
        "stopped": root_ctx.stop_reason,
        "rank": comm.rank,
    }


def divide_and_conquer_sbp(
    graph: Graph,
    num_ranks: int,
    config: Optional[SBPConfig] = None,
    run_context: Optional[RunContext] = None,
) -> SBPResult:
    """Run DC-SBP over ``num_ranks`` simulated MPI ranks and collect the result."""
    config = config or SBPConfig()
    total = Timer()
    total.start()
    run = run_distributed(
        num_ranks, dcsbp_rank_program, graph, config,
        run_context=run_context, transport=config.transport,
    )
    total.stop()

    root = run.results[0]
    blockmodel = Blockmodel.from_assignment(
        graph, root["assignment"], relabel=True, matrix_backend=config.matrix_backend
    )

    per_rank_phases = [r["phase_seconds"] for r in run.results]
    phase_totals: dict = {}
    for phases in per_rank_phases:
        for name, secs in phases.items():
            phase_totals[name] = phase_totals.get(name, 0.0) + secs

    return SBPResult(
        graph=graph,
        blockmodel=blockmodel,
        description_length=blockmodel.description_length(),
        algorithm="dcsbp",
        num_ranks=num_ranks,
        runtime_seconds=total.elapsed,
        phase_seconds=phase_totals,
        history=root["history"],
        comm_stats=CommStats.aggregate(run.comm_stats),
        metadata={
            "per_rank_phase_seconds": per_rank_phases,
            "num_island_vertices": root["num_island_vertices"],
            "island_fraction": root["num_island_vertices"] / max(graph.num_vertices, 1),
            "finetune_cycles": root["finetune_cycles"],
            **({"stopped": root["stopped"]} if root.get("stopped") else {}),
        },
    )
