"""Core SBP algorithms: sequential SBP, DC-SBP, and EDiSt.

Public entry points
-------------------
``stochastic_block_partition(graph, config)``
    Sequential / shared-memory SBP (the single-node baseline).
``divide_and_conquer_sbp(graph, num_ranks, config)``
    The DC-SBP baseline of Uppal et al. (paper Alg. 3) over simulated MPI
    ranks.
``edist(graph, num_ranks, config)``
    The paper's exact distributed SBP algorithm (Algs. 4 and 5).

All three return an :class:`~repro.core.results.SBPResult`.
"""

from repro.core.config import (
    MCMCVariant,
    SBPConfig,
    available_presets,
    config_preset,
    register_config_preset,
)
from repro.core.context import (
    CycleEvent,
    MCMCSweepEvent,
    MergePhaseEvent,
    RunCancelled,
    RunContext,
    RunObserver,
)
from repro.core.results import IterationRecord, SBPResult
from repro.core.sbp import stochastic_block_partition
from repro.core.dcsbp import divide_and_conquer_sbp, dcsbp_rank_program, merge_partial_pair, PartialResult
from repro.core.edist import edist, edist_rank_program, distributed_block_merge, distributed_mcmc_phase
from repro.core.reference import reference_dcsbp, reference_config, DenseBlockmodel
from repro.core.golden_ratio import GoldenRatioSearch
from repro.core.merges import block_merge_phase, propose_merges, select_and_apply_merges, MergeProposal
from repro.core.mcmc import mcmc_phase, metropolis_hastings_sweep
from repro.core.hybrid_mcmc import hybrid_sweep, batch_gibbs_sweep

__all__ = [
    "SBPConfig",
    "MCMCVariant",
    "register_config_preset",
    "config_preset",
    "available_presets",
    "RunContext",
    "RunObserver",
    "RunCancelled",
    "CycleEvent",
    "MergePhaseEvent",
    "MCMCSweepEvent",
    "SBPResult",
    "IterationRecord",
    "stochastic_block_partition",
    "divide_and_conquer_sbp",
    "dcsbp_rank_program",
    "merge_partial_pair",
    "PartialResult",
    "edist",
    "edist_rank_program",
    "distributed_block_merge",
    "distributed_mcmc_phase",
    "reference_dcsbp",
    "reference_config",
    "DenseBlockmodel",
    "GoldenRatioSearch",
    "block_merge_phase",
    "propose_merges",
    "select_and_apply_merges",
    "MergeProposal",
    "mcmc_phase",
    "metropolis_hastings_sweep",
    "hybrid_sweep",
    "batch_gibbs_sweep",
]
