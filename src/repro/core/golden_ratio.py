"""Golden-ratio bracket search over the number of blocks.

SBP does not know the optimal number of communities in advance.  After each
(block-merge + MCMC) cycle the resulting blockmodel and its description
length are fed to this search, which keeps up to three blockmodels ordered
by decreasing block count (Section II-B of the paper):

* while the description length keeps decreasing as blocks are merged, the
  search keeps halving the block count (exploration phase);
* as soon as a smaller blockmodel has a *larger* DL, the minimum is
  bracketed, and the search performs golden-section steps inside the bracket
  until the bracket width shrinks to at most two block counts, at which
  point the middle (best) blockmodel is the answer.

Every rank of EDiSt runs an identical copy of this search on identical
inputs, which keeps the distributed algorithm's control flow in lockstep
without extra communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.context import RunContext

__all__ = ["TripletEntry", "GoldenRatioSearch", "SearchDecision"]

#: 1 / golden ratio, the classic section factor.
GOLDEN_SECTION = 0.618


@dataclass
class TripletEntry:
    """One stored blockmodel of the search bracket."""

    blockmodel: Blockmodel
    description_length: float

    @property
    def num_blocks(self) -> int:
        return self.blockmodel.num_blocks


@dataclass
class SearchDecision:
    """What the driver should do next."""

    done: bool
    #: The blockmodel to continue from (always the stored entry with the
    #: smallest block count that still exceeds the target).
    start: Optional[Blockmodel] = None
    #: How many blocks the next block-merge phase should remove.
    num_blocks_to_merge: int = 0
    #: The block count the next cycle aims for.
    target_blocks: int = 0


class GoldenRatioSearch:
    """Bracketed search over block counts, mirroring the reference SBP."""

    def __init__(
        self,
        reduction_rate: float = 0.5,
        min_blocks: int = 1,
        run_context: Optional[RunContext] = None,
    ) -> None:
        if not 0.0 < reduction_rate < 1.0:
            raise ValueError("reduction_rate must lie in (0, 1)")
        self.reduction_rate = reduction_rate
        self.min_blocks = max(int(min_blocks), 1)
        self.run_context = run_context
        # entries[0]: most blocks, entries[1]: middle/best, entries[2]: fewest blocks
        self.entries: List[Optional[TripletEntry]] = [None, None, None]

    # ------------------------------------------------------------------
    @property
    def bracket_established(self) -> bool:
        """True once a smaller blockmodel with a larger DL has been seen."""
        return self.entries[2] is not None

    def best(self) -> TripletEntry:
        """The best blockmodel seen so far."""
        candidates = [e for e in self.entries if e is not None]
        if not candidates:
            raise RuntimeError("the search has not seen any blockmodel yet")
        return min(candidates, key=lambda e: e.description_length)

    # ------------------------------------------------------------------
    def _place(self, candidate: TripletEntry) -> None:
        """Insert a candidate into the triplet, keeping it ordered by blocks."""
        middle = self.entries[1]
        if middle is None or candidate.description_length <= middle.description_length:
            if middle is not None:
                if middle.num_blocks > candidate.num_blocks:
                    self.entries[0] = middle
                else:
                    self.entries[2] = middle
            self.entries[1] = candidate
        else:
            if middle.num_blocks > candidate.num_blocks:
                self.entries[2] = candidate
            else:
                self.entries[0] = candidate

    def _next_target(self) -> Optional[int]:
        """The next block count to evaluate, or ``None`` when converged."""
        middle = self.entries[1]
        assert middle is not None
        if not self.bracket_established:
            target = int(round(middle.num_blocks * (1.0 - self.reduction_rate)))
            target = max(target, self.min_blocks)
            if target >= middle.num_blocks:
                return None
            return target
        upper = self.entries[0]
        lower = self.entries[2]
        assert lower is not None
        upper_blocks = upper.num_blocks if upper is not None else middle.num_blocks
        if upper_blocks - lower.num_blocks <= 2:
            return None
        gap_high = upper_blocks - middle.num_blocks
        gap_low = middle.num_blocks - lower.num_blocks
        if gap_high >= gap_low and gap_high > 1:
            target = middle.num_blocks + int(round(GOLDEN_SECTION * gap_high))
            target = min(max(target, middle.num_blocks + 1), upper_blocks - 1)
        elif gap_low > 1:
            target = lower.num_blocks + int(round(GOLDEN_SECTION * gap_low))
            target = min(max(target, lower.num_blocks + 1), middle.num_blocks - 1)
        else:
            return None
        return target

    def _start_for(self, target: int) -> Optional[TripletEntry]:
        """The stored entry with the fewest blocks still above ``target``."""
        candidates = [e for e in self.entries if e is not None and e.num_blocks > target]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.num_blocks)

    # ------------------------------------------------------------------
    def update(self, blockmodel: Blockmodel, description_length: float) -> SearchDecision:
        """Record a finished cycle's result and decide the next step.

        The blockmodel is stored by reference; callers must not mutate it
        afterwards (the SBP driver always continues from a copy).
        """
        self._place(TripletEntry(blockmodel, float(description_length)))
        target = self._next_target()
        if target is None:
            decision = SearchDecision(done=True, start=self.best().blockmodel)
        else:
            start = self._start_for(target)
            if start is None or start.num_blocks - target <= 0:
                decision = SearchDecision(done=True, start=self.best().blockmodel)
            else:
                decision = SearchDecision(
                    done=False,
                    start=start.blockmodel,
                    num_blocks_to_merge=start.num_blocks - target,
                    target_blocks=target,
                )
        if self.run_context is not None:
            self.run_context.note_search_state(
                {
                    "bracket_established": self.bracket_established,
                    "bracket_blocks": [e.num_blocks if e else None for e in self.entries],
                    "best_blocks": self.best().num_blocks,
                    "best_description_length": self.best().description_length,
                    "done": decision.done,
                    "target_blocks": decision.target_blocks,
                    "num_blocks_to_merge": decision.num_blocks_to_merge,
                }
            )
        return decision

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        described = [
            f"(B={e.num_blocks}, DL={e.description_length:.1f})" if e else "None" for e in self.entries
        ]
        return f"GoldenRatioSearch[{', '.join(described)}]"
