"""Reference (unoptimised) formulations used for validation and Table VI.

The paper's Table VI compares the original *python* DC-SBP implementation of
Uppal et al. against the authors' optimised C++ translation.  The python
original differs from the optimised code in two algorithmically relevant
ways that this module reproduces:

* it parallelises MCMC with whole-sweep **batch** proposals (every proposal
  evaluated against the sweep-start state) instead of the Hybrid
  sequential/asynchronous algorithm, which converges more slowly per sweep;
* it operates on **dense** blockmodel matrices and recomputes entropies over
  full rows/columns rather than using sparse deltas, which costs far more
  work per proposal.

:func:`reference_config` captures the first difference and drives the
"reference implementation" rows of the Table VI benchmark.
:class:`DenseBlockmodel` and :func:`naive_delta_dl_for_move` capture the
second; they are intentionally simple, serve as an independent oracle for the
sparse fast paths in the test-suite, and let the ablation benchmark measure
the speedup the paper's optimisation (a)/(c) provides.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import MCMCVariant, SBPConfig
from repro.core.dcsbp import divide_and_conquer_sbp
from repro.core.results import SBPResult
from repro.graphs.graph import Graph

__all__ = [
    "reference_config",
    "reference_dcsbp",
    "DenseBlockmodel",
    "naive_description_length",
    "naive_delta_dl_for_move",
]


def reference_config(base: Optional[SBPConfig] = None) -> SBPConfig:
    """Configuration mimicking the original python DC-SBP formulation."""
    base = base or SBPConfig()
    return base.with_overrides(mcmc_variant=MCMCVariant.BATCH_GIBBS)


def reference_dcsbp(
    graph: Graph,
    num_ranks: int,
    config: Optional[SBPConfig] = None,
    run_context=None,
) -> SBPResult:
    """DC-SBP with the reference (batch-parallel) MCMC engine.

    This is the "python implementation" row of the paper's Table VI; the
    "C++ implementation" row corresponds to :func:`repro.core.dcsbp.divide_and_conquer_sbp`
    with the default (hybrid) configuration.
    """
    result = divide_and_conquer_sbp(graph, num_ranks, reference_config(config), run_context=run_context)
    result.algorithm = "reference-dcsbp"
    return result


class DenseBlockmodel:
    """A dense-matrix blockmodel used as an oracle in tests and ablations.

    It mirrors :class:`repro.blockmodel.Blockmodel` semantics but stores the
    full ``B × B`` matrix and recomputes quantities from scratch — exactly
    the data layout the unoptimised python implementation uses.
    """

    def __init__(self, graph: Graph, assignment: np.ndarray, num_blocks: Optional[int] = None) -> None:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (graph.num_vertices,):
            raise ValueError("assignment must label every vertex")
        if num_blocks is None:
            num_blocks = int(assignment.max()) + 1 if assignment.size else 0
        self.graph = graph
        self.assignment = assignment.copy()
        self.num_blocks = int(num_blocks)
        self.matrix = np.zeros((self.num_blocks, self.num_blocks), dtype=np.int64)
        src, dst, w = graph.edge_arrays()
        np.add.at(self.matrix, (assignment[src], assignment[dst]), w)

    @property
    def block_out_degrees(self) -> np.ndarray:
        return self.matrix.sum(axis=1)

    @property
    def block_in_degrees(self) -> np.ndarray:
        return self.matrix.sum(axis=0)

    def description_length(self) -> float:
        return naive_description_length(
            self.matrix, self.graph.num_vertices, self.graph.num_edges
        )

    def move_vertex(self, vertex: int, to_block: int) -> None:
        """Move a vertex by rebuilding the affected matrix entries directly."""
        from_block = int(self.assignment[vertex])
        to_block = int(to_block)
        if from_block == to_block:
            return
        graph = self.graph
        for u, w in zip(graph.out_neighbors(vertex).tolist(), graph.out_weights(vertex).tolist()):
            if u == vertex:
                self.matrix[from_block, from_block] -= w
                self.matrix[to_block, to_block] += w
            else:
                b = int(self.assignment[u])
                self.matrix[from_block, b] -= w
                self.matrix[to_block, b] += w
        for u, w in zip(graph.in_neighbors(vertex).tolist(), graph.in_weights(vertex).tolist()):
            if u == vertex:
                continue
            b = int(self.assignment[u])
            self.matrix[b, from_block] -= w
            self.matrix[b, to_block] += w
        self.assignment[vertex] = to_block


def naive_description_length(block_matrix: np.ndarray, num_vertices: int, num_edges: int) -> float:
    """Eq. (2) computed directly from a dense block matrix."""
    block_matrix = np.asarray(block_matrix, dtype=np.float64)
    num_blocks = block_matrix.shape[0]
    d_out = block_matrix.sum(axis=1)
    d_in = block_matrix.sum(axis=0)
    likelihood = 0.0
    for i in range(num_blocks):
        for j in range(num_blocks):
            value = block_matrix[i, j]
            if value > 0:
                likelihood += value * math.log(value / (d_out[i] * d_in[j]))
    if num_blocks <= 0:
        raise ValueError("block matrix must be non-empty")
    x = (num_blocks * num_blocks) / num_edges if num_edges else 0.0
    h = (1.0 + x) * math.log(1.0 + x) - x * math.log(x) if x > 0 else 0.0
    model = (num_edges * h if num_edges else 0.0) + num_vertices * math.log(num_blocks)
    return model - likelihood


def naive_delta_dl_for_move(
    blockmodel: Blockmodel,
    vertex: int,
    to_block: int,
) -> float:
    """ΔDL of a vertex move computed by full recomputation (oracle)."""
    dense = DenseBlockmodel(blockmodel.graph, blockmodel.assignment, blockmodel.num_blocks)
    before = dense.description_length()
    dense.move_vertex(vertex, to_block)
    after = dense.description_length()
    return after - before
