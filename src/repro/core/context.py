"""Run-lifecycle layer shared by every SBP driver.

A :class:`RunContext` travels with a run through the block-merge / MCMC
cycles and carries three concerns that used to be impossible to express
through the ad-hoc driver functions:

* **observation** — registered :class:`RunObserver` callbacks fire at every
  phase boundary (``on_merge_phase`` after a block-merge phase,
  ``on_mcmc_sweep`` after every MCMC sweep, ``on_cycle`` after each outer
  agglomerative cycle), receiving typed event objects that mirror the
  :class:`~repro.core.results.IterationRecord` history entries;
* **cooperative cancellation** — anyone holding the context (typically an
  observer, via ``event.context.cancel()``, or a
  :class:`~repro.api.handle.RunHandle`) can request a stop; the drivers
  check :meth:`RunContext.should_stop` at phase boundaries and wind down
  gracefully, returning a well-formed partial
  :class:`~repro.core.results.SBPResult` built from the best state seen;
* **wall-clock timeout** — a ``timeout`` behaves exactly like an external
  cancellation that fires once the deadline passes.

The distributed drivers share one context across every simulated MPI rank:
only rank 0 emits events (so callback counts match the single history that
ends up in the result), and stop decisions are broadcast from rank 0 so the
replicated control flow stays in lockstep.  Rank programs obtain the
event-silent view for the other ranks via :meth:`RunContext.silent`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "RunCancelled",
    "RunObserver",
    "CycleEvent",
    "MergePhaseEvent",
    "MCMCSweepEvent",
    "RunContext",
]


class RunCancelled(Exception):
    """Raised by :meth:`RunContext.raise_if_stopped` when a run was stopped.

    The drivers themselves never raise this — they stop cooperatively and
    return a partial result — but strict callers can use it to turn a
    stopped run into an exception.
    """


@dataclass
class CycleEvent:
    """One completed outer (block-merge + MCMC) agglomerative cycle."""

    context: "RunContext"
    cycle: int
    num_blocks: int
    description_length: float
    mcmc_sweeps: int
    accepted_moves: int
    #: Golden-ratio search state after this cycle was folded in (see
    #: :meth:`RunContext.note_search_state`); ``None`` for drivers that do
    #: not run the search.
    search_state: Optional[Dict[str, object]] = None
    #: The cycle's live blockmodel, when the emitting driver runs in the
    #: observer's process (the sequential driver always; EDiSt's rank 0 on
    #: the in-process transports).  Observers that need the partition —
    #: e.g. the serving layer's checkpointer — must copy what they keep:
    #: the object is reused by the driver after the callback returns.
    #: ``None`` when the event crossed a process boundary.
    blockmodel: Optional[object] = None


@dataclass
class MergePhaseEvent:
    """One completed block-merge phase (paper Alg. 1 / Alg. 4)."""

    context: "RunContext"
    cycle: int
    num_blocks_before: int
    num_blocks_after: int
    num_merges_requested: int


@dataclass
class MCMCSweepEvent:
    """One completed MCMC sweep (one pass over the vertices, Alg. 2/5)."""

    context: "RunContext"
    sweep: int
    accepted_moves: int
    proposed_moves: int
    delta_dl: float


class RunObserver:
    """Base class for run observers; override any subset of the hooks.

    All hooks are no-ops by default, so subclasses only implement the
    boundaries they care about.  Hooks run synchronously on the driver's
    thread (rank 0 for the distributed strategies); exceptions propagate
    and abort the run.
    """

    def on_cycle(self, event: CycleEvent) -> None:  # pragma: no cover - default no-op
        pass

    def on_merge_phase(self, event: MergePhaseEvent) -> None:  # pragma: no cover
        pass

    def on_mcmc_sweep(self, event: MCMCSweepEvent) -> None:  # pragma: no cover
        pass


class RunContext:
    """Observer dispatch + cooperative stop state for one partitioning run.

    Parameters
    ----------
    observers:
        :class:`RunObserver` instances to notify at phase boundaries.
    timeout:
        Wall-clock budget in seconds; once exceeded, :meth:`should_stop`
        reports ``True`` (with :attr:`stop_reason` ``"timeout"``) at the
        next phase boundary.  ``None`` disables the deadline.
    """

    def __init__(
        self,
        observers: Iterable[RunObserver] = (),
        timeout: Optional[float] = None,
    ) -> None:
        self.observers: List[RunObserver] = list(observers)
        self.timeout = timeout
        #: Armed lazily at the first :meth:`should_stop` call, so the budget
        #: covers the run itself, not the time a handle sat pending.
        self._deadline: Optional[float] = None
        self._stop_reason: Optional[str] = None
        self._parent: Optional[RunContext] = None
        self._emit = True
        self._controllable = False
        self.event_counts: Dict[str, int] = {"cycle": 0, "merge_phase": 0, "mcmc_sweep": 0}
        self._last_search_state: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Stop state (shared with silent views)
    # ------------------------------------------------------------------
    def _root(self) -> "RunContext":
        return self._parent if self._parent is not None else self

    def cancel(self, reason: str = "cancelled") -> None:
        """Request a cooperative stop; takes effect at the next boundary."""
        root = self._root()
        if root._stop_reason is None:
            root._stop_reason = reason

    @property
    def cancelled(self) -> bool:
        return self._root()._stop_reason == "cancelled"

    @property
    def stop_reason(self) -> Optional[str]:
        """``None`` while running; ``"cancelled"`` or ``"timeout"`` after a stop."""
        return self._root()._stop_reason

    def should_stop(self) -> bool:
        """True once the run was cancelled or ran past its deadline."""
        root = self._root()
        if root is not self:
            # Delegate to the root's *method*, not its attributes: subclassed
            # roots (e.g. the multiprocess transport's bridged context, which
            # forwards the question to the launcher process) must see the
            # question even when it arrives through a silent view.
            return root.should_stop()
        if root._stop_reason is not None:
            return True
        if root.timeout is not None:
            if root._deadline is None:
                root._deadline = time.monotonic() + root.timeout
            if time.monotonic() >= root._deadline:
                root._stop_reason = "timeout"
                return True
        return False

    def mark_controllable(self) -> None:
        """Declare that an external holder may cancel this context mid-run.

        Set by :class:`~repro.api.handle.RunHandle`; makes :attr:`live` true
        so the distributed drivers keep synchronising stop decisions even
        without observers or a timeout.
        """
        self._root()._controllable = True

    @property
    def live(self) -> bool:
        """Whether this run can ever be observed or stopped.

        When false (the bare default context), the distributed drivers skip
        the lifecycle synchronisation traffic entirely, so runs without
        observers/timeout/handle keep exactly the communication profile the
        benchmarks model.  Fixed at run start: observers, timeout, and
        controllability cannot appear mid-run.
        """
        root = self._root()
        return (
            bool(root.observers)
            or root.timeout is not None
            or root._controllable
            or root._stop_reason is not None
        )

    def raise_if_stopped(self) -> None:
        if self.should_stop():
            raise RunCancelled(self.stop_reason or "cancelled")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def silent(self) -> "RunContext":
        """A view sharing this context's stop state but emitting no events.

        Handed to non-root ranks and to DC-SBP's per-rank subgraph runs, so
        cancellation and timeouts reach every worker while observer
        callbacks fire exactly once per logical phase boundary.
        """
        view = RunContext()
        view._parent = self._root()
        view._emit = False
        return view

    # ------------------------------------------------------------------
    # Event emission (called by the drivers)
    # ------------------------------------------------------------------
    def note_search_state(self, state: Dict[str, object]) -> None:
        """Record the golden-ratio search's latest decision.

        Called by :class:`~repro.core.golden_ratio.GoldenRatioSearch` after
        every update; the state rides along on the next ``on_cycle`` event.
        """
        if self._emit:
            self._last_search_state = state

    def emit_cycle(
        self,
        cycle: int,
        num_blocks: int,
        description_length: float,
        mcmc_sweeps: int,
        accepted_moves: int,
        blockmodel: Optional[object] = None,
    ) -> None:
        if not self._emit:
            return
        self.event_counts["cycle"] += 1
        if not self.observers:
            return
        event = CycleEvent(
            context=self,
            cycle=cycle,
            num_blocks=num_blocks,
            description_length=description_length,
            mcmc_sweeps=mcmc_sweeps,
            accepted_moves=accepted_moves,
            search_state=self._last_search_state,
            blockmodel=blockmodel,
        )
        for observer in self.observers:
            observer.on_cycle(event)

    def emit_merge_phase(
        self,
        cycle: int,
        num_blocks_before: int,
        num_blocks_after: int,
        num_merges_requested: int,
    ) -> None:
        if not self._emit:
            return
        self.event_counts["merge_phase"] += 1
        if not self.observers:
            return
        event = MergePhaseEvent(
            context=self,
            cycle=cycle,
            num_blocks_before=num_blocks_before,
            num_blocks_after=num_blocks_after,
            num_merges_requested=num_merges_requested,
        )
        for observer in self.observers:
            observer.on_merge_phase(event)

    def emit_mcmc_sweep(
        self,
        sweep: int,
        accepted_moves: int,
        proposed_moves: int,
        delta_dl: float,
    ) -> None:
        if not self._emit:
            return
        self.event_counts["mcmc_sweep"] += 1
        if not self.observers:
            return
        event = MCMCSweepEvent(
            context=self,
            sweep=sweep,
            accepted_moves=accepted_moves,
            proposed_moves=proposed_moves,
            delta_dl=delta_dl,
        )
        for observer in self.observers:
            observer.on_mcmc_sweep(event)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = self.stop_reason or "running"
        return f"RunContext(observers={len(self.observers)}, timeout={self.timeout}, status={status})"
