"""MCMC move proposals and their Metropolis-Hastings evaluation.

The proposal distribution follows the Graph Challenge / Peixoto formulation
used by the paper's baselines:

1. pick a uniformly random (weighted) neighbour ``u`` of vertex ``v`` and let
   ``t`` be ``u``'s block;
2. with probability ``B / (d_t + B)`` propose a uniformly random block
   (this keeps the chain ergodic and lets new blocks be reached);
3. otherwise propose a block drawn from the edges incident to block ``t``
   (row ``t`` plus column ``t`` of the block matrix, weighted by
   multiplicity).

Because the proposal is not symmetric, acceptance uses the Hastings
correction computed from the same distribution evaluated in the forward and
reverse directions; the acceptance probability is

``min(1, exp(-beta * ΔDL) * p(s→r) / p(r→s))``.

Self-loops of ``v`` are excluded from the correction (they stay attached to
``v`` wherever it goes); this matches the reference implementations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel, VertexBlockCounts
from repro.blockmodel.deltas import BatchMoveEvaluation, MoveDelta, delta_dl_for_move

__all__ = [
    "ProposalEvaluation",
    "propose_block_for_vertex",
    "hastings_correction",
    "hastings_corrections",
    "evaluate_vertex_move",
    "acceptance_probability",
    "acceptance_probabilities",
]


@dataclass
class ProposalEvaluation:
    """A proposed vertex move together with everything needed to accept it."""

    move: MoveDelta
    hastings: float

    @property
    def delta_dl(self) -> float:
        return self.move.delta_dl


def _combined_neighbor_block_counts(counts: VertexBlockCounts) -> Dict[int, int]:
    combined: Dict[int, int] = dict(counts.out_counts)
    for b, w in counts.in_counts.items():
        combined[b] = combined.get(b, 0) + w
    return combined


def propose_block_for_vertex(
    blockmodel: Blockmodel,
    vertex: int,
    rng: np.random.Generator,
) -> int:
    """Propose a destination block for ``vertex`` (may equal its own block)."""
    num_blocks = blockmodel.num_blocks
    if num_blocks <= 1:
        return 0
    graph = blockmodel.graph
    neighbors = graph.neighbors(vertex)
    if neighbors.shape[0] == 0:
        # Isolated vertex: uniform proposal keeps the chain ergodic.
        return int(rng.integers(num_blocks))
    weights = graph.neighbor_weights(vertex)
    total = int(weights.sum())
    if total <= 0:
        # All incident edges have zero weight (possible on degenerate or
        # synthetically corrupted inputs): fall back to the uniform proposal
        # rather than asking the RNG for an integer below 0.
        return int(rng.integers(num_blocks))
    pick = int(rng.integers(total))
    u = int(neighbors[np.searchsorted(np.cumsum(weights), pick, side="right")])
    t = int(blockmodel.assignment[u])
    # Scalar lookups instead of the block_total_degrees property, which
    # materialises a fresh length-B array on every access.
    d_t = int(blockmodel.block_out_degrees[t]) + int(blockmodel.block_in_degrees[t])
    if rng.random() < num_blocks / (d_t + num_blocks):
        return int(rng.integers(num_blocks))
    s = blockmodel.sample_neighbor_block(t, rng)
    if s < 0:
        return int(rng.integers(num_blocks))
    return int(s)


def hastings_correction(
    blockmodel: Blockmodel,
    counts: VertexBlockCounts,
    from_block: int,
    to_block: int,
) -> float:
    """``p(s→r) / p(r→s)`` for the proposal distribution described above."""
    r, s = int(from_block), int(to_block)
    if r == s:
        return 1.0
    combined = _combined_neighbor_block_counts(counts)
    if not combined:
        return 1.0
    num_blocks = blockmodel.num_blocks
    matrix = blockmodel.matrix
    # Scalar degree lookups: the block_total_degrees property would build a
    # fresh length-B array on every proposal evaluation.
    d_out_arr = blockmodel.block_out_degrees
    d_in_arr = blockmodel.block_in_degrees

    def d_total(t: int) -> int:
        return int(d_out_arr[t]) + int(d_in_arr[t])

    # Sparse matrix delta induced by the move (mirrors Blockmodel.move_vertex),
    # needed to evaluate the reverse proposal on the post-move state.
    entry_delta: Dict[Tuple[int, int], int] = {}

    def bump(i: int, j: int, d: int) -> None:
        if d:
            key = (i, j)
            entry_delta[key] = entry_delta.get(key, 0) + d

    for b, w in counts.out_counts.items():
        bump(r, b, -w)
        bump(s, b, w)
    for b, w in counts.in_counts.items():
        bump(b, r, -w)
        bump(b, s, w)
    if counts.self_loop:
        bump(r, r, -counts.self_loop)
        bump(s, s, counts.self_loop)

    def new_value(i: int, j: int) -> int:
        return matrix.get(i, j) + entry_delta.get((i, j), 0)

    degree_shift = counts.out_total + counts.in_total

    def new_degree(t: int) -> int:
        d = d_total(t)
        if t == r:
            d -= degree_shift
        elif t == s:
            d += degree_shift
        return d

    forward = 0.0
    backward = 0.0
    for t, k_t in combined.items():
        forward += k_t * (matrix.get(t, s) + matrix.get(s, t) + 1.0) / (d_total(t) + num_blocks)
        backward += k_t * (new_value(t, r) + new_value(r, t) + 1.0) / (new_degree(t) + num_blocks)
    if forward <= 0.0:
        return 1.0
    return backward / forward


def evaluate_vertex_move(
    blockmodel: Blockmodel,
    vertex: int,
    to_block: int,
    counts: Optional[VertexBlockCounts] = None,
) -> ProposalEvaluation:
    """Evaluate ΔDL and the Hastings correction for one proposed move."""
    if counts is None:
        counts = blockmodel.vertex_block_counts(vertex)
    move = delta_dl_for_move(blockmodel, vertex, to_block, counts)
    if move.from_block == move.to_block:
        return ProposalEvaluation(move, 1.0)
    correction = hastings_correction(blockmodel, counts, move.from_block, move.to_block)
    return ProposalEvaluation(move, correction)


#: log(p) below which exp() underflows to 0.0 (float64 denormal limit).
_LOG_UNDERFLOW = -745.0


def acceptance_probability(evaluation: ProposalEvaluation, beta: float) -> float:
    """``min(1, exp(-beta * ΔDL) * hastings)``, computed in log space.

    Working with ``-beta·ΔDL + log(hastings)`` keeps the two factors from
    over-/underflowing independently: a large negative ΔDL (huge positive
    exponent) no longer forces acceptance when the Hastings factor is tiny,
    and vice versa.  A non-positive Hastings factor (the reverse proposal is
    impossible) rejects outright.
    """
    hastings = evaluation.hastings
    if hastings <= 0.0:
        return 0.0
    log_p = -beta * evaluation.delta_dl + math.log(hastings)
    if log_p >= 0.0:
        return 1.0
    if log_p < _LOG_UNDERFLOW:
        return 0.0
    return math.exp(log_p)


def acceptance_probabilities(
    delta_dl: np.ndarray,
    hastings: np.ndarray,
    beta: float,
) -> np.ndarray:
    """Vectorized :func:`acceptance_probability` over move batches."""
    delta_dl = np.asarray(delta_dl, dtype=np.float64)
    hastings = np.asarray(hastings, dtype=np.float64)
    positive = hastings > 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        log_p = -beta * delta_dl + np.log(np.where(positive, hastings, 1.0))
    probs = np.exp(np.clip(log_p, _LOG_UNDERFLOW, 0.0))
    probs = np.where(log_p >= 0.0, 1.0, probs)
    probs = np.where(log_p < _LOG_UNDERFLOW, 0.0, probs)
    return np.where(positive, probs, 0.0)


def hastings_corrections(
    blockmodel: Blockmodel,
    evaluation: BatchMoveEvaluation,
) -> np.ndarray:
    """Batched :func:`hastings_correction` for a :class:`BatchMoveEvaluation`.

    Evaluates the forward and reverse proposal probabilities of every move
    in the batch with whole-batch gathers (``get_many``) against the same
    stale state the ΔDL kernel used.  Moves with no non-self-loop neighbours
    (or ``from == to``) get the neutral correction 1.0.
    """
    matrix = blockmodel.matrix
    num_blocks = blockmodel.num_blocks
    m = evaluation.vertices.shape[0]
    mid = evaluation.nbr_move
    t = evaluation.nbr_block
    k_t = evaluation.nbr_weight
    r = evaluation.from_blocks[mid]
    s = evaluation.to_blocks[mid]
    d_total = blockmodel.block_total_degrees

    forward_terms = k_t * (matrix.get_many(t, s) + matrix.get_many(s, t) + 1.0) / (
        d_total[t] + num_blocks
    )

    new_tr = matrix.get_many(t, r) + evaluation.entry_delta_at(mid, t, r)
    new_rt = matrix.get_many(r, t) + evaluation.entry_delta_at(mid, r, t)
    shift = (evaluation.out_totals + evaluation.in_totals)[mid]
    new_deg_t = d_total[t] + np.where(t == s, shift, 0) - np.where(t == r, shift, 0)
    backward_terms = k_t * (new_tr + new_rt + 1.0) / (new_deg_t + num_blocks)

    forward = np.bincount(mid, weights=forward_terms, minlength=m)
    backward = np.bincount(mid, weights=backward_terms, minlength=m)
    neutral = (forward <= 0.0) | (evaluation.from_blocks == evaluation.to_blocks)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(neutral, 1.0, backward / np.where(forward > 0.0, forward, 1.0))
    return ratio
