"""MCMC move proposals and their Metropolis-Hastings evaluation.

The proposal distribution follows the Graph Challenge / Peixoto formulation
used by the paper's baselines:

1. pick a uniformly random (weighted) neighbour ``u`` of vertex ``v`` and let
   ``t`` be ``u``'s block;
2. with probability ``B / (d_t + B)`` propose a uniformly random block
   (this keeps the chain ergodic and lets new blocks be reached);
3. otherwise propose a block drawn from the edges incident to block ``t``
   (row ``t`` plus column ``t`` of the block matrix, weighted by
   multiplicity).

Because the proposal is not symmetric, acceptance uses the Hastings
correction computed from the same distribution evaluated in the forward and
reverse directions; the acceptance probability is

``min(1, exp(-beta * ΔDL) * p(s→r) / p(r→s))``.

Self-loops of ``v`` are excluded from the correction (they stay attached to
``v`` wherever it goes); this matches the reference implementations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel, VertexBlockCounts
from repro.blockmodel.deltas import MoveDelta, delta_dl_for_move

__all__ = ["ProposalEvaluation", "propose_block_for_vertex", "hastings_correction", "evaluate_vertex_move"]


@dataclass
class ProposalEvaluation:
    """A proposed vertex move together with everything needed to accept it."""

    move: MoveDelta
    hastings: float

    @property
    def delta_dl(self) -> float:
        return self.move.delta_dl


def _combined_neighbor_block_counts(counts: VertexBlockCounts) -> Dict[int, int]:
    combined: Dict[int, int] = dict(counts.out_counts)
    for b, w in counts.in_counts.items():
        combined[b] = combined.get(b, 0) + w
    return combined


def propose_block_for_vertex(
    blockmodel: Blockmodel,
    vertex: int,
    rng: np.random.Generator,
) -> int:
    """Propose a destination block for ``vertex`` (may equal its own block)."""
    num_blocks = blockmodel.num_blocks
    if num_blocks <= 1:
        return 0
    graph = blockmodel.graph
    neighbors = graph.neighbors(vertex)
    if neighbors.shape[0] == 0:
        # Isolated vertex: uniform proposal keeps the chain ergodic.
        return int(rng.integers(num_blocks))
    weights = graph.neighbor_weights(vertex)
    total = int(weights.sum())
    pick = int(rng.integers(total))
    acc = 0
    u = int(neighbors[-1])
    for nbr, w in zip(neighbors.tolist(), weights.tolist()):
        acc += w
        if pick < acc:
            u = int(nbr)
            break
    t = int(blockmodel.assignment[u])
    d_t = int(blockmodel.block_total_degrees[t])
    if rng.random() < num_blocks / (d_t + num_blocks):
        return int(rng.integers(num_blocks))
    s = blockmodel.sample_neighbor_block(t, rng)
    if s < 0:
        return int(rng.integers(num_blocks))
    return int(s)


def hastings_correction(
    blockmodel: Blockmodel,
    counts: VertexBlockCounts,
    from_block: int,
    to_block: int,
) -> float:
    """``p(s→r) / p(r→s)`` for the proposal distribution described above."""
    r, s = int(from_block), int(to_block)
    if r == s:
        return 1.0
    combined = _combined_neighbor_block_counts(counts)
    if not combined:
        return 1.0
    num_blocks = blockmodel.num_blocks
    matrix = blockmodel.matrix
    d_total = blockmodel.block_total_degrees

    # Sparse matrix delta induced by the move (mirrors Blockmodel.move_vertex),
    # needed to evaluate the reverse proposal on the post-move state.
    entry_delta: Dict[Tuple[int, int], int] = {}

    def bump(i: int, j: int, d: int) -> None:
        if d:
            key = (i, j)
            entry_delta[key] = entry_delta.get(key, 0) + d

    for b, w in counts.out_counts.items():
        bump(r, b, -w)
        bump(s, b, w)
    for b, w in counts.in_counts.items():
        bump(b, r, -w)
        bump(b, s, w)
    if counts.self_loop:
        bump(r, r, -counts.self_loop)
        bump(s, s, counts.self_loop)

    def new_value(i: int, j: int) -> int:
        return matrix.get(i, j) + entry_delta.get((i, j), 0)

    degree_shift = counts.out_total + counts.in_total

    def new_degree(t: int) -> int:
        d = int(d_total[t])
        if t == r:
            d -= degree_shift
        elif t == s:
            d += degree_shift
        return d

    forward = 0.0
    backward = 0.0
    for t, k_t in combined.items():
        forward += k_t * (matrix.get(t, s) + matrix.get(s, t) + 1.0) / (d_total[t] + num_blocks)
        backward += k_t * (new_value(t, r) + new_value(r, t) + 1.0) / (new_degree(t) + num_blocks)
    if forward <= 0.0:
        return 1.0
    return backward / forward


def evaluate_vertex_move(
    blockmodel: Blockmodel,
    vertex: int,
    to_block: int,
    counts: Optional[VertexBlockCounts] = None,
) -> ProposalEvaluation:
    """Evaluate ΔDL and the Hastings correction for one proposed move."""
    if counts is None:
        counts = blockmodel.vertex_block_counts(vertex)
    move = delta_dl_for_move(blockmodel, vertex, to_block, counts)
    if move.from_block == move.to_block:
        return ProposalEvaluation(move, 1.0)
    correction = hastings_correction(blockmodel, counts, move.from_block, move.to_block)
    return ProposalEvaluation(move, correction)


def acceptance_probability(evaluation: ProposalEvaluation, beta: float) -> float:
    """``min(1, exp(-beta * ΔDL) * hastings)`` with overflow protection."""
    exponent = -beta * evaluation.delta_dl
    if exponent > 50:  # exp() would overflow; the move is accepted anyway.
        return 1.0
    return min(1.0, math.exp(exponent) * evaluation.hastings)
