"""EDiSt — exact distributed stochastic block partitioning (the paper's contribution).

Every rank holds the *whole* graph and a full replica of the blockmodel
(data duplication, Table I).  Work is divided by ownership:

* **Block-merge phase (Alg. 4)** — rank ``r`` proposes merges only for the
  communities ``c`` with ``c mod N == r``; the per-community best proposals
  are exchanged with an all-gather and every rank applies the same globally
  best merges, keeping the replicas identical.
* **MCMC phase (Alg. 5)** — vertices are dealt to ranks with the
  degree-sorted balanced assignment of Section III-B; each rank sweeps its
  own vertices (updating its local replica as it goes), then the accepted
  moves are exchanged with an all-gather and each rank applies the other
  ranks' moves.  The phase repeats until the change in description length
  falls below the threshold, evaluated identically on every rank.

Because every rank applies the same merges and the same final set of vertex
moves, the replicated blockmodels remain identical at every synchronisation
point, and the golden-ratio search (run redundantly on every rank) makes the
same decisions everywhere — no additional control-flow communication is
needed.  The cost is the periodic all-gather traffic and the duplicated
memory, which is the trade-off the paper analyses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import SBPConfig
from repro.core.context import RunContext
from repro.core.golden_ratio import GoldenRatioSearch
from repro.core.mcmc import make_sweep_fn
from repro.core.merges import MergeProposal, propose_merges, select_and_apply_merges
from repro.core.results import IterationRecord, SBPResult
from repro.graphs.graph import Graph
from repro.graphs.partition_ops import degree_balanced_assignment
from repro.mpi.communicator import Communicator
from repro.mpi.launcher import run_distributed
from repro.mpi.stats import CommStats
from repro.utils.rng import RngRegistry
from repro.utils.timing import PhaseTimer, Timer

__all__ = ["distributed_block_merge", "distributed_mcmc_phase", "edist_rank_program", "edist"]

#: Safety cap on outer cycles (same role as in the sequential driver).
MAX_CYCLES = 200


def owned_blocks(num_blocks: int, rank: int, size: int) -> np.ndarray:
    """Alg. 4 line 4: rank ``r`` owns the communities ``c`` with ``c mod N == r``."""
    return np.arange(rank, num_blocks, size, dtype=np.int64)


def distributed_block_merge(
    comm: Communicator,
    blockmodel: Blockmodel,
    num_merges: int,
    config: SBPConfig,
    rng: np.random.Generator,
    timers: Optional[PhaseTimer] = None,
    run_context: Optional[RunContext] = None,
    cycle: int = 0,
) -> Blockmodel:
    """One distributed block-merge phase (Alg. 4).

    Proposals are computed for the locally owned communities only, exchanged
    via all-gather, and the same merges are applied on every rank.
    """
    timers = timers or PhaseTimer()
    ctx = run_context or RunContext()
    with timers.measure("block_merge_compute"):
        local = propose_merges(blockmodel, owned_blocks(blockmodel.num_blocks, comm.rank, comm.size), config, rng)
    with timers.measure("communication"):
        gathered: List[List[MergeProposal]] = comm.allgather(local)
    with timers.measure("block_merge_apply"):
        all_proposals = [p for rank_proposals in gathered for p in rank_proposals]
        merged = select_and_apply_merges(blockmodel, all_proposals, num_merges)
    ctx.emit_merge_phase(
        cycle=cycle,
        num_blocks_before=blockmodel.num_blocks,
        num_blocks_after=merged.num_blocks,
        num_merges_requested=num_merges,
    )
    return merged


def distributed_mcmc_phase(
    comm: Communicator,
    blockmodel: Blockmodel,
    config: SBPConfig,
    rng: np.random.Generator,
    vertex_owner: np.ndarray,
    timers: Optional[PhaseTimer] = None,
    run_context: Optional[RunContext] = None,
    lifecycle_sync: Optional[bool] = None,
) -> Tuple[Blockmodel, float, int, int]:
    """One distributed MCMC phase (Alg. 5).

    Returns ``(blockmodel, description_length, sweeps, accepted_moves)``.
    The blockmodel is mutated in place (it is this rank's replica).

    With ``lifecycle_sync`` (a live run context: observers, timeout, or a
    controlling handle), stop decisions are evaluated by rank 0 only and
    piggybacked on the per-sweep description-length broadcast, and global
    proposal counts ride along on the move all-gather — so every replica
    leaves the loop at the same sweep and sweep events carry globally
    consistent (accepted, proposed) pairs.  Without it, the communication
    profile is exactly the bare algorithm's, so benchmark runs measure the
    paper's traffic, not the plumbing's.
    """
    timers = timers or PhaseTimer()
    ctx = run_context or RunContext()
    if lifecycle_sync is None:
        lifecycle_sync = ctx.live
    sweep_fn = make_sweep_fn(config)
    my_vertices = np.flatnonzero(vertex_owner == comm.rank)

    current_dl = blockmodel.description_length()
    total_accepted = 0
    sweeps = 0
    for _ in range(config.max_mcmc_iterations):
        sweeps += 1
        with timers.measure("mcmc_compute"):
            sweep = sweep_fn(blockmodel, my_vertices, config, rng)
        with timers.measure("communication"):
            outbound = (sweep.moves, sweep.proposed_moves) if lifecycle_sync else sweep.moves
            gathered = comm.allgather(outbound)
        with timers.measure("mcmc_apply"):
            accepted_this_iteration = 0
            proposed_this_iteration = 0
            for source_rank, entry in enumerate(gathered):
                moves, proposed = entry if lifecycle_sync else (entry, 0)
                accepted_this_iteration += len(moves)
                proposed_this_iteration += int(proposed)
                if source_rank == comm.rank:
                    continue  # already applied during the local sweep
                for vertex, block in moves:
                    # Alg. 5 line 18: skip moves that are already in effect.
                    if int(blockmodel.assignment[vertex]) != block:
                        blockmodel.move_vertex(int(vertex), int(block))
            total_accepted += accepted_this_iteration
        # Alg. 5 line 22 recomputes the MDL on every rank; all replicas are
        # identical at this point, so in the *simulated* (single-process)
        # communicator that redundant work would be serialised by the GIL.
        # Rank 0 computes it and broadcasts the scalar instead — the result
        # is bit-identical and the added broadcast is negligible traffic.
        with timers.measure("mcmc_compute"):
            if comm.rank == 0 or comm.size == 1:
                stop = ctx.should_stop() if lifecycle_sync else False
                payload = (blockmodel.description_length(), stop) if lifecycle_sync else blockmodel.description_length()
            else:
                payload = None
        if comm.size > 1:
            with timers.measure("communication"):
                payload = comm.bcast(payload, root=0)
        new_dl, stop = payload if lifecycle_sync else (payload, False)
        delta = new_dl - current_dl
        current_dl = new_dl
        ctx.emit_mcmc_sweep(
            sweep=sweeps,
            accepted_moves=accepted_this_iteration,
            proposed_moves=proposed_this_iteration,
            delta_dl=delta,
        )
        if stop or abs(delta) < config.mcmc_convergence_threshold * abs(current_dl):
            break
    return blockmodel, current_dl, sweeps, total_accepted


def edist_rank_program(
    comm: Communicator,
    graph: Graph,
    config: SBPConfig,
    run_context: Optional[RunContext] = None,
    lifecycle_sync: Optional[bool] = None,
) -> dict:
    """The per-rank EDiSt program: the full agglomerative loop of Fig. 1.

    Control flow (golden-ratio search) is replicated deterministically on
    every rank; only merge proposals and accepted vertex moves are
    communicated.  The shared :class:`RunContext` follows the same
    discipline: only rank 0 emits observer events, and — on lifecycle-active
    runs (``lifecycle_sync``, decided once at launch so every rank gates the
    same collectives) — the per-cycle stop decision (cancellation / timeout)
    is broadcast from rank 0 so that every replica leaves the loop at the
    same cycle.
    """
    timers = PhaseTimer()
    root_ctx = run_context or RunContext()
    if lifecycle_sync is None:
        lifecycle_sync = root_ctx.live
    ctx = root_ctx if comm.rank == 0 else root_ctx.silent()
    rngs = RngRegistry(config.seed).child("edist", comm.rank)
    vertex_owner = degree_balanced_assignment(graph, comm.size)

    current = Blockmodel.from_graph(graph, matrix_backend=config.matrix_backend)
    search = GoldenRatioSearch(config.block_reduction_rate, config.min_blocks, run_context=ctx)
    num_to_merge = max(int(round(current.num_blocks * config.block_reduction_rate)), 0)
    history: List[IterationRecord] = []

    cycle = 0
    while cycle < MAX_CYCLES:
        cycle += 1
        merged = distributed_block_merge(
            comm, current, num_to_merge, config, rngs.get("merge", cycle), timers,
            run_context=ctx, cycle=cycle,
        )
        merged, dl, sweeps, accepted = distributed_mcmc_phase(
            comm, merged, config, rngs.get("mcmc", cycle), vertex_owner, timers,
            run_context=ctx, lifecycle_sync=lifecycle_sync,
        )
        if config.validate:
            merged.check_consistency()
            # All replicas must agree after the synchronisation points.
            digests = comm.allgather(int(np.bitwise_xor.reduce(merged.assignment * 2654435761 % (2**31))))
            if len(set(digests)) != 1:
                raise AssertionError("EDiSt replicas diverged")
        if config.track_history:
            history.append(
                IterationRecord(
                    iteration=cycle,
                    num_blocks=merged.num_blocks,
                    description_length=dl,
                    mcmc_sweeps=sweeps,
                    accepted_moves=accepted,
                )
            )
        decision = search.update(merged, dl)
        ctx.emit_cycle(
            cycle=cycle,
            num_blocks=merged.num_blocks,
            description_length=dl,
            mcmc_sweeps=sweeps,
            accepted_moves=accepted,
            blockmodel=merged,
        )
        # The stop decision must be identical on every replica even though
        # observers (and hence cancellations) live on rank 0 and the timeout
        # clock may be read at slightly different moments per rank: rank 0
        # decides and broadcasts.  Lifecycle-inactive runs skip the exchange
        # — should_stop is constant False there — keeping the bare
        # algorithm's communication profile.
        stop = False
        if lifecycle_sync:
            stop = ctx.should_stop() if comm.rank == 0 else None
            if comm.size > 1:
                stop = comm.bcast(stop, root=0)
        if decision.done or stop:
            break
        current = decision.start.copy()
        num_to_merge = decision.num_blocks_to_merge

    best = search.best()
    return {
        "assignment": best.blockmodel.assignment.copy(),
        "description_length": best.description_length,
        "phase_seconds": timers.as_dict(),
        "history": history,
        "cycles": cycle,
        "stopped": root_ctx.stop_reason,
        "rank": comm.rank,
    }


def edist(
    graph: Graph,
    num_ranks: int,
    config: Optional[SBPConfig] = None,
    run_context: Optional[RunContext] = None,
) -> SBPResult:
    """Run EDiSt over ``num_ranks`` simulated MPI ranks and collect the result."""
    config = config or SBPConfig()
    total = Timer()
    total.start()
    # Liveness is captured once, before any rank thread starts, so every
    # replica gates the lifecycle collectives identically even if a cancel
    # races the launch.
    lifecycle_sync = run_context.live if run_context is not None else False
    run = run_distributed(
        num_ranks, edist_rank_program, graph, config,
        run_context=run_context, lifecycle_sync=lifecycle_sync,
        transport=config.transport,
    )
    total.stop()

    root = run.results[0]
    blockmodel = Blockmodel.from_assignment(
        graph, root["assignment"], relabel=True, matrix_backend=config.matrix_backend
    )

    per_rank_phases = [r["phase_seconds"] for r in run.results]
    phase_totals: dict = {}
    for phases in per_rank_phases:
        for name, secs in phases.items():
            phase_totals[name] = phase_totals.get(name, 0.0) + secs

    return SBPResult(
        graph=graph,
        blockmodel=blockmodel,
        description_length=blockmodel.description_length(),
        algorithm="edist",
        num_ranks=num_ranks,
        runtime_seconds=total.elapsed,
        phase_seconds=phase_totals,
        history=root["history"],
        comm_stats=CommStats.aggregate(run.comm_stats),
        metadata={
            "per_rank_phase_seconds": per_rank_phases,
            "cycles": root["cycles"],
            **({"stopped": root["stopped"]} if root.get("stopped") else {}),
        },
    )
