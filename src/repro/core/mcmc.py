"""The MCMC (nodal move) phase — paper Alg. 2 and its parallel variants.

The strictly sequential Metropolis-Hastings sweep lives here;
:mod:`repro.core.hybrid_mcmc` builds the hybrid (sequential + asynchronous
Gibbs) and batch variants on top of the same proposal machinery.  The phase
driver :func:`mcmc_phase` implements Alg. 2's outer loop: sweeps repeat until
the per-sweep change in description length falls below
``threshold × DL`` or the iteration cap is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import MCMCVariant, SBPConfig
from repro.core.context import RunContext
from repro.core.proposals import acceptance_probability, evaluate_vertex_move, propose_block_for_vertex

__all__ = ["SweepResult", "MCMCPhaseResult", "metropolis_hastings_sweep", "mcmc_phase", "make_sweep_fn"]


@dataclass
class SweepResult:
    """Outcome of one pass over the vertices.

    ``moves`` lists the accepted ``(vertex, destination_block)`` pairs in the
    order they were applied; the distributed MCMC phase (EDiSt Alg. 5)
    exchanges exactly this list between ranks.
    """

    accepted_moves: int = 0
    proposed_moves: int = 0
    delta_dl: float = 0.0
    moves: List[tuple] = field(default_factory=list)


@dataclass
class MCMCPhaseResult:
    """Outcome of a full MCMC phase (several sweeps)."""

    blockmodel: Blockmodel
    description_length: float
    sweeps: int
    accepted_moves: int
    sweep_results: List[SweepResult] = field(default_factory=list)


#: Signature shared by all sweep implementations: they mutate the blockmodel
#: in place and report how much the description length changed.
SweepFn = Callable[[Blockmodel, Sequence[int], SBPConfig, np.random.Generator], SweepResult]


def metropolis_hastings_sweep(
    blockmodel: Blockmodel,
    vertices: Sequence[int],
    config: SBPConfig,
    rng: np.random.Generator,
) -> SweepResult:
    """One strictly sequential Metropolis-Hastings pass (Alg. 2 lines 3-10)."""
    result = SweepResult()
    for v in vertices:
        v = int(v)
        proposal_block = propose_block_for_vertex(blockmodel, v, rng)
        current_block = int(blockmodel.assignment[v])
        if proposal_block == current_block:
            continue
        result.proposed_moves += 1
        counts = blockmodel.vertex_block_counts(v)
        evaluation = evaluate_vertex_move(blockmodel, v, proposal_block, counts)
        if rng.random() < acceptance_probability(evaluation, config.beta):
            blockmodel.move_vertex(v, proposal_block, counts)
            result.accepted_moves += 1
            result.delta_dl += evaluation.delta_dl
            result.moves.append((v, proposal_block))
    return result


def make_sweep_fn(config: SBPConfig) -> SweepFn:
    """Return the sweep implementation selected by ``config.mcmc_variant``."""
    if config.mcmc_variant == MCMCVariant.METROPOLIS_HASTINGS:
        return metropolis_hastings_sweep
    # Imported lazily to avoid a circular import at module load time.
    from repro.core.hybrid_mcmc import batch_gibbs_sweep, hybrid_sweep

    if config.mcmc_variant == MCMCVariant.HYBRID:
        return hybrid_sweep
    if config.mcmc_variant == MCMCVariant.BATCH_GIBBS:
        return batch_gibbs_sweep
    raise ValueError(f"unknown mcmc_variant {config.mcmc_variant!r}")


def mcmc_phase(
    blockmodel: Blockmodel,
    config: SBPConfig,
    rng: np.random.Generator,
    vertices: Optional[Sequence[int]] = None,
    sweep_fn: Optional[SweepFn] = None,
    run_context: Optional[RunContext] = None,
) -> MCMCPhaseResult:
    """Run MCMC sweeps until convergence (Alg. 2).

    The blockmodel is mutated in place and also returned for convenience.

    Parameters
    ----------
    vertices:
        The vertices to sweep over (defaults to all).  The distributed MCMC
        phase passes only the vertices owned by the local rank.
    sweep_fn:
        Override the sweep implementation (defaults to the one selected by
        ``config.mcmc_variant``).
    run_context:
        Lifecycle context: an ``on_mcmc_sweep`` event fires after every
        sweep, and the phase winds down early (keeping the state reached so
        far) once the context reports a stop.
    """
    if vertices is None:
        vertices = np.arange(blockmodel.num_vertices)
    if sweep_fn is None:
        sweep_fn = make_sweep_fn(config)
    ctx = run_context or RunContext()

    sweep_results: List[SweepResult] = []
    total_accepted = 0
    # Alg. 2 line 12 stops when a sweep's |ΔDL| < t × DL.  The DL on the
    # right-hand side must be the exact current value: on the asynchronous
    # variants the summed per-move deltas drift (each delta is exact only
    # for the stale state it was evaluated on), making the phase terminate
    # early or late off stale state.  Recomputing the exact DL every sweep
    # would add O(nnz) serial work to every sweep of every rank, so the
    # accumulated DL is used only as a cheap screen: termination is always
    # *confirmed* against a fresh exact recomputation (which also resyncs
    # the accumulator, bounding the drift).  The strictly sequential MH
    # sweep evaluates every delta against fresh state, so its accumulated
    # DL needs no confirmation.
    deltas_are_exact = (
        config.mcmc_variant == MCMCVariant.METROPOLIS_HASTINGS
        and sweep_fn is metropolis_hastings_sweep
    )
    current_dl = blockmodel.description_length()
    exact_dl: Optional[float] = None
    for _ in range(config.max_mcmc_iterations):
        if ctx.should_stop():
            break
        sweep = sweep_fn(blockmodel, vertices, config, rng)
        sweep_results.append(sweep)
        total_accepted += sweep.accepted_moves
        current_dl += sweep.delta_dl
        exact_dl = None
        ctx.emit_mcmc_sweep(
            sweep=len(sweep_results),
            accepted_moves=sweep.accepted_moves,
            proposed_moves=sweep.proposed_moves,
            delta_dl=sweep.delta_dl,
        )
        if abs(sweep.delta_dl) < config.mcmc_convergence_threshold * abs(current_dl):
            if deltas_are_exact:
                break
            exact_dl = blockmodel.description_length()
            current_dl = exact_dl
            if abs(sweep.delta_dl) < config.mcmc_convergence_threshold * abs(exact_dl):
                break
    # Report an exact DL regardless of how convergence was tracked.
    final_dl = exact_dl if exact_dl is not None else blockmodel.description_length()
    return MCMCPhaseResult(
        blockmodel=blockmodel,
        description_length=final_dl,
        sweeps=len(sweep_results),
        accepted_moves=total_accepted,
        sweep_results=sweep_results,
    )
