"""Hybrid and batch MCMC sweeps (the shared-memory parallel formulation).

The paper parallelises MCMC inside a rank with the Hybrid SBP algorithm of
Wanye et al. [11]: *informative, high-degree* vertices are processed
sequentially with exact Metropolis-Hastings, while the long tail of
low-degree vertices is processed with asynchronous Gibbs sampling — many
proposals evaluated against a slightly stale blockmodel, whose accepted
moves are then applied.

In this pure-Python reproduction the asynchronous batch is modelled
*algorithmically*: proposals within a batch are all evaluated against the
state at the start of the batch (that is the staleness that matters for
convergence behaviour), then the accepted moves are applied one after
another with freshly recomputed neighbour counts so the blockmodel stays
exactly consistent with the assignment.  True thread-level parallelism would
not change the sampled distribution further, only the wall-clock time, which
the harness models separately.

``batch_gibbs_sweep`` is the degenerate case where *every* vertex is
evaluated against the sweep-start state — this is the batch parallelism of
the original Graph Challenge python implementation, used here as the
"reference implementation" baseline of Table VI.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel
from repro.blockmodel.deltas import delta_dl_for_moves
from repro.core.config import SBPConfig
from repro.core.mcmc import SweepResult, metropolis_hastings_sweep
from repro.core.proposals import (
    acceptance_probabilities,
    acceptance_probability,
    evaluate_vertex_move,
    hastings_corrections,
    propose_block_for_vertex,
)

__all__ = ["split_by_degree", "asynchronous_batch", "hybrid_sweep", "batch_gibbs_sweep"]


def split_by_degree(
    blockmodel: Blockmodel,
    vertices: Sequence[int],
    high_degree_fraction: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``vertices`` into (high-degree, low-degree) sets.

    The top ``high_degree_fraction`` of the vertices by total degree are the
    "informative" ones processed sequentially by the hybrid sweep.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return vertices, vertices
    n_high = int(round(high_degree_fraction * vertices.size))
    if n_high <= 0:
        return vertices[:0], vertices
    if n_high >= vertices.size:
        return vertices, vertices[:0]
    degrees = blockmodel.graph.degrees[vertices]
    order = np.argsort(-degrees, kind="stable")
    return vertices[order[:n_high]], vertices[order[n_high:]]


def asynchronous_batch(
    blockmodel: Blockmodel,
    batch: Sequence[int],
    config: SBPConfig,
    rng: np.random.Generator,
) -> SweepResult:
    """Evaluate a batch of proposals against a stale state, then apply them.

    Every proposal in the batch is generated and evaluated against the
    blockmodel as it stood at the start of the batch.  Accepted moves are
    applied afterwards; their recorded ΔDL values are the stale estimates
    (the phase driver recomputes the exact DL at the end of the phase).
    """
    if getattr(blockmodel.matrix, "supports_batched_kernels", False):
        return _vectorized_asynchronous_batch(blockmodel, batch, config, rng)
    result = SweepResult()
    # The blockmodel is not mutated while the batch is being evaluated, so it
    # *is* the stale snapshot every proposal sees; no copy is needed.
    accepted: List[Tuple[int, int, float]] = []
    for v in batch:
        v = int(v)
        proposal_block = propose_block_for_vertex(blockmodel, v, rng)
        current_block = int(blockmodel.assignment[v])
        if proposal_block == current_block:
            continue
        result.proposed_moves += 1
        evaluation = evaluate_vertex_move(blockmodel, v, proposal_block)
        if rng.random() < acceptance_probability(evaluation, config.beta):
            accepted.append((v, proposal_block, evaluation.delta_dl))
    for v, target, delta in accepted:
        if int(blockmodel.assignment[v]) != target:
            blockmodel.move_vertex(v, target)
        result.accepted_moves += 1
        result.delta_dl += delta
        result.moves.append((v, target))
    return result


def _vectorized_asynchronous_batch(
    blockmodel: Blockmodel,
    batch: Sequence[int],
    config: SBPConfig,
    rng: np.random.Generator,
) -> SweepResult:
    """Batched-backend version of :func:`asynchronous_batch`.

    Proposals (and the acceptance uniforms) are still drawn per vertex in
    exactly the same order as the scalar path — so a fixed seed yields the
    same proposal sequence on both backends — but all ΔDL evaluations and
    Hastings corrections of the batch are computed with the vectorized
    kernels (:func:`repro.blockmodel.deltas.delta_dl_for_moves`) in a
    handful of whole-batch numpy operations.
    """
    result = SweepResult()
    assignment = blockmodel.assignment
    move_vertices: List[int] = []
    move_targets: List[int] = []
    draws: List[float] = []
    for v in batch:
        v = int(v)
        proposal_block = propose_block_for_vertex(blockmodel, v, rng)
        if proposal_block == int(assignment[v]):
            continue
        result.proposed_moves += 1
        move_vertices.append(v)
        move_targets.append(proposal_block)
        # The scalar path draws the acceptance uniform right after evaluating
        # the (RNG-free) proposal; drawing it here preserves the stream.
        draws.append(rng.random())
    if not move_vertices:
        return result

    evaluation = delta_dl_for_moves(
        blockmodel, np.asarray(move_vertices), np.asarray(move_targets)
    )
    hastings = hastings_corrections(blockmodel, evaluation)
    probs = acceptance_probabilities(evaluation.delta_dl, hastings, config.beta)
    accepted_idx = np.flatnonzero(np.asarray(draws) < probs)

    # The derived state (matrix, degrees, sizes) is a pure function of the
    # assignment, so a large accepted set is cheaper to apply as one
    # vectorized rebuild than as per-move incremental updates; small sets
    # (the common case for the hybrid variant's 64-vertex batches) stay
    # incremental.  Both paths produce identical integer state.
    rebuild = accepted_idx.size >= 64 and accepted_idx.size * 100 >= blockmodel.num_vertices
    if rebuild:
        vs = np.asarray([move_vertices[i] for i in accepted_idx], dtype=np.int64)
        ts = np.asarray([move_targets[i] for i in accepted_idx], dtype=np.int64)
        blockmodel.assignment[vs] = ts  # vertices are unique within a batch
        blockmodel.refresh_derived_state()
    for idx in accepted_idx:
        v = move_vertices[idx]
        target = move_targets[idx]
        if not rebuild and int(blockmodel.assignment[v]) != target:
            blockmodel.move_vertex(v, target)
        result.accepted_moves += 1
        result.delta_dl += float(evaluation.delta_dl[idx])
        result.moves.append((v, target))
    return result


def hybrid_sweep(
    blockmodel: Blockmodel,
    vertices: Sequence[int],
    config: SBPConfig,
    rng: np.random.Generator,
) -> SweepResult:
    """One hybrid sweep: sequential MH for hubs, async batches for the tail."""
    high, low = split_by_degree(blockmodel, vertices, config.hybrid_high_degree_fraction)
    total = SweepResult()

    sequential = metropolis_hastings_sweep(blockmodel, high, config, rng)
    total.accepted_moves += sequential.accepted_moves
    total.proposed_moves += sequential.proposed_moves
    total.delta_dl += sequential.delta_dl
    total.moves.extend(sequential.moves)

    batch_size = max(int(config.hybrid_batch_size), 1)
    for start in range(0, low.shape[0], batch_size):
        batch = low[start : start + batch_size]
        batch_result = asynchronous_batch(blockmodel, batch, config, rng)
        total.accepted_moves += batch_result.accepted_moves
        total.proposed_moves += batch_result.proposed_moves
        total.delta_dl += batch_result.delta_dl
        total.moves.extend(batch_result.moves)
    return total


def batch_gibbs_sweep(
    blockmodel: Blockmodel,
    vertices: Sequence[int],
    config: SBPConfig,
    rng: np.random.Generator,
) -> SweepResult:
    """Whole-sweep batch parallelism: every proposal sees the sweep-start state.

    This reproduces the convergence behaviour of the original python Graph
    Challenge implementation's batched MCMC (the paper's Table VI baseline),
    which converges more slowly per sweep than the hybrid algorithm because
    all proposals are evaluated against stale state.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    return asynchronous_batch(blockmodel, vertices, config, rng)
