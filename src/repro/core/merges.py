"""The block-merge phase (paper Alg. 1 and the distributed Alg. 4).

Each block proposes ``x`` candidate merge targets, keeps the one with the
best (most negative) ΔDL, and then the globally best proposals are applied —
chasing merge pointers so that merging into an already-merged block lands in
its final destination (the paper's optimisation (d)) — until the requested
number of merges has been performed (by default half of the blocks, Alg. 1
line 15).

The same proposal code serves the sequential algorithm (every block is
proposed locally) and EDiSt (each rank proposes only for the blocks it owns
and the proposals are exchanged with an all-gather before being applied by
every rank identically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel, resolve_merge_chain
from repro.blockmodel.deltas import delta_dl_for_merge, delta_dl_for_merges
from repro.core.config import SBPConfig
from repro.utils.rng import BatchedDrawRNG

__all__ = [
    "MergeProposal",
    "propose_merges",
    "best_segmented_merges",
    "select_and_apply_merges",
    "block_merge_phase",
]


@dataclass(frozen=True)
class MergeProposal:
    """The best merge found for one block."""

    block: int
    target: int
    delta_dl: float


def _propose_merge_target(
    blockmodel: Blockmodel,
    block: int,
    rng,
    cumsum_cache: Optional[dict] = None,
) -> int:
    """Propose a candidate block to merge ``block`` into.

    Mirrors the vertex proposal: pick a block adjacent to ``block`` (call it
    ``t``); with probability ``B / (d_t + B)`` jump to a uniformly random
    other block, otherwise follow one of ``t``'s edges.  Falls back to a
    uniform random other block whenever the walk lands back on ``block`` or
    on an empty neighbourhood.  ``rng`` is either a
    :class:`numpy.random.Generator` (the reference path) or a
    :class:`~repro.utils.rng.BatchedDrawRNG` serving bit-identical draws
    from bulk prefetches (the batched path).  ``cumsum_cache`` is forwarded
    to :meth:`Blockmodel.sample_neighbor_block` (the batched path memoizes
    the per-block cumulative sums across the phase's many proposals).
    """
    num_blocks = blockmodel.num_blocks
    if num_blocks <= 1:
        return block

    def random_other() -> int:
        offset = int(rng.integers(1, num_blocks))
        return (block + offset) % num_blocks

    t = blockmodel.sample_neighbor_block(block, rng, cumsum_cache)
    if t < 0:
        return random_other()
    d_t = int(blockmodel.block_out_degrees[t]) + int(blockmodel.block_in_degrees[t])
    if rng.random() < num_blocks / (d_t + num_blocks):
        return random_other()
    s = blockmodel.sample_neighbor_block(t, rng, cumsum_cache)
    if s < 0 or s == block:
        return random_other()
    return int(s)


def best_segmented_merges(
    blockmodel: Blockmodel,
    segments: Sequence[tuple],
    targets: Sequence[int],
) -> List[tuple]:
    """Score segmented merge candidates in one batch, keep each segment's best.

    ``segments`` is a list of ``(block, start, end)`` half-open ranges tiling
    ``targets`` in order: segment ``k`` proposes merging ``block`` into each
    of ``targets[start:end]``.  All candidates are scored with one
    :func:`delta_dl_for_merges` call; per segment the first minimum wins
    (``np.argmin`` keeps the first of equal minima, matching the reference
    paths' strict ``<`` update).  Returns ``(block, target, delta_dl)``
    triples for every non-empty segment — used by the batched
    :func:`propose_merges` and the DC-SBP combine step alike.
    """
    targets_arr = np.asarray(targets, dtype=np.int64)
    blocks_arr = np.asarray([seg[0] for seg in segments], dtype=np.int64)
    lengths = np.asarray([seg[2] - seg[1] for seg in segments], dtype=np.int64)
    from_blocks = np.repeat(blocks_arr, lengths)
    deltas = delta_dl_for_merges(blockmodel, from_blocks, targets_arr)
    best: List[tuple] = []
    for block, start, end in segments:
        if start == end:
            continue
        k = start + int(np.argmin(deltas[start:end]))
        best.append((block, int(targets_arr[k]), float(deltas[k])))
    return best


def propose_merges(
    blockmodel: Blockmodel,
    blocks: Iterable[int],
    config: SBPConfig,
    rng: np.random.Generator,
) -> List[MergeProposal]:
    """Best merge proposal for each of the given blocks (Alg. 1 lines 2-10).

    Empty blocks are skipped (nothing to merge).  On a batched backend
    (``supports_batched_kernels``: ``"csr"`` / ``"sparse_csr"``) the
    candidate targets are drawn first — in the same RNG order as the
    per-proposal reference path — and all of them are scored with one
    whole-batch :func:`delta_dl_for_merges` call; the deltas are
    bit-identical to the per-proposal path, so every backend selects the
    same merges under the same seed.
    """
    if getattr(blockmodel.matrix, "supports_batched_kernels", False):
        return _propose_merges_batched(blockmodel, blocks, config, rng)
    proposals: List[MergeProposal] = []
    sizes = blockmodel.block_sizes
    for block in blocks:
        block = int(block)
        if sizes[block] <= 0:
            continue
        best_target = -1
        best_delta = float("inf")
        for _ in range(config.merge_proposals_per_block):
            target = _propose_merge_target(blockmodel, block, rng)
            if target == block:
                continue
            delta = delta_dl_for_merge(blockmodel, block, target)
            if delta < best_delta:
                best_delta = delta
                best_target = target
        if best_target >= 0:
            proposals.append(MergeProposal(block, best_target, float(best_delta)))
    return proposals


def _propose_merges_batched(
    blockmodel: Blockmodel,
    blocks: Iterable[int],
    config: SBPConfig,
    rng: np.random.Generator,
) -> List[MergeProposal]:
    """Batched-backend :func:`propose_merges`: draw all targets, score once.

    Proposal drawing consumes the RNG stream exactly like the reference
    path (per block, per proposal), but the walk randoms are served from
    bulk bit-stream prefetches: :class:`~repro.utils.rng.BatchedDrawRNG`
    pulls thousands of raw words per ``random_raw`` call and replays
    NumPy's own word-to-value maps, so the drawn targets — and therefore
    the selections on the committed golden traces — stay bitwise identical
    to per-call ``Generator`` draws while eliminating the per-draw
    ``Generator`` dispatch overhead.  The ΔDL evaluation is batched through
    :func:`best_segmented_merges` (whose tie-breaking matches the reference
    path's strict ``<`` update).
    """
    sizes = blockmodel.block_sizes
    cumsum_cache: dict = {}
    cand_targets: List[int] = []
    segments: List[tuple] = []  # (block, start, end) into cand_targets
    walk_rng = BatchedDrawRNG.wrap(rng)
    try:
        for block in blocks:
            block = int(block)
            if sizes[block] <= 0:
                continue
            start = len(cand_targets)
            for _ in range(config.merge_proposals_per_block):
                target = _propose_merge_target(blockmodel, block, walk_rng, cumsum_cache)
                if target == block:
                    continue
                cand_targets.append(target)
            segments.append((block, start, len(cand_targets)))
    finally:
        if isinstance(walk_rng, BatchedDrawRNG):
            walk_rng.sync()
    if not cand_targets:
        return []
    return [
        MergeProposal(block, target, delta)
        for block, target, delta in best_segmented_merges(blockmodel, segments, cand_targets)
    ]


def select_and_apply_merges(
    blockmodel: Blockmodel,
    proposals: Sequence[MergeProposal],
    num_merges: int,
) -> Blockmodel:
    """Apply the ``num_merges`` best proposals (Alg. 1 lines 11-15).

    Proposals are processed in ascending ΔDL order.  A pointer array tracks
    where each block has already been merged, so later proposals whose target
    has itself been merged follow the chain to the terminal block; proposals
    that would merge a block into itself (directly or through the chain) are
    skipped without counting towards ``num_merges``.
    """
    num_blocks = blockmodel.num_blocks
    merge_target = np.arange(num_blocks, dtype=np.int64)
    if num_merges <= 0 or not proposals:
        return blockmodel.copy()

    performed = 0
    # Ties are broken on (block, target) so that every EDiSt rank applies the
    # proposals in exactly the same order and the replicated blockmodels stay
    # bit-identical.
    for proposal in sorted(proposals, key=lambda p: (p.delta_dl, p.block, p.target)):
        if performed >= num_merges:
            break
        block = int(proposal.block)
        target = int(proposal.target)
        # Chase pointers for both endpoints.
        while merge_target[block] != block:
            block = int(merge_target[block])
        while merge_target[target] != target:
            target = int(merge_target[target])
        if block == target:
            continue
        merge_target[int(proposal.block)] = target
        merge_target[block] = target
        performed += 1

    resolved = resolve_merge_chain(merge_target)
    return blockmodel.apply_block_merges(resolved)


def block_merge_phase(
    blockmodel: Blockmodel,
    num_merges: int,
    config: SBPConfig,
    rng: np.random.Generator,
    blocks: Optional[Iterable[int]] = None,
) -> Blockmodel:
    """One complete (sequential) block-merge phase.

    Parameters
    ----------
    num_merges:
        How many blocks to remove; the SBP driver passes
        ``round(B * block_reduction_rate)`` for the standard halving.
    blocks:
        Restrict proposals to this subset of blocks (used by tests); by
        default every non-empty block proposes a merge.
    """
    if blocks is None:
        blocks = range(blockmodel.num_blocks)
    proposals = propose_merges(blockmodel, blocks, config, rng)
    return select_and_apply_merges(blockmodel, proposals, num_merges)
