"""Configuration for every SBP variant in the library.

One dataclass drives the sequential baseline, the Hybrid shared-memory
variant, DC-SBP, and EDiSt, so that experiments hold the algorithmic
parameters fixed while varying only the distribution strategy — which is how
the paper's comparisons are set up.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, Optional

from repro.blockmodel.backend import available_backends, backend_registry_hint
from repro.mpi.transport import available_transports, transport_registry_hint

# Importing the blockmodel package side-effect registers the built-in
# storage backends, so validation below sees the full registry; likewise
# the mpi package registers the built-in transports (self/threads/processes).
import repro.blockmodel.blockmodel  # noqa: F401
import repro.mpi  # noqa: F401

__all__ = [
    "SBPConfig",
    "MCMCVariant",
    "MatrixBackend",
    "TransportName",
    "register_config_preset",
    "config_preset",
    "available_presets",
]


class MCMCVariant:
    """Names of the supported MCMC engines (see :mod:`repro.core.mcmc`)."""

    METROPOLIS_HASTINGS = "metropolis_hastings"
    HYBRID = "hybrid"
    BATCH_GIBBS = "batch_gibbs"

    ALL = (METROPOLIS_HASTINGS, HYBRID, BATCH_GIBBS)


class MatrixBackend:
    """Names of the built-in blockmodel storage backends.

    The authoritative list is the backend registry
    (:func:`repro.blockmodel.backend.available_backends`); validation always
    consults it live, so backends registered by downstream code are accepted
    without touching this class.
    """

    #: Hash-map rows + transpose — the reference implementation, O(nnz)
    #: memory, works at any graph size.
    DICT = "dict"
    #: Dense numpy array with cached marginals — enables the vectorized
    #: batch kernels; memory is O(B²), capped at ``MAX_DENSE_BLOCKS``.
    CSR = "csr"
    #: Scipy-free CSR/COO sparse arrays — the vectorized kernels without the
    #: dense memory bound: O(nnz + B) memory at any block count.
    SPARSE_CSR = "sparse_csr"

    #: Import-time snapshot of the registry (the built-in backends).
    ALL = tuple(available_backends())


class TransportName:
    """Names of the built-in distributed transports.

    The authoritative list is the transport registry
    (:func:`repro.mpi.transport.available_transports`); validation always
    consults it live, so transports registered by downstream code are
    accepted without touching this class.
    """

    #: Single rank on the calling thread; what every ``num_ranks == 1``
    #: launch uses regardless of the configured transport.
    SELF = "self"
    #: One Python thread per rank — zero startup cost, shared objects, but
    #: the GIL serialises compute.  The default.
    THREADS = "threads"
    #: One OS process per rank — real CPU parallelism; graph arguments are
    #: mapped once via ``multiprocessing.shared_memory``.
    PROCESSES = "processes"

    ALL = (SELF, THREADS, PROCESSES)


@dataclass(frozen=True)
class SBPConfig:
    """Tunable parameters of stochastic block partitioning.

    Defaults follow the Graph Challenge reference implementation, which is
    also what the paper's baselines use.

    Attributes
    ----------
    beta:
        Inverse temperature of the Metropolis-Hastings acceptance
        ``min(1, exp(-beta * ΔDL) * hastings)``.
    block_reduction_rate:
        Fraction of blocks removed per block-merge phase (0.5 halves the
        block count, as in Alg. 1's "until number of communities is halved").
    merge_proposals_per_block:
        ``x`` in Alg. 1/4: candidate merges evaluated per block.
    max_mcmc_iterations:
        ``x`` in Alg. 2/5: maximum MCMC sweeps per phase.
    mcmc_convergence_threshold:
        ``t`` in Alg. 2/5: the phase stops when the absolute change in DL
        over a sweep drops below ``t × DL``.
    min_blocks:
        The agglomeration never merges below this many blocks.
    mcmc_variant:
        ``"metropolis_hastings"`` (strictly sequential, Alg. 2), ``"hybrid"``
        (high-degree vertices sequential + low-degree asynchronous batches,
        the shared-memory parallel formulation of [11]), or
        ``"batch_gibbs"`` (every vertex evaluated against a stale state, the
        original Graph Challenge python parallelism — used by the reference
        DC-SBP implementation of Table VI).
    matrix_backend:
        Blockmodel storage, validated against the backend registry
        (:mod:`repro.blockmodel.backend`): ``"dict"`` (hash-map rows +
        transpose, the reference implementation), ``"csr"`` (dense numpy
        arrays with cached marginals, O(B²) memory, capped at
        ``MAX_DENSE_BLOCKS``) or ``"sparse_csr"`` (scipy-free CSR/COO
        arrays, O(nnz + B) memory at any block count).  On the array
        backends the asynchronous Gibbs batches and the merge phase are
        scored with vectorized whole-batch kernels instead of
        per-candidate Python calls.
    transport:
        Where the simulated MPI ranks physically run, validated against the
        transport registry (:mod:`repro.mpi.transport`): ``"threads"`` (one
        thread per rank — cheap to launch, GIL-bound compute) or
        ``"processes"`` (one OS process per rank — real CPU parallelism,
        graph shipped once via shared memory).  Single-rank runs always use
        the calling thread whatever this says.  Under a fixed seed the
        transports produce bit-identical partitions.
    hybrid_high_degree_fraction:
        Fraction of vertices (by descending degree) processed sequentially
        by the hybrid MCMC.
    hybrid_batch_size:
        Number of low-degree vertices whose proposals are evaluated against
        the same (stale) blockmodel before their accepted moves are applied.
    dcsbp_combine_threshold:
        DC-SBP merges partial results pairwise until at most this many
        remain (the paper and [13] use 4).
    dcsbp_merge_candidates:
        Candidate target blocks evaluated when merging one partial result's
        community into another's (``None`` evaluates every candidate).
    seed:
        Root random seed.  Every rank and phase derives an independent
        stream from it.
    track_history:
        Record per-iteration DL / block-count history in the result object.
    validate:
        Run expensive consistency checks after each phase (tests only).
    """

    beta: float = 3.0
    block_reduction_rate: float = 0.5
    merge_proposals_per_block: int = 10
    max_mcmc_iterations: int = 30
    mcmc_convergence_threshold: float = 1e-4
    min_blocks: int = 1
    mcmc_variant: str = MCMCVariant.HYBRID
    matrix_backend: str = MatrixBackend.DICT
    transport: str = TransportName.THREADS
    hybrid_high_degree_fraction: float = 0.25
    hybrid_batch_size: int = 64
    dcsbp_combine_threshold: int = 4
    dcsbp_merge_candidates: Optional[int] = None
    seed: Optional[int] = None
    track_history: bool = True
    validate: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.block_reduction_rate < 1.0:
            raise ValueError("block_reduction_rate must lie in (0, 1)")
        if self.merge_proposals_per_block < 1:
            raise ValueError("merge_proposals_per_block must be at least 1")
        if self.max_mcmc_iterations < 1:
            raise ValueError("max_mcmc_iterations must be at least 1")
        if self.mcmc_convergence_threshold < 0:
            raise ValueError("mcmc_convergence_threshold must be non-negative")
        if self.min_blocks < 1:
            raise ValueError("min_blocks must be at least 1")
        if self.mcmc_variant not in MCMCVariant.ALL:
            raise ValueError(
                f"unknown mcmc_variant {self.mcmc_variant!r}; expected one of {MCMCVariant.ALL}"
            )
        if self.matrix_backend not in available_backends():
            raise ValueError(
                f"unknown matrix_backend {self.matrix_backend!r}; registered backends: "
                f"({backend_registry_hint()})"
            )
        if self.transport not in available_transports():
            raise ValueError(
                f"unknown transport {self.transport!r}; registered transports: "
                f"({transport_registry_hint()})"
            )
        if not 0.0 <= self.hybrid_high_degree_fraction <= 1.0:
            raise ValueError("hybrid_high_degree_fraction must lie in [0, 1]")
        if self.hybrid_batch_size < 1:
            raise ValueError("hybrid_batch_size must be at least 1")
        if self.dcsbp_combine_threshold < 1:
            raise ValueError("dcsbp_combine_threshold must be at least 1")
        if self.beta <= 0:
            raise ValueError("beta must be positive")

    def with_seed(self, seed: Optional[int]) -> "SBPConfig":
        """Return a copy with a different root seed."""
        return replace(self, seed=seed)

    def with_overrides(self, **kwargs) -> "SBPConfig":
        """Return a copy with the given fields replaced."""
        unknown = set(kwargs) - {f.name for f in fields(self)}
        if unknown:
            raise ValueError(
                f"unknown SBPConfig field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(f.name for f in fields(self))}"
            )
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict of every field; inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SBPConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise (listing the valid field names) rather than being
        silently dropped, so stale or typo'd persisted configs surface
        immediately.
        """
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ValueError(
                f"unknown SBPConfig field(s) {sorted(unknown)}; valid fields: {sorted(valid)}"
            )
        return cls(**data)

    @classmethod
    def from_preset(cls, name: str, seed: Optional[int] = None, **overrides) -> "SBPConfig":
        """Instantiate a registered preset (see :func:`config_preset`)."""
        config = config_preset(name)
        if seed is not None:
            config = config.with_seed(seed)
        if overrides:
            config = config.with_overrides(**overrides)
        return config

    @classmethod
    def fast(cls, seed: Optional[int] = None) -> "SBPConfig":
        """A configuration tuned for quick test/benchmark runs.

        Fewer MCMC sweeps and merge proposals; accuracy on the small
        laptop-scale graphs used in CI is essentially unaffected while the
        runtime drops severalfold.
        """
        return cls(
            merge_proposals_per_block=4,
            max_mcmc_iterations=12,
            mcmc_convergence_threshold=5e-4,
            seed=seed,
        )


# ----------------------------------------------------------------------
# Preset registry
# ----------------------------------------------------------------------
#: Named configuration presets.  Factories (not instances) are stored so that
#: every lookup returns a fresh config and mutable-default pitfalls cannot
#: arise; user code extends the registry via :func:`register_config_preset`.
_CONFIG_PRESETS: Dict[str, Callable[[], SBPConfig]] = {}


def register_config_preset(name: str, factory: Callable[[], SBPConfig]) -> None:
    """Register (or replace) a named :class:`SBPConfig` preset.

    The factory is validated eagerly — it must return an :class:`SBPConfig`
    — so a bad registration fails at registration time, not at first use.
    """
    produced = factory()
    if not isinstance(produced, SBPConfig):
        raise TypeError(
            f"preset factory for {name!r} must return an SBPConfig, got {type(produced).__name__}"
        )
    _CONFIG_PRESETS[str(name)] = factory


def available_presets() -> list:
    """Sorted names of every registered configuration preset."""
    return sorted(_CONFIG_PRESETS)


def config_preset(name: str) -> SBPConfig:
    """Instantiate the preset registered under ``name``.

    Unknown names raise a :class:`ValueError` listing the registry, the same
    convention as strategy and backend lookups.
    """
    if name not in _CONFIG_PRESETS:
        raise ValueError(
            f"unknown config preset {name!r}; available presets: {available_presets()}"
        )
    return _CONFIG_PRESETS[name]()


#: ``"paper"`` is the Graph Challenge reference parameterisation (the library
#: defaults); ``"fast"`` is the quick test/benchmark tuning of
#: :meth:`SBPConfig.fast`; ``"large_graph"`` selects the true-sparse storage
#: backend for graphs whose block count exceeds the dense backend's
#: ``MAX_DENSE_BLOCKS`` ceiling.
register_config_preset("paper", SBPConfig)
register_config_preset("fast", SBPConfig.fast)
register_config_preset(
    "large_graph", lambda: SBPConfig(matrix_backend=MatrixBackend.SPARSE_CSR)
)
