"""Supplementary partition-comparison metrics.

NMI (:mod:`repro.evaluation.nmi`) is the paper's headline accuracy metric;
the Graph Challenge harness additionally reports pairwise precision/recall
and the adjusted Rand index, so they are provided here for completeness and
used by several integration tests as independent checks that a recovered
partition really matches the planted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.evaluation.nmi import contingency_table, normalized_mutual_information

__all__ = [
    "adjusted_rand_index",
    "pairwise_precision_recall",
    "PartitionComparison",
    "compare_partitions",
]


def _comb2(x: np.ndarray) -> np.ndarray:
    x = x.astype(np.float64)
    return x * (x - 1.0) / 2.0


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand index in ``[-1, 1]``; 1 means identical partitions."""
    table = contingency_table(labels_a, labels_b)
    n = table.sum()
    if n <= 1:
        return 1.0
    sum_comb_cells = _comb2(table).sum()
    sum_comb_rows = _comb2(table.sum(axis=1)).sum()
    sum_comb_cols = _comb2(table.sum(axis=0)).sum()
    total_pairs = _comb2(np.asarray([n]))[0]
    expected = sum_comb_rows * sum_comb_cols / total_pairs if total_pairs else 0.0
    max_index = 0.5 * (sum_comb_rows + sum_comb_cols)
    denom = max_index - expected
    if denom == 0.0:
        return 1.0 if sum_comb_cells == expected else 0.0
    return float((sum_comb_cells - expected) / denom)


def pairwise_precision_recall(truth: np.ndarray, predicted: np.ndarray) -> Tuple[float, float]:
    """Pairwise precision and recall of ``predicted`` against ``truth``.

    A *pair* is any two vertices placed in the same community.  Precision is
    the fraction of predicted same-community pairs that are truly together;
    recall is the fraction of true pairs recovered.
    """
    table = contingency_table(truth, predicted)
    together_both = _comb2(table).sum()
    together_truth = _comb2(table.sum(axis=1)).sum()
    together_pred = _comb2(table.sum(axis=0)).sum()
    precision = float(together_both / together_pred) if together_pred > 0 else 1.0
    recall = float(together_both / together_truth) if together_truth > 0 else 1.0
    return precision, recall


@dataclass(frozen=True)
class PartitionComparison:
    """All partition-quality metrics for one run, in one place."""

    nmi: float
    ari: float
    precision: float
    recall: float
    num_true_communities: int
    num_predicted_communities: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def compare_partitions(truth: np.ndarray, predicted: np.ndarray) -> PartitionComparison:
    """Compute NMI, ARI, and pairwise precision/recall in one call."""
    truth = np.asarray(truth, dtype=np.int64)
    predicted = np.asarray(predicted, dtype=np.int64)
    precision, recall = pairwise_precision_recall(truth, predicted)
    return PartitionComparison(
        nmi=normalized_mutual_information(truth, predicted),
        ari=adjusted_rand_index(truth, predicted),
        precision=precision,
        recall=recall,
        num_true_communities=int(np.unique(truth).size),
        num_predicted_communities=int(np.unique(predicted).size),
    )
