"""Evaluation metrics used in the paper's result sections.

* **NMI** (normalised mutual information) against the planted ground truth —
  Tables VI-VIII, Figs. 2 and 4.
* **DL_norm** (normalised description length) for graphs without ground
  truth — Fig. 6.
* **Island-vertex analysis** linking DC-SBP's data distribution to its
  accuracy collapse — Fig. 2.
* Supplementary clustering metrics (ARI, pairwise precision/recall) that the
  wider Graph Challenge tooling reports.
"""

from repro.evaluation.nmi import (
    contingency_table,
    partition_entropy,
    mutual_information,
    normalized_mutual_information,
)
from repro.evaluation.metrics import (
    adjusted_rand_index,
    pairwise_precision_recall,
    PartitionComparison,
    compare_partitions,
)
from repro.evaluation.islands import IslandStudyPoint, island_study
from repro.blockmodel.entropy import normalized_description_length, null_description_length

__all__ = [
    "contingency_table",
    "partition_entropy",
    "mutual_information",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "pairwise_precision_recall",
    "PartitionComparison",
    "compare_partitions",
    "IslandStudyPoint",
    "island_study",
    "normalized_description_length",
    "null_description_length",
]
