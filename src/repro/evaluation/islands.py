"""Island-vertex analysis (paper Fig. 2).

The paper attributes DC-SBP's accuracy collapse to *island vertices*:
vertices that lose every edge when the graph is split round-robin into
disconnected per-rank subgraphs.  Fig. 2 plots the island-vertex fraction
induced by the data distribution against the NMI DC-SBP achieves, showing
robustness up to roughly 10 % islands and collapse beyond ~20 %.

:func:`island_study` produces exactly those (island fraction, NMI) points
for a set of graphs and rank counts; the Fig. 2 benchmark feeds it the
Table III parameter-sweep graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.partition_ops import island_fraction, round_robin_assignment

__all__ = ["IslandStudyPoint", "island_study", "bin_island_study"]


@dataclass(frozen=True)
class IslandStudyPoint:
    """One point of Fig. 2: a (graph, rank count) configuration."""

    graph_name: str
    num_ranks: int
    island_fraction: float
    nmi: float


def island_study(
    graphs: Sequence[Graph],
    rank_counts: Sequence[int],
    nmi_for: Callable[[Graph, int], float],
) -> List[IslandStudyPoint]:
    """Compute (island fraction, NMI) for every graph × rank-count pair.

    Parameters
    ----------
    graphs:
        The evaluation graphs (with planted ground truth).
    rank_counts:
        Numbers of MPI ranks (subgraphs) to examine.
    nmi_for:
        Callback ``(graph, num_ranks) -> NMI`` that actually runs DC-SBP (or
        reads a cached result).  Keeping it a callback lets the benchmark
        reuse results computed for Table VII.
    """
    points: List[IslandStudyPoint] = []
    for graph in graphs:
        for num_ranks in rank_counts:
            owner = round_robin_assignment(graph.num_vertices, num_ranks)
            frac = island_fraction(graph, owner)
            nmi = float(nmi_for(graph, num_ranks))
            points.append(IslandStudyPoint(graph.name or "graph", int(num_ranks), frac, nmi))
    return points


def bin_island_study(
    points: Iterable[IslandStudyPoint],
    bin_edges: Optional[Sequence[float]] = None,
) -> List[dict]:
    """Aggregate Fig. 2 points into island-fraction bins (mean NMI per bin).

    Returns a list of ``{"low", "high", "mean_island_fraction", "mean_nmi",
    "count"}`` dictionaries, skipping empty bins.
    """
    pts = list(points)
    if bin_edges is None:
        bin_edges = [0.0, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0]
    rows: List[dict] = []
    for low, high in zip(bin_edges[:-1], bin_edges[1:]):
        members = [p for p in pts if low <= p.island_fraction < high or (high == 1.0 and p.island_fraction == 1.0)]
        if not members:
            continue
        rows.append(
            {
                "low": float(low),
                "high": float(high),
                "mean_island_fraction": float(np.mean([p.island_fraction for p in members])),
                "mean_nmi": float(np.mean([p.nmi for p in members])),
                "count": len(members),
            }
        )
    return rows
