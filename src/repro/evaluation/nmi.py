"""Normalised mutual information between two vertex partitions.

The paper reports NMI against the planted ground truth for every synthetic
experiment (Tables VI-VIII, Figs. 2 and 4).  The implementation here follows
the standard information-theoretic definitions computed from the contingency
table of the two labelings; no external clustering library is used.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "contingency_table",
    "partition_entropy",
    "mutual_information",
    "normalized_mutual_information",
]


def _as_labels(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.int64)
    if x.ndim != 1:
        raise ValueError("partitions must be 1-D label arrays")
    return x


def contingency_table(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    """Dense contingency table ``N[a, b]`` of co-occurrence counts.

    Labels are compacted internally, so arbitrary non-negative integers (and
    gaps) are accepted.
    """
    a = _as_labels(labels_a)
    b = _as_labels(labels_b)
    if a.shape != b.shape:
        raise ValueError("partitions must label the same vertices")
    _, a_idx = np.unique(a, return_inverse=True)
    _, b_idx = np.unique(b, return_inverse=True)
    n_a = int(a_idx.max()) + 1 if a_idx.size else 0
    n_b = int(b_idx.max()) + 1 if b_idx.size else 0
    table = np.zeros((n_a, n_b), dtype=np.int64)
    np.add.at(table, (a_idx, b_idx), 1)
    return table


def partition_entropy(labels: np.ndarray) -> float:
    """Shannon entropy (nats) of the label distribution."""
    labels = _as_labels(labels)
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    p = counts / labels.size
    return float(-(p * np.log(p)).sum())


def mutual_information(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Mutual information (nats) between two labelings."""
    table = contingency_table(labels_a, labels_b)
    n = table.sum()
    if n == 0:
        return 0.0
    joint = table / n
    pa = joint.sum(axis=1, keepdims=True)
    pb = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = joint * (np.log(joint) - np.log(pa) - np.log(pb))
    terms = np.nan_to_num(terms, nan=0.0, posinf=0.0, neginf=0.0)
    return float(max(terms.sum(), 0.0))


def normalized_mutual_information(
    labels_a: np.ndarray,
    labels_b: np.ndarray,
    normalization: str = "average",
) -> float:
    """NMI in ``[0, 1]``; 1 means identical partitions (up to relabelling).

    Parameters
    ----------
    normalization:
        ``"average"`` (default, ``2I/(Ha+Hb)``), ``"sqrt"``, ``"min"``, or
        ``"max"``.

    Notes
    -----
    When both partitions are trivial (a single community each) the mutual
    information and both entropies are zero; we follow the usual convention
    of returning 1.0 if the partitions are identical and 0.0 otherwise.
    """
    a = _as_labels(labels_a)
    b = _as_labels(labels_b)
    if a.shape != b.shape:
        raise ValueError("partitions must label the same vertices")
    ha = partition_entropy(a)
    hb = partition_entropy(b)
    mi = mutual_information(a, b)
    if ha == 0.0 and hb == 0.0:
        return 1.0
    if normalization == "average":
        denom = 0.5 * (ha + hb)
    elif normalization == "sqrt":
        denom = float(np.sqrt(ha * hb))
    elif normalization == "min":
        denom = min(ha, hb)
    elif normalization == "max":
        denom = max(ha, hb)
    else:
        raise ValueError(f"unknown normalization {normalization!r}")
    if denom == 0.0:
        # One partition is trivial and the other is not: no shared information.
        return 0.0
    return float(min(max(mi / denom, 0.0), 1.0))
