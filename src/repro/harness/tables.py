"""Plain-text and CSV rendering of regenerated tables.

The benchmark modules print the regenerated table next to the paper's values
so that ``pytest benchmarks/ --benchmark-only -s`` produces a readable,
self-contained report; the same rows are saved as CSV/JSON under
``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "rows_to_csv", "save_rows", "results_dir"]

Row = Dict[str, object]


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}".rstrip("0").rstrip(".") if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def format_table(rows: Sequence[Row], columns: Optional[Sequence[str]] = None, title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Row], path: Union[str, Path], columns: Optional[Sequence[str]] = None) -> Path:
    """Write rows to a CSV file, creating parent directories as needed."""
    rows = list(rows)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("")
        return path
    if columns is None:
        columns = list(rows[0].keys())
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def results_dir() -> Path:
    """Directory where benchmark artifacts are written (``REPRO_RESULTS_DIR``)."""
    return Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def save_rows(rows: Sequence[Row], name: str, columns: Optional[Sequence[str]] = None) -> Path:
    """Persist rows as both CSV and JSON under the results directory."""
    directory = results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = rows_to_csv(rows, directory / f"{name}.csv", columns)
    with open(directory / f"{name}.json", "w") as fh:
        json.dump(list(rows), fh, indent=2, default=str)
    return csv_path
