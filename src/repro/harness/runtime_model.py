"""An α-β critical-path runtime model for the simulated distributed runs.

The simulated MPI ranks all share one Python interpreter, so measured
wall-clock equals (roughly) the *sum* of every rank's work.  What the paper's
strong-scaling figures need is the time a real cluster would take:
the slowest rank's compute time per phase, plus the cost of the collectives.

The model charges:

* **compute** — the maximum, over ranks, of the rank's measured compute
  seconds (its own share of proposals/moves), optionally divided by an
  intra-node thread speedup to represent the OpenMP parallelism the paper's
  implementation uses inside a rank;
* **communication** — for every collective call, a latency term
  ``alpha · ceil(log2 R)`` plus a bandwidth term ``bytes / bandwidth`` using
  the per-rank payload bytes recorded by the communicator;
* **serial stages** — DC-SBP's partial-result combination and fine-tuning run
  on the root rank only and are charged at full (unscaled) cost, which is
  exactly the bottleneck the paper identifies.

Absolute seconds are not comparable to the paper's 128-core EPYC cluster and
are not claimed to be; the model is used to compare *algorithms and rank
counts under identical assumptions*, which is what the figures' shapes
(speedups, crossovers, level-off points) depend on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.results import SBPResult

__all__ = ["RuntimeModelParams", "modeled_runtime", "speedup_series"]

#: Phase-timer buckets that represent rank-local compute.
_COMPUTE_PHASES = (
    "block_merge_compute",
    "block_merge_apply",
    "mcmc_compute",
    "mcmc_apply",
    "subgraph_sbp",
    "block_merge",
    "mcmc",
)
#: Phase-timer buckets that run serially on the root rank (DC-SBP).
_SERIAL_PHASES = ("combine", "finetune")


@dataclass(frozen=True)
class RuntimeModelParams:
    """Cost-model constants.

    Attributes
    ----------
    alpha:
        Per-collective latency (seconds) per ``log2(ranks)`` step.  The
        default corresponds to a few tens of microseconds per hop, typical
        for an HDR InfiniBand cluster like the paper's tinkercliffs.
    bandwidth:
        Effective per-rank bandwidth in bytes/second for collective payloads.
    intra_node_speedup:
        Divisor applied to rank-local compute, representing the shared-memory
        (OpenMP / hybrid-MCMC) parallelism inside one rank.  1.0 models the
        pure-Python single-threaded rank.
    tasks_per_node:
        Number of MPI tasks co-located on one node (the paper uses 4); used
        only for reporting node counts.
    """

    alpha: float = 5.0e-5
    bandwidth: float = 2.0e9
    intra_node_speedup: float = 1.0
    tasks_per_node: int = 1


def _per_rank_compute_seconds(result: SBPResult) -> List[float]:
    """Rank-local compute seconds, one entry per rank."""
    per_rank: Optional[List[Dict[str, float]]] = None
    if isinstance(result.metadata, dict):
        per_rank = result.metadata.get("per_rank_phase_seconds")
    if not per_rank:
        # Sequential run: everything measured is one rank's compute.
        return [sum(result.phase_seconds.get(p, 0.0) for p in _COMPUTE_PHASES)]
    out = []
    for phases in per_rank:
        out.append(sum(phases.get(p, 0.0) for p in _COMPUTE_PHASES))
    return out


def _serial_seconds(result: SBPResult) -> float:
    per_rank = result.metadata.get("per_rank_phase_seconds") if isinstance(result.metadata, dict) else None
    if not per_rank:
        return sum(result.phase_seconds.get(p, 0.0) for p in _SERIAL_PHASES)
    return sum(phases.get(p, 0.0) for phases in per_rank for p in _SERIAL_PHASES)


def _communication_seconds(result: SBPResult, params: RuntimeModelParams) -> float:
    stats = result.comm_stats
    if stats is None or result.num_ranks <= 1:
        return 0.0
    hops = max(math.ceil(math.log2(max(result.num_ranks, 2))), 1)
    total_calls = stats.total_calls
    # comm_stats aggregates all ranks; a collective involves every rank, so the
    # number of distinct collective operations is calls / ranks.
    operations = total_calls / max(result.num_ranks, 1)
    latency = operations * hops * params.alpha
    # Bytes are summed over ranks; the bisection traffic per operation is the
    # per-rank payload, so divide by the rank count as well.
    volume = (stats.total_bytes_sent + stats.total_bytes_received) / 2.0
    bandwidth_time = (volume / max(result.num_ranks, 1)) / params.bandwidth
    return latency + bandwidth_time


def modeled_runtime(result: SBPResult, params: Optional[RuntimeModelParams] = None) -> float:
    """Modelled cluster runtime (seconds) for one run.

    ``max(per-rank compute) / intra_node_speedup + serial stages + comm``.
    """
    params = params or RuntimeModelParams()
    compute = max(_per_rank_compute_seconds(result)) / max(params.intra_node_speedup, 1e-9)
    serial = _serial_seconds(result)
    comm = _communication_seconds(result, params)
    return compute + serial + comm


def speedup_series(
    results: Sequence[SBPResult],
    baseline: Optional[SBPResult] = None,
    params: Optional[RuntimeModelParams] = None,
) -> List[Dict[str, object]]:
    """Build a strong-scaling table: modelled runtime and speedup per run.

    ``baseline`` defaults to the first result (usually the 1-rank run); the
    speedups reported are relative to its modelled runtime.
    """
    params = params or RuntimeModelParams()
    results = list(results)
    if not results:
        return []
    base = baseline or results[0]
    base_time = modeled_runtime(base, params)
    rows: List[Dict[str, object]] = []
    for result in results:
        modeled = modeled_runtime(result, params)
        rows.append(
            {
                "graph": result.graph.name,
                "algorithm": result.algorithm,
                "num_ranks": result.num_ranks,
                "num_nodes": max(result.num_ranks // max(params.tasks_per_node, 1), 1),
                "measured_seconds": result.runtime_seconds,
                "modeled_seconds": modeled,
                "speedup_vs_baseline": base_time / modeled if modeled > 0 else float("nan"),
            }
        )
    return rows
