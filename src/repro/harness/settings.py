"""Benchmark sizing presets.

The paper's experiments run on graphs with up to 300M edges and 64 compute
nodes; a pure-Python reproduction must scale everything down.  The presets
here control graph scale factors and rank grids for the whole benchmark
suite:

* ``quick``  — the default; every table/figure regenerates in a few minutes
  total on a laptop, at the cost of smaller graphs and a reduced rank grid.
* ``full``   — larger graphs and the complete {1,2,4,8,16,32,64} rank grid;
  closer to the paper but takes hours in pure Python.

Select the preset with the ``REPRO_BENCH_MODE`` environment variable
(``quick`` / ``full``) or by constructing :class:`ExperimentSettings`
directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import SBPConfig

__all__ = ["ExperimentSettings"]


@dataclass
class ExperimentSettings:
    """Scale factors and grids for the benchmark harness."""

    #: Preset name ("quick" or "full"), informational.
    mode: str = "quick"
    #: Scale factor applied to the Graph Challenge graphs (Tables II, VI).
    challenge_scale: float = 0.03
    #: Scale factor applied to the parameter-sweep graphs (Tables III, VII, VIII, Fig. 2).
    sweep_scale: float = 0.045
    #: Scale factor applied to the synthetic scaling graphs (Table IV, Figs. 3-5).
    scaling_scale: float = 0.0008
    #: Scale factor applied to the real-world stand-ins (Table V, Fig. 6).
    realworld_scale: float = 0.0015
    #: Parameter-sweep graph IDs exercised by Tables VII/VIII and Fig. 2
    #: (one dense / minimum-degree-truncated graph and one sparse one — the
    #: two families whose contrast carries the paper's argument).
    sweep_graph_ids: List[str] = field(default_factory=lambda: ["TTT33", "FTT33"])
    #: Rank counts ("compute nodes") for the accuracy sweeps.
    rank_counts: List[int] = field(default_factory=lambda: [1, 2, 4, 8])
    #: Rank counts for the strong-scaling figures.
    scaling_rank_counts: List[int] = field(default_factory=lambda: [1, 2, 4, 8])
    #: Tasks-per-node counts for Fig. 3.
    tasks_per_node: List[int] = field(default_factory=lambda: [1, 4, 8])
    #: Scaling graphs used by Figs. 3-5.
    scaling_graph_ids: List[str] = field(default_factory=lambda: ["1M"])
    #: Real-world stand-ins used by Fig. 6 (the Twitter stand-in is the
    #: densest and carries Fig. 6's headline observation).
    realworld_graph_ids: List[str] = field(default_factory=lambda: ["twitter"])
    #: Challenge graphs used by Table VI.
    challenge_graph_ids: List[str] = field(default_factory=lambda: ["20k-hard"])
    #: Root seed for graph generation and the algorithms.
    seed: int = 20230530
    #: SBP configuration shared by every run.
    config: SBPConfig = field(default_factory=lambda: SBPConfig.fast(seed=20230530))

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """The default laptop-friendly preset."""
        return cls()

    @classmethod
    def full(cls) -> "ExperimentSettings":
        """The closer-to-paper preset (hours of runtime in pure Python)."""
        return cls(
            mode="full",
            challenge_scale=0.1,
            sweep_scale=0.1,
            scaling_scale=0.005,
            realworld_scale=0.005,
            sweep_graph_ids=[
                "TTT33", "TTT150", "TTF33", "TTF150", "TFT33", "TFT150", "TFF33", "TFF150",
                "FTT33", "FTT150", "FTF33", "FTF150", "FFT33", "FFT150", "FFF33", "FFF150",
            ],
            rank_counts=[1, 2, 4, 8, 16, 32, 64],
            scaling_rank_counts=[1, 2, 4, 8, 16, 32, 64],
            tasks_per_node=[1, 2, 4, 8, 16],
            scaling_graph_ids=["1M", "2M", "4M"],
            realworld_graph_ids=["amazon", "patents", "berk-stan", "twitter", "livejournal"],
            challenge_graph_ids=["20k-easy", "20k-hard", "50k-easy", "50k-hard"],
            config=SBPConfig(seed=20230530),
        )

    @classmethod
    def smoke(cls) -> "ExperimentSettings":
        """A tiny preset used by the integration tests (seconds, not minutes)."""
        return cls(
            mode="smoke",
            challenge_scale=0.015,
            sweep_scale=0.02,
            scaling_scale=0.0004,
            realworld_scale=0.0008,
            sweep_graph_ids=["TTT33", "FTT33"],
            rank_counts=[1, 4],
            scaling_rank_counts=[1, 4],
            tasks_per_node=[1, 4],
            scaling_graph_ids=["1M"],
            realworld_graph_ids=["amazon"],
            challenge_graph_ids=["20k-hard"],
            config=SBPConfig.fast(seed=20230530).with_overrides(max_mcmc_iterations=6),
        )

    @classmethod
    def from_environment(cls, default: Optional[str] = None) -> "ExperimentSettings":
        """Build settings from the ``REPRO_BENCH_MODE`` environment variable."""
        mode = os.environ.get("REPRO_BENCH_MODE", default or "quick").lower()
        if mode == "full":
            return cls.full()
        if mode == "smoke":
            return cls.smoke()
        return cls.quick()
