"""Workload builders for every table and figure in the paper's evaluation.

Each ``run_*`` function regenerates one experiment:

=============  ===================================================================
Function        Paper artefact
=============  ===================================================================
``run_table2``  Table II  — Graph Challenge dataset statistics
``run_table3``  Table III — the 16 parameter-sweep graphs
``run_table4``  Table IV  — synthetic scaling graphs
``run_table5``  Table V   — real-world graphs (stand-ins)
``run_table6``  Table VI  — reference vs optimised DC-SBP (NMI and runtime)
``run_table7``  Table VII — DC-SBP NMI over the rank grid on the sweep graphs
``run_table8``  Table VIII— EDiSt NMI over the same grid
``run_fig2``    Fig. 2    — island-vertex fraction vs DC-SBP NMI
``run_fig3``    Fig. 3    — EDiSt runtime vs MPI tasks on a single node
``run_fig4``    Fig. 4    — EDiSt strong scaling + NMI on the scaling graphs
``run_fig5``    Fig. 5    — best DC-SBP vs EDiSt runtimes on the scaling graphs
``run_fig6``    Fig. 6    — DC-SBP vs EDiSt on the real-world stand-ins
=============  ===================================================================

All functions take an :class:`~repro.harness.settings.ExperimentSettings`
(which controls graph scale and the rank grid) and return lists of plain row
dictionaries ready for :func:`repro.harness.tables.format_table`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api import get_strategy
from repro.core.config import SBPConfig
from repro.core.context import RunContext
from repro.core.results import SBPResult
from repro.evaluation.islands import IslandStudyPoint, bin_island_study
from repro.graphs.generators.challenge import CHALLENGE_GRAPHS, challenge_graph
from repro.graphs.generators.parameter_sweep import PARAMETER_SWEEP_GRAPHS, parameter_sweep_graph
from repro.graphs.generators.realworld import REALWORLD_GRAPHS, realworld_graph
from repro.graphs.generators.scaling import SCALING_GRAPHS, scaling_graph
from repro.graphs.graph import Graph
from repro.graphs.partition_ops import island_fraction, round_robin_assignment
from repro.harness.runtime_model import RuntimeModelParams, modeled_runtime
from repro.harness.settings import ExperimentSettings
from repro.registry.phases import record_phases

__all__ = [
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_algorithm",
]

#: Paper Table VII (DC-SBP NMI) and Table VIII (EDiSt NMI) reference values,
#: used by EXPERIMENTS.md and by the reports printed next to measured rows.
PAPER_BASELINE_NMI = {
    "TTT33": 0.92, "TTT150": 0.97, "TTF33": 0.96, "TTF150": 0.95,
    "TFT33": 0.97, "TFT150": 0.97, "TFF33": 0.97, "TFF150": 0.96,
    "FTT33": 0.66, "FTT150": 0.72, "FTF33": 0.38, "FTF150": 0.48,
    "FFT33": 0.74, "FFT150": 0.72, "FFF33": 0.34, "FFF150": 0.48,
}

_GRAPH_CACHE: Dict[Tuple, Graph] = {}
_RESULT_CACHE: Dict[Tuple, SBPResult] = {}


def _cached_graph(kind: str, graph_id: str, scale: float, seed: int) -> Graph:
    key = (kind, graph_id, round(scale, 6), seed)
    if key not in _GRAPH_CACHE:
        if kind == "sweep":
            graph = parameter_sweep_graph(graph_id, scale=scale, seed=seed)
        elif kind == "challenge":
            graph = challenge_graph(graph_id, scale=scale, seed=seed)
        elif kind == "scaling":
            graph = scaling_graph(graph_id, scale=scale, seed=seed)
        elif kind == "realworld":
            graph = realworld_graph(graph_id, scale=scale, seed=seed)
        else:
            raise ValueError(f"unknown graph kind {kind!r}")
        _GRAPH_CACHE[key] = graph
    return _GRAPH_CACHE[key]


def run_algorithm(
    algorithm: str,
    graph: Graph,
    num_ranks: int,
    config: SBPConfig,
    run_context: Optional[RunContext] = None,
) -> SBPResult:
    """Dispatch one run through the strategy registry.

    ``algorithm`` is a registry name or alias (``"sbp"``/``"sequential"``,
    ``"dcsbp"``, ``"reference-dcsbp"``/``"reference_dcsbp"``, ``"edist"``);
    the registry error lists the valid keys on a bad name.  A distributed
    strategy asked for one rank runs the sequential strategy, matching how
    the paper reports single-node baselines.

    Results are memoised per (graph, algorithm, rank count, config) so that
    experiments sharing configurations (e.g. Table VII and Fig. 2, or Figs. 3
    and 4) do not repeat identical runs within one benchmark session.
    Memoisation is skipped when a ``run_context`` is supplied (observers make
    runs non-interchangeable).

    Every *freshly executed* run reports its ``SBPResult.phase_seconds`` to
    the registry's phase log (:mod:`repro.registry.phases`), so benchmark
    records carry a real per-phase breakdown; cache hits do not re-report,
    keeping the log consistent with wall-clock actually spent.
    """
    strategy = get_strategy(algorithm)
    if strategy.name in ("dcsbp", "edist") and num_ranks == 1:
        strategy = get_strategy("sequential")
    if strategy.name == "sequential":
        num_ranks = 1
    if run_context is not None:
        result = strategy.run(graph, config, num_ranks=num_ranks, run_context=run_context)
        record_phases(result.phase_seconds)
        return result
    cache_key = (id(graph), strategy.name, int(num_ranks), config)
    if cache_key in _RESULT_CACHE:
        return _RESULT_CACHE[cache_key]
    result = strategy.run(graph, config, num_ranks=num_ranks)
    record_phases(result.phase_seconds)
    _RESULT_CACHE[cache_key] = result
    return result


def _nmi_or_nan(result: SBPResult) -> float:
    if result.graph.true_assignment is None:
        return float("nan")
    return result.nmi()


# ----------------------------------------------------------------------
# Dataset tables (II - V)
# ----------------------------------------------------------------------
def run_table2(settings: Optional[ExperimentSettings] = None) -> List[dict]:
    """Table II: regenerate the Graph Challenge graphs and report their stats."""
    settings = settings or ExperimentSettings.from_environment()
    rows = []
    for graph_id, spec in CHALLENGE_GRAPHS.items():
        graph = _cached_graph("challenge", graph_id, settings.challenge_scale, settings.seed)
        rows.append(
            {
                "graph": graph_id,
                "difficulty": spec.difficulty,
                "paper_vertices": spec.num_vertices,
                "paper_edges": spec.num_edges,
                "paper_communities": spec.num_communities,
                "generated_vertices": graph.num_vertices,
                "generated_edges": graph.num_edges,
                "generated_communities": int(np.unique(graph.true_assignment).size),
                "scale": settings.challenge_scale,
            }
        )
    return rows


def run_table3(settings: Optional[ExperimentSettings] = None) -> List[dict]:
    """Table III: regenerate the 16 parameter-sweep graphs and report their stats."""
    settings = settings or ExperimentSettings.from_environment()
    rows = []
    for graph_id, spec in PARAMETER_SWEEP_GRAPHS.items():
        graph = _cached_graph("sweep", graph_id, settings.sweep_scale, settings.seed)
        rows.append(
            {
                "graph": graph_id,
                "truncated_min_degree": spec.truncate_min_degree,
                "truncated_max_degree": spec.truncate_max_degree,
                "duplicated_degrees": spec.duplicate_degree_sequence,
                "paper_vertices": spec.num_vertices,
                "paper_communities": spec.num_communities,
                "generated_vertices": graph.num_vertices,
                "generated_edges": graph.num_edges,
                "generated_communities": int(np.unique(graph.true_assignment).size),
                "average_degree": round(graph.average_degree, 2),
            }
        )
    return rows


def run_table4(settings: Optional[ExperimentSettings] = None) -> List[dict]:
    """Table IV: regenerate the synthetic scaling graphs and report their stats."""
    settings = settings or ExperimentSettings.from_environment()
    rows = []
    for graph_id, spec in SCALING_GRAPHS.items():
        graph = _cached_graph("scaling", graph_id, settings.scaling_scale, settings.seed)
        rows.append(
            {
                "graph": graph_id,
                "paper_vertices": spec.num_vertices,
                "paper_edges": spec.num_edges,
                "paper_communities": spec.num_communities,
                "generated_vertices": graph.num_vertices,
                "generated_edges": graph.num_edges,
                "generated_communities": int(np.unique(graph.true_assignment).size),
                "scale": settings.scaling_scale,
            }
        )
    return rows


def run_table5(settings: Optional[ExperimentSettings] = None) -> List[dict]:
    """Table V: generate the real-world stand-ins and report their stats."""
    settings = settings or ExperimentSettings.from_environment()
    rows = []
    for graph_id, spec in REALWORLD_GRAPHS.items():
        graph = _cached_graph("realworld", graph_id, settings.realworld_scale, settings.seed)
        rows.append(
            {
                "graph": graph_id,
                "description": spec.description,
                "paper_vertices": spec.num_vertices,
                "paper_edges": spec.num_edges,
                "paper_avg_degree": round(spec.average_total_degree, 1),
                "standin_vertices": graph.num_vertices,
                "standin_edges": graph.num_edges,
                "standin_avg_degree": round(graph.average_degree, 1),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table VI: reference vs optimised DC-SBP
# ----------------------------------------------------------------------
def run_table6(settings: Optional[ExperimentSettings] = None, num_ranks: int = 8) -> List[dict]:
    """Table VI: reference (batch python-style) vs optimised DC-SBP at 8 ranks."""
    settings = settings or ExperimentSettings.from_environment()
    rows = []
    for graph_id in settings.challenge_graph_ids:
        graph = _cached_graph("challenge", graph_id, settings.challenge_scale, settings.seed)
        reference = run_algorithm("reference-dcsbp", graph, num_ranks, settings.config)
        optimized = run_algorithm("dcsbp", graph, num_ranks, settings.config)
        rows.append(
            {
                "graph": graph_id,
                "num_ranks": num_ranks,
                "reference_nmi": round(_nmi_or_nan(reference), 3),
                "reference_runtime_s": round(reference.runtime_seconds, 2),
                "optimized_nmi": round(_nmi_or_nan(optimized), 3),
                "optimized_runtime_s": round(optimized.runtime_seconds, 2),
                "speedup": round(reference.runtime_seconds / max(optimized.runtime_seconds, 1e-9), 2),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Tables VII and VIII: NMI over the rank grid
# ----------------------------------------------------------------------
def _nmi_grid(algorithm: str, settings: ExperimentSettings) -> List[dict]:
    rows = []
    for graph_id in settings.sweep_graph_ids:
        graph = _cached_graph("sweep", graph_id, settings.sweep_scale, settings.seed)
        row: Dict[str, object] = {
            "graph": graph_id,
            "paper_baseline_nmi": PAPER_BASELINE_NMI.get(graph_id, float("nan")),
        }
        for ranks in settings.rank_counts:
            result = run_algorithm(algorithm, graph, ranks, settings.config)
            row[f"nmi@{ranks}"] = round(_nmi_or_nan(result), 3)
            if algorithm == "dcsbp" and ranks > 1:
                row[f"islands@{ranks}"] = round(result.metadata.get("island_fraction", 0.0), 3)
        rows.append(row)
    return rows


def run_table7(settings: Optional[ExperimentSettings] = None) -> List[dict]:
    """Table VII: DC-SBP NMI across rank counts on the parameter-sweep graphs."""
    settings = settings or ExperimentSettings.from_environment()
    return _nmi_grid("dcsbp", settings)


def run_table8(settings: Optional[ExperimentSettings] = None) -> List[dict]:
    """Table VIII: EDiSt NMI across rank counts on the parameter-sweep graphs."""
    settings = settings or ExperimentSettings.from_environment()
    return _nmi_grid("edist", settings)


# ----------------------------------------------------------------------
# Fig. 2: island vertices vs NMI
# ----------------------------------------------------------------------
def run_fig2(settings: Optional[ExperimentSettings] = None) -> List[dict]:
    """Fig. 2: relationship between induced island-vertex fraction and DC-SBP NMI."""
    settings = settings or ExperimentSettings.from_environment()
    points: List[IslandStudyPoint] = []
    for graph_id in settings.sweep_graph_ids:
        graph = _cached_graph("sweep", graph_id, settings.sweep_scale, settings.seed)
        for ranks in settings.rank_counts:
            if ranks == 1:
                continue
            frac = island_fraction(graph, round_robin_assignment(graph.num_vertices, ranks))
            result = run_algorithm("dcsbp", graph, ranks, settings.config)
            points.append(IslandStudyPoint(graph_id, ranks, frac, _nmi_or_nan(result)))
    rows = [
        {
            "graph": p.graph_name,
            "num_ranks": p.num_ranks,
            "island_fraction": round(p.island_fraction, 3),
            "nmi": round(p.nmi, 3),
        }
        for p in points
    ]
    rows.extend(
        {
            "graph": "(binned)",
            "num_ranks": row["count"],
            "island_fraction": round(row["mean_island_fraction"], 3),
            "nmi": round(row["mean_nmi"], 3),
        }
        for row in bin_island_study(points)
    )
    return rows


# ----------------------------------------------------------------------
# Figs. 3-5: strong scaling on the synthetic scaling graphs
# ----------------------------------------------------------------------
def run_fig3(settings: Optional[ExperimentSettings] = None) -> List[dict]:
    """Fig. 3: EDiSt runtime with multiple MPI tasks on a single compute node."""
    settings = settings or ExperimentSettings.from_environment()
    graph_id = settings.scaling_graph_ids[0]
    graph = _cached_graph("scaling", graph_id, settings.scaling_scale, settings.seed)
    # Intra-node: negligible latency, memory-bandwidth-bound payloads.
    params = RuntimeModelParams(alpha=2.0e-6, bandwidth=8.0e9, tasks_per_node=max(settings.tasks_per_node))
    baseline_time = None
    rows = []
    for tasks in settings.tasks_per_node:
        result = run_algorithm("edist", graph, tasks, settings.config)
        modeled = modeled_runtime(result, params)
        if baseline_time is None:
            baseline_time = modeled
        rows.append(
            {
                "graph": graph_id,
                "tasks_per_node": tasks,
                "nmi": round(_nmi_or_nan(result), 3),
                "measured_seconds": round(result.runtime_seconds, 2),
                "modeled_seconds": round(modeled, 3),
                "speedup_vs_1_task": round(baseline_time / modeled, 2) if modeled > 0 else float("nan"),
            }
        )
    return rows


def run_fig4(settings: Optional[ExperimentSettings] = None) -> List[dict]:
    """Fig. 4: EDiSt strong scaling (runtime model) and NMI on the scaling graphs."""
    settings = settings or ExperimentSettings.from_environment()
    params = RuntimeModelParams(tasks_per_node=4)
    rows = []
    for graph_id in settings.scaling_graph_ids:
        graph = _cached_graph("scaling", graph_id, settings.scaling_scale, settings.seed)
        baseline_time = None
        for ranks in settings.scaling_rank_counts:
            result = run_algorithm("edist", graph, ranks, settings.config)
            modeled = modeled_runtime(result, params)
            if baseline_time is None:
                baseline_time = modeled
            rows.append(
                {
                    "graph": graph_id,
                    "num_ranks": ranks,
                    "nmi": round(_nmi_or_nan(result), 3),
                    "measured_seconds": round(result.runtime_seconds, 2),
                    "modeled_seconds": round(modeled, 3),
                    "speedup_vs_1_rank": round(baseline_time / modeled, 2) if modeled > 0 else float("nan"),
                }
            )
    return rows


def run_fig4_real(
    settings: Optional[ExperimentSettings] = None,
    transports: tuple = ("threads", "processes"),
) -> List[dict]:
    """Fig. 4 companion: *wall-clock* EDiSt strong scaling, per transport.

    The modelled curve of :func:`run_fig4` estimates what a cluster would do;
    this one measures what this machine actually does, running the same
    rank grid once per transport.  On the ``"threads"`` transport the ranks
    share the GIL, so wall-clock *grows* with ranks (total replicated work);
    on ``"processes"`` the ranks occupy real cores, so with enough of them
    the curve bends the way Fig. 4 does.  Rows carry the same columns as the
    modelled curve (``modeled_seconds`` is NaN here) plus a ``curve`` tag
    (``"real-threads"`` / ``"real-processes"``), so the two curves merge
    into one ``fig4_strong_scaling`` artifact.
    """
    settings = settings or ExperimentSettings.from_environment()
    rows = []
    for graph_id in settings.scaling_graph_ids:
        graph = _cached_graph("scaling", graph_id, settings.scaling_scale, settings.seed)
        for transport in transports:
            config = settings.config.with_overrides(transport=transport)
            baseline_time = None
            for ranks in settings.scaling_rank_counts:
                result = run_algorithm("edist", graph, ranks, config)
                measured = result.runtime_seconds
                if baseline_time is None:
                    baseline_time = measured
                rows.append(
                    {
                        "curve": f"real-{transport}",
                        "graph": graph_id,
                        "num_ranks": ranks,
                        "nmi": round(_nmi_or_nan(result), 3),
                        "measured_seconds": round(measured, 3),
                        "modeled_seconds": float("nan"),
                        "speedup_vs_1_rank": round(baseline_time / measured, 2) if measured > 0 else float("nan"),
                    }
                )
    return rows


def run_fig5(settings: Optional[ExperimentSettings] = None, nmi_tolerance: float = 0.05) -> List[dict]:
    """Fig. 5: best accuracy-preserving DC-SBP vs EDiSt at the largest rank count.

    For DC-SBP the paper selects, per graph, the largest rank count that still
    matches the single-node NMI; the same selection rule is applied here.
    """
    settings = settings or ExperimentSettings.from_environment()
    params = RuntimeModelParams(tasks_per_node=4)
    rows = []
    for graph_id in settings.scaling_graph_ids:
        graph = _cached_graph("scaling", graph_id, settings.scaling_scale, settings.seed)
        baseline = run_algorithm("sbp", graph, 1, settings.config)
        baseline_nmi = _nmi_or_nan(baseline)
        baseline_time = modeled_runtime(baseline, params)

        best_dcsbp: Optional[SBPResult] = None
        for ranks in settings.scaling_rank_counts:
            if ranks == 1:
                continue
            candidate = run_algorithm("dcsbp", graph, ranks, settings.config)
            if _nmi_or_nan(candidate) >= baseline_nmi - nmi_tolerance:
                best_dcsbp = candidate
        max_ranks = max(settings.scaling_rank_counts)
        edist_result = run_algorithm("edist", graph, max_ranks, settings.config)

        dcsbp_time = modeled_runtime(best_dcsbp, params) if best_dcsbp is not None else float("nan")
        edist_time = modeled_runtime(edist_result, params)
        rows.append(
            {
                "graph": graph_id,
                "baseline_nmi": round(baseline_nmi, 3),
                "baseline_modeled_s": round(baseline_time, 3),
                "dcsbp_best_ranks": best_dcsbp.num_ranks if best_dcsbp is not None else 0,
                "dcsbp_nmi": round(_nmi_or_nan(best_dcsbp), 3) if best_dcsbp is not None else float("nan"),
                "dcsbp_modeled_s": round(dcsbp_time, 3),
                "edist_ranks": max_ranks,
                "edist_nmi": round(_nmi_or_nan(edist_result), 3),
                "edist_modeled_s": round(edist_time, 3),
                "edist_speedup_vs_baseline": round(baseline_time / edist_time, 2) if edist_time > 0 else float("nan"),
                "edist_speedup_vs_dcsbp": round(dcsbp_time / edist_time, 2) if edist_time > 0 and dcsbp_time == dcsbp_time else float("nan"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 6: real-world graphs
# ----------------------------------------------------------------------
def run_fig6(settings: Optional[ExperimentSettings] = None) -> List[dict]:
    """Fig. 6: DC-SBP vs EDiSt runtime and DL_norm on the real-world stand-ins."""
    settings = settings or ExperimentSettings.from_environment()
    params = RuntimeModelParams(tasks_per_node=4)
    rows = []
    for graph_id in settings.realworld_graph_ids:
        graph = _cached_graph("realworld", graph_id, settings.realworld_scale, settings.seed)
        for algorithm in ("dcsbp", "edist"):
            for ranks in settings.scaling_rank_counts:
                result = run_algorithm(algorithm, graph, ranks, settings.config)
                rows.append(
                    {
                        "graph": graph_id,
                        "algorithm": algorithm,
                        "num_ranks": ranks,
                        "dl_norm": round(result.dl_norm(), 4),
                        "num_communities": result.num_communities,
                        "measured_seconds": round(result.runtime_seconds, 2),
                        "modeled_seconds": round(modeled_runtime(result, params), 3),
                    }
                )
    return rows
