"""Experiment harness: workload builders, runtime model, table formatting.

Each of the paper's tables and figures has a corresponding ``run_*`` function
in :mod:`repro.harness.experiments` that generates the workload, runs the
relevant algorithms, and returns plain row dictionaries; the benchmark suite
(``benchmarks/``) wraps those functions with ``pytest-benchmark`` and prints
the regenerated table.

Because the MPI ranks are simulated inside one Python process (see
:mod:`repro.mpi`), measured wall-clock reflects the *total* work of all
ranks, not the parallel runtime a cluster would achieve.  The
:mod:`repro.harness.runtime_model` converts the per-rank measured work and
the recorded communication volumes into a modelled cluster runtime with a
standard α-β (latency/bandwidth) cost model — that modelled time is what the
strong-scaling figures report, alongside the raw measurements.
"""

from repro.harness.runtime_model import RuntimeModelParams, modeled_runtime, speedup_series
from repro.harness.settings import ExperimentSettings
from repro.harness.tables import format_table, rows_to_csv, save_rows
from repro.harness import experiments

__all__ = [
    "RuntimeModelParams",
    "modeled_runtime",
    "speedup_series",
    "ExperimentSettings",
    "format_table",
    "rows_to_csv",
    "save_rows",
    "experiments",
]
