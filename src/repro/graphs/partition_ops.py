"""Vertex partitioning and subgraph extraction.

Two partitioning strategies from the paper live here:

* **Round-robin assignment** — DC-SBP (Alg. 3, line 1) deals vertex ``v`` to
  rank ``v mod n``.  Because each rank then keeps only the edges internal to
  its share, sparse graphs produce *island vertices* (vertices with no
  remaining edges), which the paper identifies as the driver of DC-SBP's
  accuracy collapse (Fig. 2).
* **Degree-sorted balanced assignment** — EDiSt's MCMC phase sorts vertices
  by degree and deals them in chunks of ``2n`` so that rank ``r`` receives the
  ``r``-th highest and ``r``-th lowest degree vertex of every chunk
  (Section III-B), balancing the per-rank work of the hybrid MCMC sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "round_robin_assignment",
    "degree_balanced_assignment",
    "contiguous_assignment",
    "SubgraphPartition",
    "extract_subgraph",
    "island_vertices",
    "island_fraction",
]


def round_robin_assignment(num_vertices: int, num_parts: int) -> np.ndarray:
    """Return ``owner[v] = v mod num_parts`` for every vertex.

    This is DC-SBP's data-distribution strategy.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    return np.arange(num_vertices, dtype=np.int64) % num_parts


def contiguous_assignment(num_vertices: int, num_parts: int) -> np.ndarray:
    """Assign contiguous vertex ranges to parts (a simple baseline splitter)."""
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    return np.minimum(
        (np.arange(num_vertices, dtype=np.int64) * num_parts) // max(num_vertices, 1),
        num_parts - 1,
    )


def degree_balanced_assignment(graph: Graph, num_parts: int) -> np.ndarray:
    """EDiSt's sorting-based balanced vertex ownership for the MCMC phase.

    Vertices are sorted by total degree (descending).  The sorted order is
    broken into chunks of ``2 * num_parts``; within each chunk rank ``r``
    receives the ``r``-th highest-degree and the ``r``-th lowest-degree
    vertex, i.e. positions ``r`` and ``2n - 1 - r``.  This pairs heavy and
    light vertices so that every rank's share of MCMC work is comparable.

    Returns
    -------
    numpy.ndarray
        ``owner[v]`` in ``[0, num_parts)`` for every vertex ``v``.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    n = graph.num_vertices
    owner = np.empty(n, dtype=np.int64)
    # Sort by degree descending; stable so that ties keep vertex order.
    order = np.argsort(-graph.degrees, kind="stable")
    positions = np.arange(n, dtype=np.int64)
    within = positions % (2 * num_parts)
    # positions 0..n-1 -> rank; mirror the second half of each 2n chunk.
    rank_for_within = np.where(within < num_parts, within, 2 * num_parts - 1 - within)
    owner[order] = rank_for_within
    return owner


def island_vertices(graph: Graph, owner: np.ndarray, part: int) -> np.ndarray:
    """Vertices owned by ``part`` that have no edges internal to ``part``.

    A vertex is an *island* if, after dropping every edge with an endpoint
    owned by another part, it has degree zero.  Island vertices carry no
    information for the per-rank SBP run, which is what degrades DC-SBP.
    """
    owner = np.asarray(owner, dtype=np.int64)
    if owner.shape != (graph.num_vertices,):
        raise ValueError("owner must assign every vertex")
    members = np.flatnonzero(owner == part)
    islands: List[int] = []
    member_set = set(int(v) for v in members)
    for v in members:
        nbrs = graph.neighbors(int(v))
        has_internal = False
        for u in nbrs:
            if int(u) != int(v) and int(u) in member_set:
                has_internal = True
                break
        if not has_internal:
            islands.append(int(v))
    return np.asarray(islands, dtype=np.int64)


def island_fraction(graph: Graph, owner: np.ndarray) -> float:
    """Fraction of all vertices that are islands under ``owner``.

    This is the x-axis of the paper's Fig. 2.
    """
    owner = np.asarray(owner, dtype=np.int64)
    total_islands = 0
    for part in np.unique(owner):
        total_islands += island_vertices(graph, owner, int(part)).shape[0]
    return total_islands / max(graph.num_vertices, 1)


@dataclass
class SubgraphPartition:
    """An induced subgraph plus the vertex-id mappings back to the parent.

    Attributes
    ----------
    subgraph:
        The induced :class:`Graph` over the local vertices (local ids
        ``0..k-1``); only edges with both endpoints local are retained.
    local_to_global:
        ``local_to_global[i]`` is the parent-graph id of local vertex ``i``.
    global_to_local:
        Mapping from parent ids to local ids (``-1`` for non-members).
    part:
        Which part this subgraph corresponds to.
    """

    subgraph: Graph
    local_to_global: np.ndarray
    global_to_local: np.ndarray
    part: int

    @property
    def num_island_vertices(self) -> int:
        return int(np.count_nonzero(self.subgraph.degrees == 0))

    def to_global_assignment(self, local_assignment: np.ndarray, num_global_vertices: int, fill: int = -1) -> np.ndarray:
        """Scatter a local community assignment back into parent-graph ids."""
        out = np.full(num_global_vertices, fill, dtype=np.int64)
        out[self.local_to_global] = np.asarray(local_assignment, dtype=np.int64)
        return out


def extract_subgraph(graph: Graph, owner: np.ndarray, part: int) -> SubgraphPartition:
    """Extract the induced subgraph of the vertices owned by ``part``.

    Edges crossing part boundaries are discarded — exactly the information
    loss DC-SBP incurs.  The planted ground truth (if any) is carried over so
    that per-subgraph accuracy can still be evaluated.
    """
    owner = np.asarray(owner, dtype=np.int64)
    if owner.shape != (graph.num_vertices,):
        raise ValueError("owner must assign every vertex")
    members = np.flatnonzero(owner == part)
    global_to_local = np.full(graph.num_vertices, -1, dtype=np.int64)
    global_to_local[members] = np.arange(members.shape[0], dtype=np.int64)

    src, dst, w = graph.edge_arrays()
    keep = (owner[src] == part) & (owner[dst] == part)
    local_src = global_to_local[src[keep]]
    local_dst = global_to_local[dst[keep]]
    local_w = w[keep]

    truth = None
    if graph.true_assignment is not None:
        truth = graph.true_assignment[members]

    sub = Graph(
        members.shape[0],
        local_src,
        local_dst,
        local_w,
        true_assignment=truth,
        name=f"{graph.name}/part{part}",
        aggregate=False,
    )
    return SubgraphPartition(subgraph=sub, local_to_global=members, global_to_local=global_to_local, part=part)


def partition_all(graph: Graph, owner: np.ndarray) -> Dict[int, SubgraphPartition]:
    """Extract every part's induced subgraph (convenience for DC-SBP)."""
    return {int(p): extract_subgraph(graph, owner, int(p)) for p in np.unique(np.asarray(owner))}
