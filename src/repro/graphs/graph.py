"""An immutable directed multigraph stored in compressed sparse form.

SBP's inner loops iterate over a vertex's out-, in-, and combined
neighbourhoods and need weighted degrees; they never mutate the graph.  The
:class:`Graph` therefore builds three CSR-style structures once at
construction time (out, in, and combined adjacency) and exposes cheap
NumPy-array views into them.

Parallel edges in the input are aggregated into integer edge weights, which
is exactly how the degree-corrected SBM treats multi-edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph"]


def _build_csr(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build (indptr, indices, data) for edges grouped by ``src``."""
    order = np.argsort(src, kind="stable")
    src_sorted = src[order]
    indices = dst[order]
    data = weights[order]
    counts = np.bincount(src_sorted, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices.astype(np.int64), data.astype(np.int64)


@dataclass(frozen=True)
class _CSR:
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def weights(self, v: int) -> np.ndarray:
        return self.data[self.indptr[v] : self.indptr[v + 1]]


class Graph:
    """A directed multigraph with integer edge weights.

    Construct with :meth:`from_edges` (preferred) or :meth:`from_adjacency`.
    Vertices are integers ``0..num_vertices-1``.  An optional
    ``true_assignment`` array carries planted ground-truth community labels
    for synthetic graphs (used by the NMI evaluation); real-world graphs set
    it to ``None``.
    """

    __slots__ = (
        "num_vertices",
        "num_edges",
        "_out",
        "_in",
        "_both",
        "out_degrees",
        "in_degrees",
        "degrees",
        "true_assignment",
        "name",
    )

    def __init__(
        self,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        weights: Optional[np.ndarray] = None,
        true_assignment: Optional[np.ndarray] = None,
        name: str = "",
        aggregate: bool = True,
    ) -> None:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        if weights is None:
            weights = np.ones(src.shape[0], dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.shape != src.shape:
                raise ValueError("weights must match the number of edges")
            if np.any(weights <= 0):
                raise ValueError("edge weights must be positive integers")
        if src.size and (src.min() < 0 or src.max() >= num_vertices):
            raise ValueError("source vertex id out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_vertices):
            raise ValueError("destination vertex id out of range")

        if aggregate and src.size:
            # Collapse parallel edges into weights.
            keys = src * np.int64(num_vertices) + dst
            uniq, inverse = np.unique(keys, return_inverse=True)
            agg = np.zeros(uniq.shape[0], dtype=np.int64)
            np.add.at(agg, inverse, weights)
            src = (uniq // num_vertices).astype(np.int64)
            dst = (uniq % num_vertices).astype(np.int64)
            weights = agg

        self.num_vertices = int(num_vertices)
        self.num_edges = int(weights.sum()) if weights.size else 0
        self._out = _CSR(*_build_csr(num_vertices, src, dst, weights))
        self._in = _CSR(*_build_csr(num_vertices, dst, src, weights))
        both_src = np.concatenate([src, dst]) if src.size else src
        both_dst = np.concatenate([dst, src]) if src.size else dst
        both_w = np.concatenate([weights, weights]) if src.size else weights
        self._both = _CSR(*_build_csr(num_vertices, both_src, both_dst, both_w))

        self.out_degrees = np.zeros(num_vertices, dtype=np.int64)
        self.in_degrees = np.zeros(num_vertices, dtype=np.int64)
        if src.size:
            np.add.at(self.out_degrees, src, weights)
            np.add.at(self.in_degrees, dst, weights)
        self.degrees = self.out_degrees + self.in_degrees

        if true_assignment is not None:
            true_assignment = np.asarray(true_assignment, dtype=np.int64)
            if true_assignment.shape != (num_vertices,):
                raise ValueError("true_assignment must have one label per vertex")
        self.true_assignment = true_assignment
        self.name = name

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]] | np.ndarray,
        weights: Optional[Sequence[int]] = None,
        true_assignment: Optional[np.ndarray] = None,
        name: str = "",
    ) -> "Graph":
        """Build a graph from an iterable of ``(src, dst)`` pairs."""
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be an (E, 2) array of vertex pairs")
        w = None if weights is None else np.asarray(weights, dtype=np.int64)
        return cls(num_vertices, arr[:, 0], arr[:, 1], w, true_assignment, name)

    @classmethod
    def from_adjacency(cls, matrix: np.ndarray, true_assignment: Optional[np.ndarray] = None, name: str = "") -> "Graph":
        """Build a graph from a dense adjacency (multiplicity) matrix."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("adjacency matrix must be square")
        src, dst = np.nonzero(matrix)
        weights = matrix[src, dst].astype(np.int64)
        return cls(matrix.shape[0], src, dst, weights, true_assignment, name)

    @classmethod
    def empty(cls, num_vertices: int, name: str = "") -> "Graph":
        """A graph with ``num_vertices`` vertices and no edges."""
        return cls(num_vertices, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), name=name)

    # ------------------------------------------------------------------
    # Neighbourhood access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Distinct out-neighbours of ``v`` (weights via :meth:`out_weights`)."""
        return self._out.neighbors(v)

    def out_weights(self, v: int) -> np.ndarray:
        return self._out.weights(v)

    def in_neighbors(self, v: int) -> np.ndarray:
        return self._in.neighbors(v)

    def in_weights(self, v: int) -> np.ndarray:
        return self._in.weights(v)

    def neighbors(self, v: int) -> np.ndarray:
        """Combined in+out neighbourhood of ``v`` (may repeat a vertex)."""
        return self._both.neighbors(v)

    def neighbor_weights(self, v: int) -> np.ndarray:
        return self._both.weights(v)

    def out_adjacency(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, indices, data)`` of the out-adjacency CSR structure.

        Vertex ``v``'s out-neighbours are ``indices[indptr[v]:indptr[v+1]]``
        with weights ``data[indptr[v]:indptr[v+1]]``.  The arrays are the
        graph's own storage; callers must treat them as read-only.  The
        vectorized blockmodel kernels use these to gather whole batches of
        neighbourhoods without per-vertex Python calls.
        """
        return self._out.indptr, self._out.indices, self._out.data

    def in_adjacency(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, indices, data)`` of the in-adjacency CSR structure."""
        return self._in.indptr, self._in.indices, self._in.data

    def out_degree(self, v: int) -> int:
        return int(self.out_degrees[v])

    def in_degree(self, v: int) -> int:
        return int(self.in_degrees[v])

    def degree(self, v: int) -> int:
        return int(self.degrees[v])

    # ------------------------------------------------------------------
    # Edge views
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(src, dst, weight)`` over distinct directed edges."""
        for v in range(self.num_vertices):
            nbrs = self._out.neighbors(v)
            wts = self._out.weights(v)
            for u, w in zip(nbrs, wts):
                yield int(v), int(u), int(w)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(src, dst, weight)`` arrays over distinct directed edges."""
        counts = np.diff(self._out.indptr)
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), counts)
        return src, self._out.indices.copy(), self._out.data.copy()

    def num_distinct_edges(self) -> int:
        return int(self._out.indices.shape[0])

    # ------------------------------------------------------------------
    # Derived properties and conversions
    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        """Edges over possible directed edges (ignoring multiplicities)."""
        if self.num_vertices <= 1:
            return 0.0
        return self.num_distinct_edges() / (self.num_vertices * (self.num_vertices - 1))

    @property
    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return float(self.degrees.mean())

    def isolated_vertices(self) -> np.ndarray:
        """Vertices with no in- or out-edges."""
        return np.flatnonzero(self.degrees == 0)

    def to_dense(self) -> np.ndarray:
        """Dense adjacency (multiplicity) matrix — for tests on small graphs."""
        mat = np.zeros((self.num_vertices, self.num_vertices), dtype=np.int64)
        src, dst, w = self.edge_arrays()
        mat[src, dst] = w
        return mat

    def to_networkx(self):
        """Convert to a :class:`networkx.MultiDiGraph` (weights preserved)."""
        import networkx as nx

        g = nx.MultiDiGraph()
        g.add_nodes_from(range(self.num_vertices))
        for s, d, w in self.edges():
            g.add_edge(s, d, weight=w)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"Graph({label} V={self.num_vertices}, E={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self._out.indptr, other._out.indptr)
            and np.array_equal(self._out.indices, other._out.indices)
            and np.array_equal(self._out.data, other._out.data)
        )

    def __hash__(self) -> int:  # Graphs are hashable by identity.
        return id(self)
