"""Shared-memory graph ingestion for the multiprocess transport.

A :class:`~repro.graphs.graph.Graph` is immutable after construction and
consists almost entirely of NumPy arrays (three CSR structures plus degree
and ground-truth vectors).  Shipping it to worker processes by pickle would
copy the whole edge list once per rank; instead, :func:`share_graph` packs
every array into **one** ``multiprocessing.shared_memory`` segment and
returns a :class:`SharedGraph` descriptor — a few hundred bytes of names,
shapes and offsets.  Workers call :meth:`SharedGraph.attach` to rebuild a
fully functional ``Graph`` whose arrays are read-only views into the shared
segment, so N ranks map one physical copy of the adjacency structure no
matter how large the graph is.

Lifecycle: the *launcher* owns the segment — it creates it, keeps it alive
while workers run, and calls :meth:`SharedGraph.close` (which unlinks) when
the run is over.  Workers only ever attach; attached handles are parked in
a module-level registry so the mappings outlive the attaching frame.
Workers are forked, so they share the launcher's ``resource_tracker``
process and their attach-time registrations (Python < 3.13 tracks
attachments too) are idempotent no-ops against the launcher's own.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph, _CSR

__all__ = ["SharedGraph", "share_graph"]

#: The Graph arrays exported into the segment, in a fixed order.  CSR
#: structures are flattened to ``<view>_<component>`` entries.
_CSR_VIEWS = ("out", "in", "both")
_CSR_PARTS = ("indptr", "indices", "data")
_VECTORS = ("out_degrees", "in_degrees", "degrees")


@dataclass(frozen=True)
class _ArraySpec:
    """Location of one array inside the shared segment."""

    offset: int
    shape: Tuple[int, ...]
    dtype: str


@dataclass
class SharedGraph:
    """A picklable descriptor of a graph exported to shared memory.

    Holds everything a worker needs to rebuild the ``Graph`` — the segment
    name, the scalar fields, and the per-array offsets — but none of the
    array data itself.
    """

    shm_name: str
    num_vertices: int
    num_edges: int
    graph_name: str
    arrays: Dict[str, _ArraySpec]
    #: Launcher-side handle; ``None`` on descriptors that crossed a process
    #: boundary (the handle deliberately does not pickle).
    _shm: Optional[shared_memory.SharedMemory] = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_shm"] = None
        return state

    # ------------------------------------------------------------------
    def attach(self) -> Graph:
        """Map the segment and rebuild a read-only :class:`Graph` view."""
        shm = shared_memory.SharedMemory(name=self.shm_name)
        # NOTE on the resource tracker: Python < 3.13 registers attachments
        # as well as creations.  Workers are forked, so they share the
        # launcher's tracker process and the registration is an idempotent
        # no-op; the launcher's close() performs the one real unlink.
        # (Unregistering here would strip the launcher's own registration
        # from the shared tracker — exactly the wrong side of the bug the
        # 3.13 ``track=False`` flag fixes.)
        _ATTACHED.append(shm)  # keep the mapping alive for the worker's lifetime

        def arr(key: str) -> np.ndarray:
            spec = self.arrays[key]
            view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf, offset=spec.offset)
            view.flags.writeable = False
            return view

        graph = Graph.__new__(Graph)
        graph.num_vertices = self.num_vertices
        graph.num_edges = self.num_edges
        graph.name = self.graph_name
        for view in _CSR_VIEWS:
            csr = _CSR(*(arr(f"{view}_{part}") for part in _CSR_PARTS))
            setattr(graph, "_" + view, csr)
        for key in _VECTORS:
            setattr(graph, key, arr(key))
        graph.true_assignment = arr("true_assignment") if "true_assignment" in self.arrays else None
        return graph

    def close(self) -> None:
        """Release and unlink the segment (launcher side, after the run)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None


#: Segments attached by this process; kept open until interpreter exit so
#: the numpy views handed to the algorithms never dangle.
_ATTACHED: List[shared_memory.SharedMemory] = []


def _iter_graph_arrays(graph: Graph):
    """Yield ``(key, array)`` for every array the export must carry."""
    for view in _CSR_VIEWS:
        csr: _CSR = getattr(graph, "_" + view)
        for part in _CSR_PARTS:
            yield f"{view}_{part}", np.ascontiguousarray(getattr(csr, part))
    for key in _VECTORS:
        yield key, np.ascontiguousarray(getattr(graph, key))
    if graph.true_assignment is not None:
        yield "true_assignment", np.ascontiguousarray(graph.true_assignment)


def share_graph(graph: Graph) -> SharedGraph:
    """Export ``graph``'s arrays into one shared-memory segment.

    Returns the :class:`SharedGraph` descriptor; the caller owns the
    segment and must call :meth:`SharedGraph.close` once every worker has
    finished.
    """
    specs: Dict[str, _ArraySpec] = {}
    offset = 0
    payload = list(_iter_graph_arrays(graph))
    for key, array in payload:
        # 8-byte alignment keeps the int64/float views safe on every platform.
        offset = (offset + 7) & ~7
        specs[key] = _ArraySpec(offset=offset, shape=tuple(array.shape), dtype=array.dtype.str)
        offset += array.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for key, array in payload:
        spec = specs[key]
        dest = np.ndarray(spec.shape, dtype=array.dtype, buffer=shm.buf, offset=spec.offset)
        dest[...] = array
    return SharedGraph(
        shm_name=shm.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        graph_name=graph.name,
        arrays=specs,
        _shm=shm,
    )
