"""Synthetic graph generators reproducing the paper's datasets.

The paper uses the ``graph-tool`` DCSBM generator; that library is not
available here, so this package implements the same generative process from
scratch:

* community sizes drawn from a Dirichlet distribution (α = 2 for the
  high-variation graphs used throughout the paper's evaluation),
* a planted block structure with a configurable intra- to inter-community
  edge ratio (≈ 2 in the paper),
* degree-corrected edge placement driven by power-law degree sequences with
  configurable truncation and in/out duplication — the two generator knobs
  whose interaction the paper studies in its exhaustive parameter sweep
  (Table III).

Dataset families:

========================  =============================================
``challenge``             Graph-Challenge-style graphs (Table II)
``parameter_sweep``       the 16 TTT33 … FFF150 graphs (Table III)
``scaling``               the 1M/2M/4M scaling graphs (Table IV)
``realworld``             stand-ins for the SNAP graphs (Table V)
========================  =============================================
"""

from repro.graphs.generators.degree import (
    power_law_degree_sequence,
    split_degree_sequence,
    DegreeSequenceSpec,
)
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph, sample_block_sizes
from repro.graphs.generators.challenge import CHALLENGE_GRAPHS, ChallengeGraphSpec, challenge_graph
from repro.graphs.generators.parameter_sweep import (
    PARAMETER_SWEEP_GRAPHS,
    ParameterSweepSpec,
    parameter_sweep_graph,
)
from repro.graphs.generators.scaling import SCALING_GRAPHS, ScalingGraphSpec, scaling_graph
from repro.graphs.generators.realworld import REALWORLD_GRAPHS, RealWorldSpec, realworld_graph

__all__ = [
    "power_law_degree_sequence",
    "split_degree_sequence",
    "DegreeSequenceSpec",
    "DCSBMSpec",
    "generate_dcsbm_graph",
    "sample_block_sizes",
    "CHALLENGE_GRAPHS",
    "ChallengeGraphSpec",
    "challenge_graph",
    "PARAMETER_SWEEP_GRAPHS",
    "ParameterSweepSpec",
    "parameter_sweep_graph",
    "SCALING_GRAPHS",
    "ScalingGraphSpec",
    "scaling_graph",
    "REALWORLD_GRAPHS",
    "RealWorldSpec",
    "realworld_graph",
]
