"""Synthetic strong-scaling graphs (paper Table IV).

The paper generates three large DCSBM graphs — 1M, 2M, and 4M vertices with
roughly 11M, 24M, and 53M edges — to study EDiSt's strong scaling (Figs. 3-5).
They follow the "hard" Graph Challenge structure: intra/inter edge ratio ≈ 2
and Dirichlet(α=2) community sizes, with the community count growing roughly
with the square root of the vertex count.

Generating multi-million-vertex graphs is possible with this module but slow
in pure Python, so the scaling benchmarks default to ``scale`` factors that
preserve the 1:2:4 size progression at laptop-friendly sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.graphs.graph import Graph
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph

__all__ = ["ScalingGraphSpec", "SCALING_GRAPHS", "scaling_graph"]


@dataclass(frozen=True)
class ScalingGraphSpec:
    """One row of the paper's Table IV."""

    graph_id: str
    num_communities: int
    num_vertices: int
    num_edges: int  # the paper's reported edge count (informational)

    def to_dcsbm(self, scale: float = 1.0) -> DCSBMSpec:
        degree_spec = DegreeSequenceSpec(exponent=3.0, min_degree=5, max_degree=100, duplicate=True)
        spec = DCSBMSpec(
            num_vertices=self.num_vertices,
            num_communities=self.num_communities,
            degree_spec=degree_spec,
            intra_inter_ratio=2.0,
            block_size_alpha=2.0,
            name=self.graph_id,
        )
        if scale != 1.0:
            spec = spec.scaled(scale)
        return spec


#: Paper Table IV.
SCALING_GRAPHS: Dict[str, ScalingGraphSpec] = {
    "1M": ScalingGraphSpec("1M", 1_075, 1_051_218, 11_056_834),
    "2M": ScalingGraphSpec("2M", 1_521, 2_103_554, 23_987_218),
    "4M": ScalingGraphSpec("4M", 2_151, 4_221_264, 53_175_026),
}


def scaling_graph(graph_id: str, scale: float = 1.0, seed: Optional[int] = None) -> Graph:
    """Generate one of the Table IV scaling graphs (optionally scaled down)."""
    key = graph_id.upper()
    if key not in SCALING_GRAPHS:
        raise KeyError(f"unknown scaling graph {graph_id!r}; options: {sorted(SCALING_GRAPHS)}")
    spec = SCALING_GRAPHS[key].to_dcsbm(scale)
    return generate_dcsbm_graph(spec, seed)
