"""A from-scratch degree-corrected stochastic blockmodel graph generator.

This replaces the ``graph-tool`` generator used by the paper.  The generative
process is:

1. Community sizes are drawn from a Dirichlet distribution with concentration
   α (α = 2 in the paper's evaluation, giving highly varied sizes) and each
   vertex is assigned to a community.
2. Per-vertex out- and in-degree targets are drawn from a truncated power law
   (see :mod:`repro.graphs.generators.degree`).
3. Every out-edge "stub" picks a destination community — its own community
   with probability ``ratio / (ratio + 1)`` (so the expected intra- to
   inter-community edge ratio equals ``ratio``, ≈ 2 in the paper) and a
   uniformly random other community otherwise — and then a destination vertex
   inside that community with probability proportional to the vertex's
   in-degree target (the degree correction).

The result is a directed multigraph with a planted ground-truth assignment,
matching the structural knobs the paper's synthetic datasets vary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.generators.degree import DegreeSequenceSpec, directed_degree_sequences

__all__ = ["DCSBMSpec", "sample_block_sizes", "generate_dcsbm_graph"]


@dataclass(frozen=True)
class DCSBMSpec:
    """Parameters of a planted degree-corrected SBM graph.

    Attributes
    ----------
    num_vertices / num_communities:
        Graph dimensions.
    degree_spec:
        Degree-sequence parameters (power-law exponent, truncation,
        duplication).
    intra_inter_ratio:
        Expected ratio of intra-community to inter-community edges
        (the paper uses ≈ 2, i.e. a "hard", high-overlap structure).
    block_size_alpha:
        Dirichlet concentration for community sizes (2 in the paper; larger
        values give more even sizes — the "low variation" setting).
    min_community_size:
        Every community is guaranteed at least this many vertices.
    name:
        Dataset label carried onto the generated :class:`Graph`.
    """

    num_vertices: int
    num_communities: int
    degree_spec: DegreeSequenceSpec = field(default_factory=DegreeSequenceSpec)
    intra_inter_ratio: float = 2.0
    block_size_alpha: float = 2.0
    min_community_size: int = 2
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        if self.num_communities <= 0:
            raise ValueError("num_communities must be positive")
        if self.num_communities * self.min_community_size > self.num_vertices:
            raise ValueError("num_vertices too small for the requested number of communities")
        if self.intra_inter_ratio <= 0:
            raise ValueError("intra_inter_ratio must be positive")
        if self.block_size_alpha <= 0:
            raise ValueError("block_size_alpha must be positive")

    def scaled(self, factor: float) -> "DCSBMSpec":
        """Return a copy scaled to ``factor`` of the original vertex count.

        Community count scales with the square root of the factor so that the
        communities-to-vertices ratio moves slowly, keeping small-scale runs
        structurally comparable to the full-size graphs.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        # Scale the community count first so the vertex-count floor is based on
        # the *scaled* number of communities; flooring on the original count
        # would silently inflate heavily-scaled graphs and distort size ratios
        # between members of a graph family (e.g. Table IV's 1:2:4 progression).
        new_c = max(2, int(round(self.num_communities * np.sqrt(factor))))
        new_v = max(int(round(self.num_vertices * factor)), new_c * self.min_community_size, 16)
        new_c = min(new_c, new_v // self.min_community_size)
        return replace(self, num_vertices=new_v, num_communities=new_c)


def sample_block_sizes(
    num_vertices: int,
    num_communities: int,
    alpha: float,
    rng: np.random.Generator,
    min_size: int = 2,
) -> np.ndarray:
    """Sample community sizes from a Dirichlet(α) with a minimum-size floor.

    Sizes sum exactly to ``num_vertices``.
    """
    if num_communities * min_size > num_vertices:
        raise ValueError("num_vertices too small for min_size communities")
    reserve = num_communities * min_size
    free = num_vertices - reserve
    proportions = rng.dirichlet(np.full(num_communities, alpha))
    extra = np.floor(proportions * free).astype(np.int64)
    # Distribute the rounding remainder to the largest fractional parts.
    remainder = free - int(extra.sum())
    if remainder > 0:
        frac = proportions * free - extra
        top = np.argsort(-frac)[:remainder]
        extra[top] += 1
    sizes = extra + min_size
    assert int(sizes.sum()) == num_vertices
    return sizes


def _assign_vertices(sizes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Assign shuffled vertex ids to communities with the given sizes."""
    assignment = np.repeat(np.arange(sizes.shape[0], dtype=np.int64), sizes)
    rng.shuffle(assignment)
    return assignment


def generate_dcsbm_graph(
    spec: DCSBMSpec,
    seed: Optional[Union[int, np.random.Generator]] = None,
) -> Graph:
    """Sample a directed DCSBM graph with a planted ground truth.

    Parameters
    ----------
    spec:
        The graph parameters.
    seed:
        Integer seed or a NumPy generator.  The same seed always produces the
        same graph.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    sizes = sample_block_sizes(
        spec.num_vertices, spec.num_communities, spec.block_size_alpha, rng, spec.min_community_size
    )
    assignment = _assign_vertices(sizes, rng)
    out_deg, in_deg = directed_degree_sequences(spec.num_vertices, spec.degree_spec, rng)

    num_stubs = int(out_deg.sum())
    if num_stubs == 0:
        return Graph.empty(spec.num_vertices, name=spec.name)

    src = np.repeat(np.arange(spec.num_vertices, dtype=np.int64), out_deg)
    src_block = assignment[src]

    p_intra = spec.intra_inter_ratio / (spec.intra_inter_ratio + 1.0)
    intra = rng.random(num_stubs) < p_intra
    dst_block = src_block.copy()
    if spec.num_communities > 1:
        n_inter = int(np.count_nonzero(~intra))
        if n_inter:
            # Uniform random *other* community for inter-community stubs.
            offsets = rng.integers(1, spec.num_communities, size=n_inter)
            dst_block[~intra] = (src_block[~intra] + offsets) % spec.num_communities

    # Pre-compute community membership lists and in-degree weights.
    order = np.argsort(assignment, kind="stable")
    block_start = np.searchsorted(assignment[order], np.arange(spec.num_communities))
    block_end = np.append(block_start[1:], spec.num_vertices)

    dst = np.empty(num_stubs, dtype=np.int64)
    for b in range(spec.num_communities):
        stub_idx = np.flatnonzero(dst_block == b)
        if stub_idx.size == 0:
            continue
        members = order[block_start[b] : block_end[b]]
        weights = in_deg[members].astype(np.float64)
        total = weights.sum()
        if total <= 0:
            probs = None  # degenerate block: fall back to uniform choice
        else:
            probs = weights / total
        dst[stub_idx] = rng.choice(members, size=stub_idx.size, p=probs)

    graph = Graph(
        spec.num_vertices,
        src,
        dst,
        true_assignment=assignment,
        name=spec.name,
    )
    return graph
