"""Graph-Challenge-style datasets (paper Table II).

The paper evaluates on six graphs published by the MIT/Amazon/IEEE Graph
Challenge: 20k, 50k, and 200k vertices, each in an *easy* (low block overlap,
low block-size variation) and *hard* (high overlap, high variation) variant.

The Graph Challenge data files are not redistributable here, so these graphs
are regenerated with :func:`repro.graphs.generators.sbm.generate_dcsbm_graph`
using the same structural knobs:

* easy  → intra/inter edge ratio ≈ 5, Dirichlet α = 10 (even block sizes),
* hard  → intra/inter edge ratio ≈ 2, Dirichlet α = 2 (varied block sizes),
* degree distribution truncated to [10, 100] with a duplicated in/out degree
  sequence — the Graph Challenge generator convention identified in
  Section IV-A of the paper.

Every entry accepts a ``scale`` factor so the full-size graphs can be
reproduced when time allows while the default benchmark configuration uses
laptop-sized versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph

__all__ = ["ChallengeGraphSpec", "CHALLENGE_GRAPHS", "challenge_graph"]


@dataclass(frozen=True)
class ChallengeGraphSpec:
    """One row of the paper's Table II."""

    graph_id: str
    num_vertices: int
    num_edges: int        # the paper's reported edge count (informational)
    num_communities: int
    difficulty: str       # "easy" or "hard"

    @property
    def is_hard(self) -> bool:
        return self.difficulty == "hard"

    def to_dcsbm(self, scale: float = 1.0) -> DCSBMSpec:
        """Translate to generator parameters, optionally scaled down."""
        degree_spec = DegreeSequenceSpec(exponent=3.0, min_degree=10, max_degree=100, duplicate=True)
        spec = DCSBMSpec(
            num_vertices=self.num_vertices,
            num_communities=self.num_communities,
            degree_spec=degree_spec,
            intra_inter_ratio=2.0 if self.is_hard else 5.0,
            block_size_alpha=2.0 if self.is_hard else 10.0,
            name=self.graph_id,
        )
        if scale != 1.0:
            spec = spec.scaled(scale)
        return spec


#: Paper Table II.
CHALLENGE_GRAPHS: Dict[str, ChallengeGraphSpec] = {
    "20k-easy": ChallengeGraphSpec("20k-easy", 20_000, 473_914, 32, "easy"),
    "20k-hard": ChallengeGraphSpec("20k-hard", 20_000, 473_329, 32, "hard"),
    "50k-easy": ChallengeGraphSpec("50k-easy", 50_000, 1_183_975, 44, "easy"),
    "50k-hard": ChallengeGraphSpec("50k-hard", 50_000, 1_187_682, 44, "hard"),
    "200k-easy": ChallengeGraphSpec("200k-easy", 200_000, 4_750_333, 71, "easy"),
    "200k-hard": ChallengeGraphSpec("200k-hard", 200_000, 4_754_406, 71, "hard"),
}


def challenge_graph(graph_id: str, scale: float = 1.0, seed: Optional[int] = None) -> Graph:
    """Generate one of the Table II graphs (optionally scaled down).

    Parameters
    ----------
    graph_id:
        One of ``"20k-easy"``, ``"20k-hard"``, ``"50k-easy"``, ``"50k-hard"``,
        ``"200k-easy"``, ``"200k-hard"``.
    scale:
        Vertex-count scale factor (1.0 regenerates the paper-sized graph).
    seed:
        Seed for reproducibility.
    """
    if graph_id not in CHALLENGE_GRAPHS:
        raise KeyError(f"unknown Graph Challenge graph {graph_id!r}; options: {sorted(CHALLENGE_GRAPHS)}")
    spec = CHALLENGE_GRAPHS[graph_id].to_dcsbm(scale)
    return generate_dcsbm_graph(spec, seed)
