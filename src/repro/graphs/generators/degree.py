"""Power-law degree sequences with the paper's truncation/duplication knobs.

Section IV-A of the paper isolates three generator differences between the
Graph Challenge graphs and the web-graph-like graphs:

1. *Truncation of the minimum degree* — Graph Challenge graphs truncate the
   degree distribution at a minimum of 10; web-graph-like graphs allow
   minimum degree 1, producing much sparser graphs.
2. *Truncation of the maximum degree* — Graph Challenge graphs cap the degree
   at 100; web-graph-like graphs cap it at a fraction of the vertex count.
3. *Degree-sequence duplication* — Graph Challenge graphs reuse one sequence
   for both in- and out-degrees (so every vertex's total degree is at least
   twice the minimum); web-graph-like graphs generate a *total* degree
   sequence and split it randomly between in and out, allowing total degree 1.

All three knobs are modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["DegreeSequenceSpec", "power_law_degree_sequence", "split_degree_sequence"]


@dataclass(frozen=True)
class DegreeSequenceSpec:
    """Parameters of a truncated discrete power-law degree sequence.

    Attributes
    ----------
    exponent:
        Power-law exponent γ of ``P(d) ∝ d^(-γ)``.  The Graph Challenge
        generator uses γ ≈ 3 for its truncated distributions.
    min_degree / max_degree:
        Inclusive truncation bounds.
    duplicate:
        If ``True``, one sequence is used for both in- and out-degrees
        (Graph Challenge convention).  If ``False``, the sequence is treated
        as *total* degrees and split randomly between in and out.
    """

    exponent: float = 3.0
    min_degree: int = 1
    max_degree: int = 100
    duplicate: bool = True

    def __post_init__(self) -> None:
        if self.min_degree < 1:
            raise ValueError("min_degree must be at least 1")
        if self.max_degree < self.min_degree:
            raise ValueError("max_degree must be >= min_degree")
        if self.exponent <= 1.0:
            raise ValueError("power-law exponent must exceed 1")


def power_law_degree_sequence(
    num_vertices: int,
    spec: DegreeSequenceSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``num_vertices`` degrees from a truncated discrete power law.

    Uses inverse-transform sampling of the continuous Pareto distribution
    truncated to ``[min_degree, max_degree + 1)`` followed by flooring, which
    is the standard approximation for discrete power laws and is what
    graph-tool's ``random_graph`` helper examples do.
    """
    if num_vertices <= 0:
        return np.zeros(0, dtype=np.int64)
    lo = float(spec.min_degree)
    hi = float(spec.max_degree) + 1.0
    gamma = spec.exponent
    u = rng.random(num_vertices)
    if np.isclose(gamma, 1.0):
        raise ValueError("exponent 1 is not supported")
    a = 1.0 - gamma
    # Inverse CDF of the truncated Pareto on [lo, hi).
    samples = (lo**a + u * (hi**a - lo**a)) ** (1.0 / a)
    degrees = np.floor(samples).astype(np.int64)
    return np.clip(degrees, spec.min_degree, spec.max_degree)


def split_degree_sequence(
    total_degrees: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Randomly split total degrees into (out, in) parts, binomially.

    Mirrors the web-graph-like generator described in the paper: each
    vertex's total degree is split between its in- and out-degree uniformly
    at random, which permits vertices with total degree 1 (and hence degree-0
    in one direction).
    """
    total_degrees = np.asarray(total_degrees, dtype=np.int64)
    out_degrees = rng.binomial(total_degrees, 0.5).astype(np.int64)
    in_degrees = total_degrees - out_degrees
    return out_degrees, in_degrees


def directed_degree_sequences(
    num_vertices: int,
    spec: DegreeSequenceSpec,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(out_degrees, in_degrees)`` honouring the duplication knob."""
    base = power_law_degree_sequence(num_vertices, spec, rng)
    if spec.duplicate:
        # Same sequence for both directions: total degree >= 2 * min_degree.
        return base.copy(), base.copy()
    return split_degree_sequence(base, rng)
