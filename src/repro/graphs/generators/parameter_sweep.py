"""The 16-graph exhaustive parameter-sweep family (paper Table III).

Each graph is identified by a three-letter flag string plus a community
count, e.g. ``TTF150``:

* first letter  — **T**: minimum degree truncated to 10, **F**: minimum
  degree 1 (sparse, web-graph-like),
* second letter — **T**: maximum degree truncated to 100, **F**: maximum
  degree is a fraction of the vertex count,
* third letter  — **T**: the in/out degree sequences are duplicated,
  **F**: a total-degree sequence is split randomly between in and out,
* the number    — 33 or 150 planted communities.

All sixteen graphs use the "hard" structure (intra/inter ratio ≈ 2,
Dirichlet α = 2) and nominally 22 599 vertices, as in the paper.  The paper's
key observation is that the *first* knob (minimum-degree truncation) controls
graph density and therefore DC-SBP's convergence; the benchmark for Table VII
relies on that contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.graphs.graph import Graph
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph

__all__ = ["ParameterSweepSpec", "PARAMETER_SWEEP_GRAPHS", "parameter_sweep_graph", "sweep_graph_ids"]

#: Nominal vertex count used by the paper for every sweep graph.
PAPER_NUM_VERTICES = 22_599

#: Fraction of the vertex count used as the maximum degree when the maximum
#: is *not* truncated (the paper describes it as "a fraction of the number of
#: vertices"); 5% keeps hub degrees realistic at small scales too.
UNTRUNCATED_MAX_DEGREE_FRACTION = 0.05


@dataclass(frozen=True)
class ParameterSweepSpec:
    """One row of the paper's Table III."""

    graph_id: str
    truncate_min_degree: bool
    truncate_max_degree: bool
    duplicate_degree_sequence: bool
    num_communities: int
    num_vertices: int = PAPER_NUM_VERTICES

    @property
    def is_sparse_family(self) -> bool:
        """Graphs without minimum-degree truncation are the sparse family.

        These are the graphs on which the paper shows DC-SBP failing even at
        2-4 ranks (Table VII, rows FTT33 onward).
        """
        return not self.truncate_min_degree

    def to_dcsbm(self, scale: float = 1.0) -> DCSBMSpec:
        num_vertices = max(int(round(self.num_vertices * scale)), 4 * self.num_communities if scale < 1 else self.num_vertices)
        num_communities = self.num_communities
        if scale < 1.0:
            # Keep the communities-to-vertices contrast between the 33- and
            # 150-community variants while staying feasible at small sizes.
            num_communities = max(4, min(int(round(self.num_communities * scale ** 0.5)), num_vertices // 3))
        min_degree = 10 if self.truncate_min_degree else 1
        if self.truncate_max_degree:
            max_degree = 100
        else:
            max_degree = max(int(num_vertices * UNTRUNCATED_MAX_DEGREE_FRACTION), min_degree + 10)
        max_degree = max(max_degree, min_degree)
        # The truncated graphs follow the Graph Challenge generator (γ ≈ 3 on
        # [10, 100]); the non-truncated family needs a heavier tail (γ ≈ 2.1)
        # to reproduce the paper's edge-per-vertex ratios (Table III: ~3.6
        # edges/vertex for the duplicated sparse graphs, ~2.1 otherwise),
        # since a γ = 3 law with minimum degree 1 would be far sparser than
        # reported and would push the graphs below the MDL detectability
        # limit at reduced scale.
        exponent = 3.0 if self.truncate_min_degree else 2.1
        degree_spec = DegreeSequenceSpec(
            exponent=exponent,
            min_degree=min_degree,
            max_degree=max_degree,
            duplicate=self.duplicate_degree_sequence,
        )
        return DCSBMSpec(
            num_vertices=num_vertices,
            num_communities=num_communities,
            degree_spec=degree_spec,
            intra_inter_ratio=2.0,
            block_size_alpha=2.0,
            name=self.graph_id,
        )


def _build_registry() -> Dict[str, ParameterSweepSpec]:
    registry: Dict[str, ParameterSweepSpec] = {}
    for trunc_min in (True, False):
        for trunc_max in (True, False):
            for duplicate in (True, False):
                for communities in (33, 150):
                    flags = "".join("T" if flag else "F" for flag in (trunc_min, trunc_max, duplicate))
                    graph_id = f"{flags}{communities}"
                    registry[graph_id] = ParameterSweepSpec(
                        graph_id=graph_id,
                        truncate_min_degree=trunc_min,
                        truncate_max_degree=trunc_max,
                        duplicate_degree_sequence=duplicate,
                        num_communities=communities,
                    )
    return registry


#: Paper Table III — all 16 graphs, keyed by their IDs (TTT33 … FFF150).
PARAMETER_SWEEP_GRAPHS: Dict[str, ParameterSweepSpec] = _build_registry()


def sweep_graph_ids(dense_only: bool = False, sparse_only: bool = False) -> List[str]:
    """Return sweep graph IDs in the paper's Table III/VII ordering."""
    ordered = []
    for trunc_min in ("T", "F"):
        for trunc_max in ("T", "F"):
            for duplicate in ("T", "F"):
                for communities in ("33", "150"):
                    ordered.append(f"{trunc_min}{trunc_max}{duplicate}{communities}")
    if dense_only:
        ordered = [g for g in ordered if g.startswith("T")]
    if sparse_only:
        ordered = [g for g in ordered if g.startswith("F")]
    return ordered


def parameter_sweep_graph(graph_id: str, scale: float = 1.0, seed: Optional[int] = None) -> Graph:
    """Generate one of the 16 Table III graphs (optionally scaled down)."""
    key = graph_id.upper()
    if key not in PARAMETER_SWEEP_GRAPHS:
        raise KeyError(f"unknown parameter-sweep graph {graph_id!r}; options: {sweep_graph_ids()}")
    spec = PARAMETER_SWEEP_GRAPHS[key].to_dcsbm(scale)
    return generate_dcsbm_graph(spec, seed)
