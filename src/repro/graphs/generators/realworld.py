"""Stand-ins for the paper's real-world graphs (paper Table V).

The paper evaluates DC-SBP and EDiSt on five SNAP graphs (Amazon, Patents,
Berkeley-Stanford web, Twitter, LiveJournal) fetched from the SuiteSparse
collection.  Those datasets are not available offline, so this module
generates *structural stand-ins*: DCSBM graphs with latent (hidden) community
structure, power-law degree distributions without minimum-degree truncation,
and per-graph average degrees chosen to mirror the originals.  In particular
the Twitter stand-in has by far the highest average degree — the property the
paper credits for DC-SBP surviving to 16 subgraphs on that graph (Fig. 6).

Because the originals have no reliable non-overlapping ground truth, the
stand-ins deliberately *discard* the planted assignment: like the paper,
accuracy on them is measured with the normalised description length
(``DL_norm``), not NMI.  Use ``keep_truth=True`` to retain the planted labels
for debugging.

Users with the real SNAP/SuiteSparse files can load them directly with
:func:`repro.graphs.io.load_matrix_market` and run the same benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph

__all__ = ["RealWorldSpec", "REALWORLD_GRAPHS", "realworld_graph"]


@dataclass(frozen=True)
class RealWorldSpec:
    """One row of the paper's Table V plus stand-in generation knobs."""

    graph_id: str
    description: str
    num_vertices: int
    num_edges: int
    #: Minimum degree used by the stand-in generator.  Real-world graphs are
    #: not truncated; the Twitter graph's higher value reflects its much
    #: higher average degree.
    standin_min_degree: int = 1
    #: Power-law exponent of the stand-in degree distribution.
    standin_exponent: float = 2.6

    @property
    def average_total_degree(self) -> float:
        return 2.0 * self.num_edges / max(self.num_vertices, 1)

    def to_dcsbm(self, scale: float) -> DCSBMSpec:
        num_vertices = max(int(round(self.num_vertices * scale)), 64)
        # Latent community count grows sub-linearly, mimicking the community
        # counts SBP recovers on these graphs.
        num_communities = max(8, int(round(np.sqrt(num_vertices) / 2)))
        max_degree = max(int(num_vertices * 0.05), 32)
        # Choose the exponent/min-degree so the stand-in's average degree
        # tracks the original's (heavier tails => higher mean degree).
        degree_spec = DegreeSequenceSpec(
            exponent=self.standin_exponent,
            min_degree=self.standin_min_degree,
            max_degree=max_degree,
            duplicate=False,
        )
        return DCSBMSpec(
            num_vertices=num_vertices,
            num_communities=num_communities,
            degree_spec=degree_spec,
            intra_inter_ratio=2.0,
            block_size_alpha=2.0,
            min_community_size=2,
            name=self.graph_id,
        )


#: Paper Table V.  The stand-in degree knobs are chosen so that each graph's
#: *average total degree* tracks the original (Amazon/Patents ≈ 16-17,
#: Berkeley-Stanford ≈ 22, Twitter ≈ 65 — by far the densest, LiveJournal
#: ≈ 28): with a truncated power law of exponent ≈ 2.3 and minimum total
#: degree m, the mean total degree lands near 4m, so m is set to roughly a
#: quarter of the original's average degree.
REALWORLD_GRAPHS: Dict[str, RealWorldSpec] = {
    "amazon": RealWorldSpec("amazon", "Amazon co-purchasing graph", 403_394, 3_387_388,
                            standin_min_degree=4, standin_exponent=2.3),
    "patents": RealWorldSpec("patents", "Citation graph of US patents", 456_626, 3_774_768,
                             standin_min_degree=4, standin_exponent=2.3),
    "berk-stan": RealWorldSpec("berk-stan", "Berkeley-Stanford web graph", 685_230, 7_600_595,
                               standin_min_degree=5, standin_exponent=2.3),
    "twitter": RealWorldSpec("twitter", "Twitter social network graph", 456_626, 14_855_842,
                             standin_min_degree=16, standin_exponent=2.3),
    "livejournal": RealWorldSpec("livejournal", "LiveJournal social network graph", 4_847_571, 68_993_773,
                                 standin_min_degree=7, standin_exponent=2.3),
}


def realworld_graph(
    graph_id: str,
    scale: float = 0.002,
    seed: Optional[int] = None,
    keep_truth: bool = False,
) -> Graph:
    """Generate a structural stand-in for one of the Table V graphs.

    Parameters
    ----------
    graph_id:
        ``"amazon"``, ``"patents"``, ``"berk-stan"``, ``"twitter"``, or
        ``"livejournal"``.
    scale:
        Vertex-count scale factor relative to the original (defaults to a
        laptop-friendly size; the originals range from 0.4M to 4.8M
        vertices).
    keep_truth:
        Keep the planted assignment (for debugging).  The default mirrors the
        paper: no ground truth, evaluation via ``DL_norm``.
    """
    key = graph_id.lower()
    if key not in REALWORLD_GRAPHS:
        raise KeyError(f"unknown real-world graph {graph_id!r}; options: {sorted(REALWORLD_GRAPHS)}")
    spec = REALWORLD_GRAPHS[key].to_dcsbm(scale)
    graph = generate_dcsbm_graph(spec, seed)
    if keep_truth:
        return graph
    # Re-wrap without ground truth (the paper's real graphs have none).
    src, dst, w = graph.edge_arrays()
    return Graph(graph.num_vertices, src, dst, w, true_assignment=None, name=spec.name, aggregate=False)
