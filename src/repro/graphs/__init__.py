"""Directed graph substrate used by every SBP variant in this repository.

The paper runs SBP on directed (multi)graphs; edges carry integer
multiplicities.  :class:`~repro.graphs.graph.Graph` stores a compressed
sparse representation of both edge directions plus a combined view used by
the MCMC proposal step, which needs a vertex's in- and out-neighbourhoods at
once.

Submodules
----------
``graph``
    The immutable :class:`Graph` container and construction helpers.
``io``
    Plain-text edge-list and Matrix-Market-style readers/writers, including
    sharded/streaming per-rank edge ingestion (``load_edges_sharded``).
``shm``
    Shared-memory graph export/attach used by the multiprocess transport to
    map one physical copy of the adjacency arrays into every rank.
``partition_ops``
    Vertex partitioning strategies (round-robin, degree-sorted balanced) and
    subgraph extraction, plus island-vertex accounting.
``generators``
    Degree-corrected SBM samplers reproducing the paper's synthetic datasets
    (Tables II-V).
"""

from repro.graphs.graph import Graph
from repro.graphs.partition_ops import (
    SubgraphPartition,
    degree_balanced_assignment,
    extract_subgraph,
    island_vertices,
    island_fraction,
    round_robin_assignment,
)
from repro.graphs.io import (
    load_edge_list,
    load_edges_sharded,
    save_edge_list,
    load_matrix_market,
    save_matrix_market,
)
from repro.graphs.shm import SharedGraph, share_graph

__all__ = [
    "Graph",
    "SubgraphPartition",
    "round_robin_assignment",
    "degree_balanced_assignment",
    "extract_subgraph",
    "island_vertices",
    "island_fraction",
    "load_edge_list",
    "load_edges_sharded",
    "save_edge_list",
    "load_matrix_market",
    "save_matrix_market",
    "SharedGraph",
    "share_graph",
]
