"""Graph serialisation: TSV edge lists and a minimal Matrix Market subset.

The paper obtains its real-world graphs in Matrix Market format from the
SuiteSparse collection, and the Graph Challenge distributes TSV edge lists
with a companion ``_truth`` file.  Both formats are supported here so that a
user with access to those datasets can feed them straight into the library.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "load_edge_list",
    "load_edges_sharded",
    "save_edge_list",
    "load_truth_file",
    "save_truth_file",
    "load_matrix_market",
    "save_matrix_market",
    "graph_to_dict",
    "graph_from_dict",
]

PathLike = Union[str, Path]


def _open(path: PathLike, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t" if "b" not in mode else mode)
    return open(path, mode)


def save_edge_list(graph: Graph, path: PathLike, one_indexed: bool = True) -> None:
    """Write ``src<TAB>dst<TAB>weight`` lines (Graph Challenge convention).

    Graph Challenge TSV files are 1-indexed; pass ``one_indexed=False`` to
    write 0-indexed ids.
    """
    offset = 1 if one_indexed else 0
    with _open(path, "w") as fh:
        for s, d, w in graph.edges():
            fh.write(f"{s + offset}\t{d + offset}\t{w}\n")


def load_edge_list(
    path: PathLike,
    num_vertices: Optional[int] = None,
    one_indexed: bool = True,
    truth_path: Optional[PathLike] = None,
    name: str = "",
) -> Graph:
    """Load a TSV/CSV edge list (optionally gzipped).

    Lines may contain 2 columns (unit weights) or 3 columns
    (``src dst weight``); ``#`` and ``%`` lines are comments.
    """
    srcs: List[int] = []
    dsts: List[int] = []
    weights: List[int] = []
    with _open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.replace(",", " ").split()
            s, d = int(parts[0]), int(parts[1])
            w = int(float(parts[2])) if len(parts) > 2 else 1
            srcs.append(s)
            dsts.append(d)
            weights.append(w)
    offset = 1 if one_indexed else 0
    src = np.asarray(srcs, dtype=np.int64) - offset
    dst = np.asarray(dsts, dtype=np.int64) - offset
    w = np.asarray(weights, dtype=np.int64)
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if src.size else 0
    truth = None
    if truth_path is not None:
        truth = load_truth_file(truth_path, num_vertices, one_indexed=one_indexed)
    return Graph(num_vertices, src, dst, w, true_assignment=truth, name=name or str(path))


def load_edges_sharded(
    path: PathLike,
    rank: int,
    size: int,
    one_indexed: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stream rank ``rank``'s shard of a TSV/CSV edge list.

    Deals every kept edge round-robin across ``size`` ranks (edge ``i`` goes
    to rank ``i % size``), so the shards partition the file exactly:
    concatenating the shards of all ranks in rank order, interleaved,
    reproduces :func:`load_edge_list`'s edge order.  The file is read
    line-by-line and only the local shard is materialised, so ``size`` ranks
    ingesting a large edge list each hold ~``1/size`` of it instead of a
    full copy — the streaming complement to shipping an already-built
    :class:`~repro.graphs.graph.Graph` through shared memory.

    Accepts the same format as :func:`load_edge_list` (2 or 3 columns,
    ``#``/``%`` comments, optional gzip).  Returns ``(src, dst, weight)``
    int64 arrays for the local shard.
    """
    if size < 1:
        raise ValueError("size must be at least 1")
    if not 0 <= rank < size:
        raise ValueError(f"rank must lie in [0, {size}), got {rank}")
    srcs: List[int] = []
    dsts: List[int] = []
    weights: List[int] = []
    index = 0
    with _open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            mine = index % size == rank
            index += 1
            if not mine:
                continue
            parts = line.replace(",", " ").split()
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            weights.append(int(float(parts[2])) if len(parts) > 2 else 1)
    offset = 1 if one_indexed else 0
    return (
        np.asarray(srcs, dtype=np.int64) - offset,
        np.asarray(dsts, dtype=np.int64) - offset,
        np.asarray(weights, dtype=np.int64),
    )


def save_truth_file(assignment: np.ndarray, path: PathLike, one_indexed: bool = True) -> None:
    """Write ``vertex<TAB>community`` lines for a ground-truth assignment."""
    offset = 1 if one_indexed else 0
    assignment = np.asarray(assignment, dtype=np.int64)
    with _open(path, "w") as fh:
        for v, c in enumerate(assignment):
            fh.write(f"{v + offset}\t{int(c) + offset}\n")


def load_truth_file(path: PathLike, num_vertices: int, one_indexed: bool = True) -> np.ndarray:
    """Read a ``vertex<TAB>community`` ground-truth file."""
    offset = 1 if one_indexed else 0
    truth = np.full(num_vertices, -1, dtype=np.int64)
    with _open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.replace(",", " ").split()
            v = int(parts[0]) - offset
            c = int(parts[1]) - offset
            if 0 <= v < num_vertices:
                truth[v] = c
    return truth


def graph_to_dict(graph: Graph) -> dict:
    """A JSON-ready dict capturing the graph exactly; inverse of :func:`graph_from_dict`.

    Distinct directed edges with aggregated integer weights (the graph's
    canonical internal form), plus the planted ground truth when present, so
    a persisted :class:`~repro.core.results.SBPResult` can recompute NMI and
    DL_norm without access to the original generator.
    """
    src, dst, weight = graph.edge_arrays()
    out = {
        "name": graph.name,
        "num_vertices": int(graph.num_vertices),
        "src": src.tolist(),
        "dst": dst.tolist(),
        "weight": weight.tolist(),
    }
    if graph.true_assignment is not None:
        out["true_assignment"] = graph.true_assignment.tolist()
    return out


def graph_from_dict(data: dict) -> Graph:
    """Rebuild a :class:`Graph` from :func:`graph_to_dict` output."""
    truth = data.get("true_assignment")
    return Graph(
        int(data["num_vertices"]),
        np.asarray(data["src"], dtype=np.int64),
        np.asarray(data["dst"], dtype=np.int64),
        np.asarray(data["weight"], dtype=np.int64),
        true_assignment=None if truth is None else np.asarray(truth, dtype=np.int64),
        name=str(data.get("name", "")),
    )


def save_matrix_market(graph: Graph, path: PathLike) -> None:
    """Write the graph as a ``coordinate integer general`` Matrix Market file."""
    src, dst, w = graph.edge_arrays()
    with _open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate integer general\n")
        fh.write(f"{graph.num_vertices} {graph.num_vertices} {src.shape[0]}\n")
        for s, d, weight in zip(src, dst, w):
            fh.write(f"{s + 1} {d + 1} {weight}\n")


def load_matrix_market(path: PathLike, name: str = "") -> Graph:
    """Read a (subset of) Matrix Market coordinate file as a directed graph.

    Supports ``general`` and ``symmetric`` coordinate matrices with integer,
    real, or pattern values; symmetric entries are mirrored.
    """
    with _open(path, "r") as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a Matrix Market file")
        tokens = header.lower().split()
        symmetric = "symmetric" in tokens
        pattern = "pattern" in tokens
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        rows, cols, _nnz = (int(x) for x in line.split()[:3])
        if rows != cols:
            raise ValueError("adjacency matrix must be square")
        srcs: List[int] = []
        dsts: List[int] = []
        weights: List[int] = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            s, d = int(parts[0]) - 1, int(parts[1]) - 1
            w = 1 if pattern or len(parts) < 3 else max(int(round(float(parts[2]))), 1)
            srcs.append(s)
            dsts.append(d)
            weights.append(w)
            if symmetric and s != d:
                srcs.append(d)
                dsts.append(s)
                weights.append(w)
    return Graph(
        rows,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(weights, dtype=np.int64),
        name=name or str(path),
    )
