"""RunHandle: lifecycle control around one partitioning run.

A handle owns the :class:`~repro.core.context.RunContext` for a single run,
so callers can attach observers, impose a wall-clock timeout, and cancel
cooperatively — from an observer callback or from another thread — and then
inspect how the run ended.  The run itself executes synchronously in
:meth:`RunHandle.run` (the simulated-MPI strategies already manage their own
worker threads); the handle's value is that the *control* surface exists
before and during execution, which no bare driver call offered.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.api.registry import Strategy
from repro.core.config import SBPConfig
from repro.core.context import RunContext, RunObserver
from repro.core.results import SBPResult
from repro.graphs.graph import Graph

__all__ = ["RunHandle"]


class RunHandle:
    """One submitted partitioning run and its lifecycle state.

    Created by :meth:`repro.api.facade.Partitioner.submit`; states progress
    ``pending → running → completed | cancelled | timeout | failed``.
    """

    def __init__(
        self,
        strategy: Strategy,
        graph: Graph,
        config: SBPConfig,
        num_ranks: int = 1,
        observers: Iterable[RunObserver] = (),
        timeout: Optional[float] = None,
    ) -> None:
        self.strategy = strategy
        self.graph = graph
        self.config = config
        self.num_ranks = int(num_ranks)
        self.context = RunContext(observers=observers, timeout=timeout)
        # The handle can cancel the run from outside at any time, so the
        # distributed strategies must keep their stop-decision exchanges on.
        self.context.mark_controllable()
        self._status = "pending"
        self._result: Optional[SBPResult] = None
        self._error: Optional[BaseException] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        return self._status

    @property
    def done(self) -> bool:
        return self._status not in ("pending", "running")

    def add_observer(self, observer: RunObserver) -> "RunHandle":
        """Attach another observer; only meaningful before :meth:`run`."""
        self.context.observers.append(observer)
        return self

    def cancel(self) -> None:
        """Request a cooperative stop; safe from observers or other threads.

        A running handle winds down at the next phase boundary and still
        produces a well-formed partial result.  A ``pending`` handle — one
        whose :meth:`run` was never invoked — transitions to the terminal
        ``cancelled`` state *immediately*, so queue-time cancellation is
        well-defined for schedulers holding submitted-but-unstarted handles;
        :meth:`result` then lazily builds the degenerate (one block per
        vertex) partial result if anyone asks for it.
        """
        with self._lock:
            if self._status == "pending":
                self._status = "cancelled"
        self.context.cancel()

    # ------------------------------------------------------------------
    def run(self) -> SBPResult:
        """Execute the run synchronously and return its result.

        Idempotent: a second call returns the stored result (or re-raises
        the stored failure) instead of re-running.
        """
        with self._lock:
            if self._status == "running":
                raise RuntimeError("run already in progress")
            if self._error is not None:
                raise self._error
            if self._result is not None:
                return self._result
            # A handle cancelled while still queued stays terminally
            # "cancelled"; executing the strategy against the already-stopped
            # context merely materialises the degenerate partial result.
            cancelled_in_queue = self._status == "cancelled"
            if not cancelled_in_queue:
                self._status = "running"
        try:
            result = self.strategy.run(
                self.graph,
                self.config,
                num_ranks=self.num_ranks,
                run_context=self.context,
            )
        except BaseException as exc:
            self._error = exc
            self._status = "failed"
            raise
        self._result = result
        if not cancelled_in_queue:
            # Custom cancel reasons (RunContext.cancel("budget-exceeded")) map
            # to the "cancelled" state so the state machine stays closed; the
            # exact reason remains available as handle.context.stop_reason and
            # in result.metadata["stopped"].
            reason = self.context.stop_reason
            if reason is None:
                self._status = "completed"
            elif reason == "timeout":
                self._status = "timeout"
            else:
                self._status = "cancelled"
        return result

    def result(self) -> SBPResult:
        """The run's result, executing the run first if still pending.

        A handle cancelled before it ever ran also resolves here: the
        degenerate partial result is built on first request.
        """
        if self._status == "pending" or (self._status == "cancelled" and self._result is None):
            return self.run()
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise RuntimeError("run is still in progress")
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunHandle(strategy={self.strategy.name!r}, graph={self.graph.name!r}, "
            f"num_ranks={self.num_ranks}, status={self._status!r})"
        )
