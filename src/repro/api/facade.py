"""The public entry point: ``partition()`` and the ``Partitioner`` facade.

One function covers what used to take three divergent drivers::

    from repro import partition

    result = partition(graph, strategy="edist", config="fast", num_ranks=4)

``strategy`` is a registry name (see
:func:`repro.api.registry.available_strategies`), ``config`` accepts an
:class:`~repro.core.config.SBPConfig`, a preset name (``"paper"``,
``"fast"``, or anything registered via
:func:`~repro.core.config.register_config_preset`), a plain dict (as
produced by ``SBPConfig.to_dict``), or ``None`` for the paper defaults;
keyword overrides are applied on top.  Fixed seeds produce results
bit-identical to the legacy entry points — the facade only dispatches.

:class:`Partitioner` holds a (strategy, config, num_ranks) triple for
repeated runs, and :meth:`Partitioner.submit` returns a
:class:`~repro.api.handle.RunHandle` when the caller needs lifecycle
control (observers, timeout, cancellation) around a run.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.api.handle import RunHandle
from repro.api.registry import Strategy, get_strategy
from repro.core.config import SBPConfig, config_preset
from repro.core.context import RunContext, RunObserver
from repro.core.results import SBPResult
from repro.graphs.graph import Graph

__all__ = ["ConfigLike", "resolve_config", "partition", "Partitioner"]

#: Everything :func:`partition` accepts as a configuration.
ConfigLike = Union[None, str, Dict[str, object], SBPConfig]


def resolve_config(config: ConfigLike = None, **overrides) -> SBPConfig:
    """Normalise any :data:`ConfigLike` into a validated :class:`SBPConfig`.

    ``None`` → the ``"paper"`` preset (library defaults); a string → the
    preset registry; a dict → :meth:`SBPConfig.from_dict`.  Field overrides
    are applied last, so ``resolve_config("fast", seed=7)`` works the way
    callers expect.  All validation (field names, registry names, value
    ranges) happens here, at construction time.
    """
    if config is None:
        resolved = SBPConfig()
    elif isinstance(config, str):
        resolved = config_preset(config)
    elif isinstance(config, dict):
        resolved = SBPConfig.from_dict(config)
    elif isinstance(config, SBPConfig):
        resolved = config
    else:
        raise TypeError(
            f"config must be an SBPConfig, preset name, dict, or None, got {type(config).__name__}"
        )
    if overrides:
        resolved = resolved.with_overrides(**overrides)
    return resolved


def partition(
    graph: Graph,
    strategy: Union[str, Strategy] = "sequential",
    config: ConfigLike = None,
    *,
    num_ranks: int = 1,
    observers: Iterable[RunObserver] = (),
    timeout: Optional[float] = None,
    run_context: Optional[RunContext] = None,
    **overrides,
) -> SBPResult:
    """Partition ``graph`` with a registered strategy; the one-call API.

    Parameters
    ----------
    graph:
        The graph to partition.
    strategy:
        Registry name (``"sequential"``, ``"dcsbp"``, ``"edist"``,
        ``"reference_dcsbp"``, or anything registered via
        :func:`~repro.api.registry.register_strategy`) or a strategy
        instance.
    config:
        :class:`SBPConfig`, preset name, ``to_dict()`` dict, or ``None``
        (paper defaults).
    num_ranks:
        Simulated MPI ranks for the distributed strategies.
    observers:
        :class:`~repro.core.context.RunObserver` instances receiving
        ``on_cycle`` / ``on_merge_phase`` / ``on_mcmc_sweep`` events.
    timeout:
        Wall-clock budget in seconds; on expiry the run winds down and
        returns its best partial result (``metadata["stopped"]`` records
        why).
    run_context:
        Supply a pre-built context instead of ``observers``/``timeout``
        (mutually exclusive with them); used by :class:`RunHandle`.
    **overrides:
        :class:`SBPConfig` field overrides, e.g. ``seed=0``,
        ``matrix_backend="csr"`` (or ``"sparse_csr"`` past the dense
        backend's block-count cap).
    """
    resolved_strategy = get_strategy(strategy)
    resolved_config = resolve_config(config, **overrides)
    if run_context is not None and (list(observers) or timeout is not None):
        raise ValueError("pass either run_context or observers/timeout, not both")
    ctx = run_context or RunContext(observers=observers, timeout=timeout)
    return resolved_strategy.run(graph, resolved_config, num_ranks=num_ranks, run_context=ctx)


class Partitioner:
    """A reusable (strategy, config, num_ranks) triple.

    The object form of :func:`partition`, for callers that run the same
    setup against many graphs (the harness, a serving loop) or that want
    :meth:`submit`'s lifecycle control.
    """

    def __init__(
        self,
        strategy: Union[str, Strategy] = "sequential",
        config: ConfigLike = None,
        num_ranks: int = 1,
        **overrides,
    ) -> None:
        self.strategy = get_strategy(strategy)
        self.config = resolve_config(config, **overrides)
        self.num_ranks = int(num_ranks)

    def with_overrides(self, **overrides) -> "Partitioner":
        """A copy with config fields replaced (strategy and ranks kept)."""
        return Partitioner(self.strategy, self.config.with_overrides(**overrides), self.num_ranks)

    def run(
        self,
        graph: Graph,
        observers: Iterable[RunObserver] = (),
        timeout: Optional[float] = None,
    ) -> SBPResult:
        """Run synchronously on ``graph`` and return the result."""
        return self.submit(graph, observers=observers, timeout=timeout).run()

    def submit(
        self,
        graph: Graph,
        observers: Iterable[RunObserver] = (),
        timeout: Optional[float] = None,
    ) -> RunHandle:
        """Create a :class:`RunHandle` for ``graph`` without starting it."""
        return RunHandle(
            self.strategy,
            graph,
            self.config,
            num_ranks=self.num_ranks,
            observers=observers,
            timeout=timeout,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Partitioner(strategy={self.strategy.name!r}, num_ranks={self.num_ranks}, "
            f"config={self.config!r})"
        )
