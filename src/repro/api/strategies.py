"""The built-in strategies: the paper's three algorithms plus the Table VI
reference implementation, registered behind the stable names the facade,
harness, benchmarks, and examples dispatch on.

Each strategy is a thin adapter from the uniform
``run(graph, config, *, num_ranks, run_context)`` protocol onto the core
driver, so the drivers keep their precise internal signatures (initial
blockmodels, rng registries, algorithm labels) while the public surface
stays uniform.  Under a fixed seed a strategy's result is bit-identical to
calling the underlying driver directly — the adapters add no RNG draws and
no algorithmic behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.api.registry import register_strategy
from repro.core.config import SBPConfig
from repro.core.context import RunContext
from repro.core.dcsbp import divide_and_conquer_sbp
from repro.core.edist import edist
from repro.core.reference import reference_dcsbp
from repro.core.results import SBPResult
from repro.core.sbp import stochastic_block_partition
from repro.graphs.graph import Graph

__all__ = [
    "SequentialStrategy",
    "DCSBPStrategy",
    "EDiStStrategy",
    "ReferenceDCSBPStrategy",
]


@register_strategy("sequential", aliases=("sbp",))
class SequentialStrategy:
    """Sequential / shared-memory SBP (the paper's single-node baseline)."""

    name = "sequential"

    def run(
        self,
        graph: Graph,
        config: SBPConfig,
        *,
        num_ranks: int = 1,
        run_context: Optional[RunContext] = None,
    ) -> SBPResult:
        if num_ranks != 1:
            raise ValueError(
                f"the sequential strategy runs on one rank (got num_ranks={num_ranks}); "
                "use 'dcsbp' or 'edist' for distributed runs"
            )
        return stochastic_block_partition(graph, config, run_context=run_context)


@register_strategy("dcsbp")
class DCSBPStrategy:
    """Divide-and-conquer SBP (Uppal et al., paper Alg. 3) over simulated ranks."""

    name = "dcsbp"

    def run(
        self,
        graph: Graph,
        config: SBPConfig,
        *,
        num_ranks: int = 1,
        run_context: Optional[RunContext] = None,
    ) -> SBPResult:
        return divide_and_conquer_sbp(graph, num_ranks, config, run_context=run_context)


@register_strategy("edist")
class EDiStStrategy:
    """EDiSt — exact distributed SBP (the paper's contribution, Algs. 4-5)."""

    name = "edist"

    def run(
        self,
        graph: Graph,
        config: SBPConfig,
        *,
        num_ranks: int = 1,
        run_context: Optional[RunContext] = None,
    ) -> SBPResult:
        return edist(graph, num_ranks, config, run_context=run_context)


@register_strategy("reference_dcsbp", aliases=("reference-dcsbp",))
class ReferenceDCSBPStrategy:
    """DC-SBP with the unoptimised batch-parallel MCMC (paper Table VI)."""

    name = "reference_dcsbp"

    def run(
        self,
        graph: Graph,
        config: SBPConfig,
        *,
        num_ranks: int = 1,
        run_context: Optional[RunContext] = None,
    ) -> SBPResult:
        return reference_dcsbp(graph, num_ranks, config, run_context=run_context)
