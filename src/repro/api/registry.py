"""The strategy registry: one stable dispatch point for every partitioner.

The paper's whole evaluation is a "same algorithm, different distribution
strategy" experiment; the registry makes that the shape of the public API.
A *strategy* is any object implementing the :class:`Strategy` protocol —
``run(graph, config, *, num_ranks, run_context) -> SBPResult`` — registered
under a stable name with :func:`register_strategy`.  The built-in strategies
(``"sequential"``, ``"dcsbp"``, ``"edist"``, ``"reference_dcsbp"``) are
registered by :mod:`repro.api.strategies`; new backends, serving loops, or
experimental variants add a registry entry instead of a fifth bespoke driver
function.

Lookups go through :func:`get_strategy`, which resolves aliases (the legacy
harness spellings ``"sbp"`` and ``"reference-dcsbp"`` remain valid) and
raises a :class:`ValueError` listing the registry on an unknown name —
never a deep, late ``KeyError``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Tuple, Union, runtime_checkable

from repro.core.config import SBPConfig
from repro.core.context import RunContext
from repro.core.results import SBPResult
from repro.graphs.graph import Graph

__all__ = [
    "Strategy",
    "register_strategy",
    "unregister_strategy",
    "get_strategy",
    "available_strategies",
]


@runtime_checkable
class Strategy(Protocol):
    """What the facade requires of a partitioning strategy.

    ``name`` is the canonical registry key; ``run`` executes one partition.
    Strategies must treat ``config`` as the complete parameterisation (no
    hidden state) so that runs are reproducible from ``(graph, config)``
    alone, and must honour the :class:`~repro.core.context.RunContext`
    contract: emit phase-boundary events and stop cooperatively.
    """

    name: str

    def run(
        self,
        graph: Graph,
        config: SBPConfig,
        *,
        num_ranks: int = 1,
        run_context: Optional[RunContext] = None,
    ) -> SBPResult: ...


_STRATEGIES: Dict[str, Strategy] = {}
_ALIASES: Dict[str, str] = {}


def register_strategy(
    name: str,
    *,
    aliases: Tuple[str, ...] = (),
) -> Callable:
    """Class/instance decorator registering a strategy under ``name``.

    Decorating a class instantiates it (strategies are stateless
    dispatchers); decorating an instance registers it as-is.  Re-registering
    a name replaces the previous entry, which lets tests and downstream code
    shadow a built-in.  The decorated object is returned unchanged.
    """

    def _register(obj):
        strategy = obj() if isinstance(obj, type) else obj
        if not callable(getattr(strategy, "run", None)):
            raise TypeError(
                f"strategy {name!r} must provide a callable .run(graph, config, ...) method"
            )
        # Fill in .name only when the strategy doesn't carry one; an object
        # re-registered under a second name keeps its canonical identity
        # (dispatch and result labels stay truthful).
        if getattr(strategy, "name", None) is None:
            strategy.name = name
        _STRATEGIES[name] = strategy
        for alias in aliases:
            _ALIASES[alias] = name
        return obj

    return _register


def unregister_strategy(name: str) -> None:
    """Remove a strategy (and any aliases pointing at it) from the registry."""
    _STRATEGIES.pop(name, None)
    for alias, target in list(_ALIASES.items()):
        if target == name:
            del _ALIASES[alias]


def available_strategies() -> List[str]:
    """Sorted canonical names of every registered strategy."""
    return sorted(_STRATEGIES)


def get_strategy(name: Union[str, Strategy]) -> Strategy:
    """Resolve a strategy name (or alias, or strategy instance) to a strategy.

    Unknown names raise a :class:`ValueError` listing the valid registry
    keys, mirroring the config-time validation of ``mcmc_variant`` and
    ``matrix_backend``.
    """
    if not isinstance(name, str):
        if isinstance(name, Strategy):
            return name
        raise TypeError(f"strategy must be a name or Strategy instance, got {type(name).__name__}")
    canonical = _ALIASES.get(name, name)
    if canonical not in _STRATEGIES:
        raise ValueError(
            f"unknown strategy {name!r}; available strategies: {available_strategies()}"
        )
    return _STRATEGIES[canonical]
