"""repro.api — the unified public API for every partitioning strategy.

The stable surface downstream callers (the harness, benchmarks, examples,
and future serving layers) program against:

* :func:`partition` / :class:`Partitioner` — one entry point dispatching
  through the strategy registry;
* :func:`register_strategy` / :func:`get_strategy` /
  :func:`available_strategies` — the registry itself (new strategies are a
  registry entry, not a new driver function);
* :class:`RunHandle`, :class:`RunObserver`, :class:`RunContext` and the
  event types — the run-lifecycle layer (observer callbacks, wall-clock
  timeouts, cooperative cancellation);
* config presets (:func:`config_preset`, :func:`register_config_preset`,
  :func:`available_presets`) and the serializable
  :class:`SBPConfig` / :class:`SBPResult` pair;
* run metadata (:mod:`repro.registry`): the schema-validated
  :class:`RunRecord` every benchmark appends to the experiment registry,
  :func:`collect_provenance` (git rev + dirty flag + hostname) and the
  registry read-back / aggregation surface (:func:`read_runs`,
  :func:`latest_run`, :func:`summarize`).

Importing this package registers the built-in strategies
(``"sequential"``, ``"dcsbp"``, ``"edist"``, ``"reference_dcsbp"``).
"""

from repro.api.registry import (
    Strategy,
    available_strategies,
    get_strategy,
    register_strategy,
    unregister_strategy,
)
from repro.api import strategies as _builtin_strategies  # noqa: F401 - registers built-ins
from repro.api.handle import RunHandle
from repro.api.facade import ConfigLike, Partitioner, partition, resolve_config
from repro.core.config import (
    SBPConfig,
    available_presets,
    config_preset,
    register_config_preset,
)
from repro.core.context import (
    CycleEvent,
    MCMCSweepEvent,
    MergePhaseEvent,
    RunCancelled,
    RunContext,
    RunObserver,
)
from repro.core.results import SBPResult
from repro.registry import (
    RunRecord,
    append_run,
    collect_provenance,
    latest_run,
    read_runs,
    registry_dir,
    summarize,
)

__all__ = [
    "partition",
    "Partitioner",
    "RunHandle",
    "Strategy",
    "register_strategy",
    "unregister_strategy",
    "get_strategy",
    "available_strategies",
    "resolve_config",
    "ConfigLike",
    "SBPConfig",
    "SBPResult",
    "register_config_preset",
    "config_preset",
    "available_presets",
    "RunContext",
    "RunObserver",
    "RunCancelled",
    "CycleEvent",
    "MergePhaseEvent",
    "MCMCSweepEvent",
    "RunRecord",
    "append_run",
    "read_runs",
    "latest_run",
    "summarize",
    "registry_dir",
    "collect_provenance",
    "Job",
    "JobState",
    "JobExecutor",
    "ProgressSnapshot",
    "ProgressTracker",
    "CheckpointWriter",
    "load_checkpoint",
    "resume_strategy",
    "PartitionService",
    "create_server",
    "service_metrics",
]

# The serving layer builds ON this package (it imports the facade, handle,
# and registry submodules directly), so its client-facing types are pulled
# in at the very end — after everything it depends on exists — to keep the
# import acyclic.
from repro.service import (  # noqa: E402
    CheckpointWriter,
    Job,
    JobExecutor,
    JobState,
    PartitionService,
    ProgressSnapshot,
    ProgressTracker,
    create_server,
    load_checkpoint,
    resume_strategy,
    service_metrics,
)
