"""An in-process, MPI-style communication substrate with pluggable transports.

The paper's algorithms are written against MPI (mpi4py / C++ MPI).  Neither
an MPI runtime nor ``mpi4py`` is available in this environment, so this
package provides a drop-in substitute that preserves the *semantics* the
algorithms rely on — ranks, point-to-point messages, and the collectives
(``barrier``, ``bcast``, ``gather``, ``allgather``, ``alltoall``,
``allreduce``).

Where the ranks physically run is a *transport*, resolved from a registry
(:mod:`repro.mpi.transport`) exactly like partitioning strategies and
matrix backends:

* ``"self"`` — a single rank on the calling thread
  (:class:`~repro.mpi.communicator.SelfCommunicator`); the sequential
  baselines and every ``num_ranks == 1`` launch.
* ``"threads"`` — one Python thread per rank
  (:class:`~repro.mpi.threaded.ThreadCommunicator`); zero startup cost and
  shared objects, but the GIL serialises compute.  The default.
* ``"processes"`` — one OS process per rank
  (:class:`~repro.mpi.processes.ProcessCommunicator`); real CPU
  parallelism, graph arguments mapped once via
  ``multiprocessing.shared_memory``, lifecycle (observers/cancellation)
  bridged to the parent.

All multi-rank communicators share the sequenced-collective implementation
of :class:`~repro.mpi.communicator.SequencedCommunicator`, so under a fixed
seed the transports produce bit-identical results and identical
:class:`~repro.mpi.stats.CommStats` — the cross-transport differential
suite (``tests/differential/test_cross_transport.py``) holds them to it.

:func:`~repro.mpi.launcher.run_distributed` launches a rank function over
``n`` ranks on a chosen transport and returns the per-rank results,
propagating the first rank exception (and aborting the others) on failure.
Per-rank traffic statistics feed the harness's α-β communication cost
model.
"""

from repro.mpi.communicator import (
    Communicator,
    SelfCommunicator,
    SequencedCommunicator,
    ReduceOp,
)
from repro.mpi.stats import CommStats, CommEvent
from repro.mpi.transport import (
    DEFAULT_TIMEOUT,
    DistributedError,
    DistributedResult,
    SelfTransport,
    Transport,
    available_transports,
    get_transport,
    register_transport,
    transport_registry_hint,
    unregister_transport,
)
from repro.mpi.threaded import ThreadCommunicator, ThreadCommWorld, ThreadTransport
from repro.mpi.processes import ProcessCommunicator, ProcessTransport
from repro.mpi.launcher import run_distributed

__all__ = [
    "Communicator",
    "SequencedCommunicator",
    "SelfCommunicator",
    "ThreadCommunicator",
    "ThreadCommWorld",
    "ProcessCommunicator",
    "ReduceOp",
    "CommStats",
    "CommEvent",
    "run_distributed",
    "DistributedError",
    "DistributedResult",
    "DEFAULT_TIMEOUT",
    "Transport",
    "SelfTransport",
    "ThreadTransport",
    "ProcessTransport",
    "register_transport",
    "unregister_transport",
    "get_transport",
    "available_transports",
    "transport_registry_hint",
]
