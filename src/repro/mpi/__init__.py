"""An in-process, MPI-style communication substrate.

The paper's algorithms are written against MPI (mpi4py / C++ MPI).  Neither
an MPI runtime nor ``mpi4py`` is available in this environment, so this
package provides a drop-in substitute that preserves the *semantics* the
algorithms rely on — ranks, point-to-point messages, and the collectives
(``barrier``, ``bcast``, ``gather``, ``allgather``, ``alltoall``,
``allreduce``) — while running every rank inside one Python process.

Two communicator implementations are provided:

* :class:`~repro.mpi.communicator.SelfCommunicator` — a single-rank
  communicator whose collectives are identity operations; used for the
  sequential/shared-memory baselines.
* :class:`~repro.mpi.threaded.ThreadCommunicator` — every rank is a Python
  thread; collectives rendezvous through a shared exchange object.  Although
  thread scheduling is nondeterministic, the algorithm results are
  reproducible because each rank draws from its own seeded random stream and
  every collective returns rank-indexed data, so no outcome depends on
  arrival order.

:func:`~repro.mpi.launcher.run_distributed` launches a rank function over
``n`` ranks and returns the per-rank results, propagating the first rank
exception (and aborting the others) on failure.  Per-rank traffic statistics
(:class:`~repro.mpi.stats.CommStats`) feed the harness's α-β communication
cost model.
"""

from repro.mpi.communicator import Communicator, SelfCommunicator, ReduceOp
from repro.mpi.stats import CommStats, CommEvent
from repro.mpi.threaded import ThreadCommunicator, ThreadCommWorld
from repro.mpi.launcher import run_distributed, DistributedError

__all__ = [
    "Communicator",
    "SelfCommunicator",
    "ThreadCommunicator",
    "ThreadCommWorld",
    "ReduceOp",
    "CommStats",
    "CommEvent",
    "run_distributed",
    "DistributedError",
]
