"""Threaded multi-rank communicator.

Every simulated MPI rank runs on its own Python thread; the communicators
share a :class:`ThreadCommWorld` that implements rendezvous for the
collectives and mailboxes for point-to-point messages.

Collectives are sequenced: every rank's *n*-th collective call matches the
other ranks' *n*-th call, exactly like MPI, so algorithms must issue
collectives in the same order on every rank (the SBP algorithms do).  A
mismatch — e.g. one rank calling ``allgather`` while another calls
``barrier`` — raises instead of deadlocking.

The GIL means the threads do not provide real CPU parallelism; that is fine,
because the simulated communicator exists to exercise the *communication and
convergence* behaviour of the distributed algorithms, while runtime scaling
is assessed with the harness's work/communication model.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.mpi.communicator import ANY_SOURCE, Communicator
from repro.mpi.stats import payload_bytes

__all__ = ["ThreadCommWorld", "ThreadCommunicator"]

_DEFAULT_TIMEOUT = 300.0  # seconds; prevents silent deadlocks in tests


class _Collective:
    """State for one in-flight collective call (identified by sequence no.)."""

    __slots__ = ("name", "slots", "arrived", "done", "consumed")

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.slots: List[Any] = [None] * size
        self.arrived = 0
        self.done = False
        self.consumed = 0


class ThreadCommWorld:
    """Shared state connecting the per-rank :class:`ThreadCommunicator`s."""

    def __init__(self, size: int, timeout: float = _DEFAULT_TIMEOUT) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self.timeout = timeout
        self._lock = threading.Condition()
        self._collectives: Dict[int, _Collective] = {}
        self._mailboxes: Dict[int, List[Tuple[int, int, Any]]] = {r: [] for r in range(size)}
        self._aborted: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def communicators(self) -> List["ThreadCommunicator"]:
        """Create one communicator per rank, all attached to this world."""
        return [ThreadCommunicator(rank, self) for rank in range(self.size)]

    def abort(self, exc: BaseException) -> None:
        """Wake every waiting rank with an error (used when a rank raises)."""
        with self._lock:
            if self._aborted is None:
                self._aborted = exc
            self._lock.notify_all()

    def _check_abort(self) -> None:
        if self._aborted is not None:
            raise RuntimeError(f"distributed run aborted: {self._aborted!r}") from self._aborted

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def exchange(self, seq: int, name: str, rank: int, value: Any) -> List[Any]:
        """Generic all-to-all rendezvous used to build every collective.

        Rank ``rank`` contributes ``value`` to collective number ``seq`` and
        receives the rank-indexed list of all contributions.
        """
        deadline = None
        with self._lock:
            self._check_abort()
            coll = self._collectives.get(seq)
            if coll is None:
                coll = _Collective(name, self.size)
                self._collectives[seq] = coll
            elif coll.name != name:
                exc = RuntimeError(
                    f"collective mismatch at step {seq}: rank {rank} called {name!r} "
                    f"but another rank called {coll.name!r}"
                )
                self._aborted = self._aborted or exc
                self._lock.notify_all()
                raise exc
            coll.slots[rank] = value
            coll.arrived += 1
            if coll.arrived == self.size:
                coll.done = True
                self._lock.notify_all()
            else:
                import time

                deadline = time.monotonic() + self.timeout
                while not coll.done:
                    self._check_abort()
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        exc = RuntimeError(
                            f"collective {name!r} (step {seq}) timed out waiting for peers"
                        )
                        self._aborted = self._aborted or exc
                        self._lock.notify_all()
                        raise exc
                    self._lock.wait(timeout=min(remaining, 0.5))
            result = list(coll.slots)
            coll.consumed += 1
            if coll.consumed == self.size:
                # Everyone has read the result; free the slot.
                del self._collectives[seq]
            return result

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def put(self, dest: int, source: int, tag: int, payload: Any) -> None:
        with self._lock:
            self._check_abort()
            self._mailboxes[dest].append((source, tag, payload))
            self._lock.notify_all()

    def take(self, dest: int, source: int, tag: int) -> Any:
        import time

        deadline = time.monotonic() + self.timeout
        with self._lock:
            while True:
                self._check_abort()
                box = self._mailboxes[dest]
                for idx, (src, msg_tag, payload) in enumerate(box):
                    if (source == ANY_SOURCE or src == source) and msg_tag == tag:
                        box.pop(idx)
                        return payload
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    exc = RuntimeError(
                        f"recv on rank {dest} from {source} (tag {tag}) timed out"
                    )
                    self._aborted = self._aborted or exc
                    self._lock.notify_all()
                    raise exc
                self._lock.wait(timeout=min(remaining, 0.5))


class ThreadCommunicator(Communicator):
    """Per-rank handle onto a :class:`ThreadCommWorld`."""

    def __init__(self, rank: int, world: ThreadCommWorld) -> None:
        super().__init__(rank, world.size)
        self._world = world
        self._seq = 0

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # -- point to point -------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError("destination rank out of range")
        self.stats.record("send", sent=payload_bytes(obj))
        self._world.put(dest, self.rank, tag, obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = 0) -> Any:
        obj = self._world.take(self.rank, source, tag)
        self.stats.record("recv", received=payload_bytes(obj))
        return obj

    # -- collectives ----------------------------------------------------
    def barrier(self) -> None:
        self.stats.record("barrier")
        self._world.exchange(self._next_seq(), "barrier", self.rank, None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        contribution = obj if self.rank == root else None
        values = self._world.exchange(self._next_seq(), "bcast", self.rank, contribution)
        result = values[root]
        nbytes = payload_bytes(result)
        self.stats.record("bcast", sent=nbytes if self.rank == root else 0, received=nbytes)
        return result

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        values = self._world.exchange(self._next_seq(), "gather", self.rank, obj)
        sent = payload_bytes(obj)
        if self.rank == root:
            self.stats.record("gather", sent=sent, received=sum(payload_bytes(v) for v in values))
            return values
        self.stats.record("gather", sent=sent)
        return None

    def allgather(self, obj: Any) -> List[Any]:
        values = self._world.exchange(self._next_seq(), "allgather", self.rank, obj)
        self.stats.record(
            "allgather",
            sent=payload_bytes(obj) * (self.size - 1),
            received=sum(payload_bytes(v) for i, v in enumerate(values) if i != self.rank),
        )
        return values

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        if len(objs) != self.size:
            raise ValueError("alltoall requires exactly one object per rank")
        matrix = self._world.exchange(self._next_seq(), "alltoall", self.rank, list(objs))
        result = [matrix[src][self.rank] for src in range(self.size)]
        self.stats.record(
            "alltoall",
            sent=sum(payload_bytes(o) for i, o in enumerate(objs) if i != self.rank),
            received=sum(payload_bytes(o) for i, o in enumerate(result) if i != self.rank),
        )
        return result

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter requires one object per rank at the root")
            contribution = list(objs)
        else:
            contribution = None
        matrix = self._world.exchange(self._next_seq(), "scatter", self.rank, contribution)
        item = matrix[root][self.rank]
        self.stats.record("scatter", sent=payload_bytes(item) if self.rank == root else 0, received=payload_bytes(item))
        return item
