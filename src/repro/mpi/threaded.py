"""Threaded multi-rank communicator and the ``"threads"`` transport.

Every simulated MPI rank runs on its own Python thread; the communicators
share a :class:`ThreadCommWorld` that implements rendezvous for the
collectives and mailboxes for point-to-point messages.

Collectives are sequenced: every rank's *n*-th collective call matches the
other ranks' *n*-th call, exactly like MPI, so algorithms must issue
collectives in the same order on every rank (the SBP algorithms do).  A
mismatch — e.g. one rank calling ``allgather`` while another calls
``barrier`` — raises instead of deadlocking.

The GIL means the threads do not provide real CPU parallelism; that is fine,
because this transport exists to exercise the *communication and
convergence* behaviour of the distributed algorithms.  For actual multi-core
execution use the ``"processes"`` transport
(:mod:`repro.mpi.processes`), which runs the same rank programs bit-for-bit
identically on one OS process per rank.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.mpi.communicator import ANY_SOURCE, SequencedCommunicator
from repro.mpi.transport import (
    DEFAULT_TIMEOUT,
    DistributedError,
    DistributedResult,
    Transport,
    primary_failures,
    register_transport,
)

__all__ = ["ThreadCommWorld", "ThreadCommunicator", "ThreadTransport"]

#: Backwards-compatible alias; the canonical default lives in
#: :data:`repro.mpi.transport.DEFAULT_TIMEOUT` and is configurable per run
#: via ``run_distributed(..., timeout=...)``.
_DEFAULT_TIMEOUT = DEFAULT_TIMEOUT


class _Collective:
    """State for one in-flight collective call (identified by sequence no.)."""

    __slots__ = ("name", "slots", "arrived", "done", "consumed")

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.slots: List[Any] = [None] * size
        self.arrived = 0
        self.done = False
        self.consumed = 0


class ThreadCommWorld:
    """Shared state connecting the per-rank :class:`ThreadCommunicator`s."""

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self.timeout = timeout
        self._lock = threading.Condition()
        self._collectives: Dict[int, _Collective] = {}
        self._mailboxes: Dict[int, List[Tuple[int, int, Any]]] = {r: [] for r in range(size)}
        self._aborted: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def communicators(self) -> List["ThreadCommunicator"]:
        """Create one communicator per rank, all attached to this world."""
        return [ThreadCommunicator(rank, self) for rank in range(self.size)]

    def abort(self, exc: BaseException) -> None:
        """Wake every waiting rank with an error (used when a rank raises)."""
        with self._lock:
            if self._aborted is None:
                self._aborted = exc
            self._lock.notify_all()

    def _check_abort(self) -> None:
        if self._aborted is not None:
            raise RuntimeError(f"distributed run aborted: {self._aborted!r}") from self._aborted

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def exchange(self, seq: int, name: str, rank: int, value: Any) -> List[Any]:
        """Generic all-to-all rendezvous used to build every collective.

        Rank ``rank`` contributes ``value`` to collective number ``seq`` and
        receives the rank-indexed list of all contributions.
        """
        deadline = None
        with self._lock:
            self._check_abort()
            coll = self._collectives.get(seq)
            if coll is None:
                coll = _Collective(name, self.size)
                self._collectives[seq] = coll
            elif coll.name != name:
                exc = RuntimeError(
                    f"collective mismatch at step {seq}: rank {rank} called {name!r} "
                    f"but another rank called {coll.name!r}"
                )
                self._aborted = self._aborted or exc
                self._lock.notify_all()
                raise exc
            coll.slots[rank] = value
            coll.arrived += 1
            if coll.arrived == self.size:
                coll.done = True
                self._lock.notify_all()
            else:
                import time

                deadline = time.monotonic() + self.timeout
                while not coll.done:
                    self._check_abort()
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        exc = RuntimeError(
                            f"collective {name!r} (step {seq}) timed out waiting for peers"
                        )
                        self._aborted = self._aborted or exc
                        self._lock.notify_all()
                        raise exc
                    self._lock.wait(timeout=min(remaining, 0.5))
            result = list(coll.slots)
            coll.consumed += 1
            if coll.consumed == self.size:
                # Everyone has read the result; free the slot.
                del self._collectives[seq]
            return result

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def put(self, dest: int, source: int, tag: int, payload: Any) -> None:
        with self._lock:
            self._check_abort()
            self._mailboxes[dest].append((source, tag, payload))
            self._lock.notify_all()

    def take(self, dest: int, source: int, tag: int) -> Any:
        import time

        deadline = time.monotonic() + self.timeout
        with self._lock:
            while True:
                self._check_abort()
                box = self._mailboxes[dest]
                for idx, (src, msg_tag, payload) in enumerate(box):
                    if (source == ANY_SOURCE or src == source) and msg_tag == tag:
                        box.pop(idx)
                        return payload
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    exc = RuntimeError(
                        f"recv on rank {dest} from {source} (tag {tag}) timed out"
                    )
                    self._aborted = self._aborted or exc
                    self._lock.notify_all()
                    raise exc
                self._lock.wait(timeout=min(remaining, 0.5))


class ThreadCommunicator(SequencedCommunicator):
    """Per-rank handle onto a :class:`ThreadCommWorld`.

    All collectives (and their statistics accounting) come from
    :class:`~repro.mpi.communicator.SequencedCommunicator`; this class only
    wires the exchange/mailbox primitives to the shared world.
    """

    def __init__(self, rank: int, world: ThreadCommWorld) -> None:
        super().__init__(rank, world.size)
        self._world = world

    def _exchange(self, seq: int, name: str, value: Any) -> List[Any]:
        return self._world.exchange(seq, name, self.rank, value)

    def _put(self, dest: int, tag: int, payload: Any) -> None:
        self._world.put(dest, self.rank, tag, payload)

    def _take(self, source: int, tag: int) -> Any:
        return self._world.take(self.rank, source, tag)


@register_transport("threads")
class ThreadTransport(Transport):
    """One daemon thread per rank inside the calling process.

    Zero startup cost and full visibility into shared objects (observers,
    run contexts, test fixtures are used directly), at the price of no CPU
    parallelism: the GIL serialises the compute phases.  The default
    transport, and the right one for tests and communication-semantics
    work.
    """

    def launch(
        self,
        num_ranks: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> DistributedResult:
        kwargs = dict(kwargs or {})
        world = ThreadCommWorld(num_ranks, timeout=DEFAULT_TIMEOUT if timeout is None else timeout)
        comms = world.communicators()
        results: List[Any] = [None] * num_ranks
        failures: Dict[int, BaseException] = {}
        tracebacks: Dict[int, str] = {}

        def _target(rank: int) -> None:
            try:
                results[rank] = fn(comms[rank], *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - propagate to the launcher
                failures[rank] = exc
                tracebacks[rank] = traceback.format_exc()
                world.abort(exc)

        threads = [
            threading.Thread(target=_target, args=(rank,), name=f"repro-rank-{rank}", daemon=True)
            for rank in range(num_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if failures:
            primary = primary_failures(failures)
            raise DistributedError(primary, {r: tracebacks.get(r, "") for r in primary})
        return DistributedResult(num_ranks, results, [c.stats for c in comms])
