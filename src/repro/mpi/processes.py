"""True multiprocess transport: one OS process per simulated MPI rank.

Unlike the ``"threads"`` transport, ranks here run on separate CPython
interpreters, so the compute phases genuinely execute in parallel on
multi-core machines.  The collectives keep exactly the sequenced-rendezvous
contract of :class:`~repro.mpi.threaded.ThreadCommWorld` — every rank's
*n*-th collective must match its peers' *n*-th; mismatches and timeouts
raise (with the same messages) instead of deadlocking — so any rank program
written against one transport runs unchanged, and bit-identically, on the
other.

Three pieces make that hold across process boundaries:

* :class:`ProcessCommunicator` — a peer-to-peer mailbox scheme over
  ``multiprocessing`` queues.  Each rank owns one inbox for collective
  contributions and one for point-to-point messages; a contribution is
  sent to every peer and buffered by sequence number on arrival, so
  out-of-order delivery cannot corrupt a rendezvous.  All collectives and
  their statistics accounting are inherited from
  :class:`~repro.mpi.communicator.SequencedCommunicator`, which is what
  makes the per-rank :class:`~repro.mpi.stats.CommStats` identical to the
  thread transport's by construction.
* shared-memory graph ingestion — the launcher exports every
  :class:`~repro.graphs.graph.Graph` argument into one
  ``multiprocessing.shared_memory`` segment
  (:func:`repro.graphs.shm.share_graph`) and ships only a tiny
  descriptor; each worker re-attaches the arrays read-only instead of
  receiving its own pickled copy of the edge list.
* a run-context bridge — observers and cancellation state live in the
  parent process.  Worker rank 0's lifecycle calls (``emit_*``,
  ``should_stop``, ``note_search_state``) become synchronous round-trips
  serviced by the parent against the real
  :class:`~repro.core.context.RunContext`, so an observer that cancels
  after the *n*-th event stops a processes run at exactly the same phase
  boundary as a threads run.  Non-root ranks watch a shared stop event —
  never result-affecting, because stop decisions that shape the partition
  are broadcast from rank 0 by the drivers.

Workers are started with the ``fork`` method where available (all POSIX
platforms), so rank programs may be lambdas or closures exactly as with
the thread transport.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import time
import traceback
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.context import RunContext
from repro.mpi.communicator import ANY_SOURCE, SequencedCommunicator
from repro.mpi.stats import CommStats
from repro.mpi.transport import (
    DEFAULT_TIMEOUT,
    DistributedError,
    DistributedResult,
    Transport,
    primary_failures,
    register_transport,
)

__all__ = ["ProcessCommunicator", "ProcessTransport"]


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


# ----------------------------------------------------------------------
# World state shared (by inheritance) between the launcher and the workers
# ----------------------------------------------------------------------
class _ProcessWorld:
    """Queues and flags connecting the launcher with every worker rank."""

    __slots__ = ("size", "timeout", "coll_queues", "p2p_queues", "abort", "result_queue", "bridge")

    def __init__(self, ctx, size: int, timeout: float, bridge: Optional["_ContextBridge"]) -> None:
        self.size = size
        self.timeout = timeout
        #: Rank r's inbox of collective contributions from its peers.
        self.coll_queues = [ctx.Queue() for _ in range(size)]
        #: Rank r's inbox of point-to-point messages.
        self.p2p_queues = [ctx.Queue() for _ in range(size)]
        #: Set by any failing rank; peers waiting on a rendezvous raise.
        self.abort = ctx.Event()
        #: Workers report ``(rank, status, payload, stats, traceback)`` here.
        self.result_queue = ctx.Queue()
        self.bridge = bridge


class _ContextBridge:
    """Parent-side channel carrying worker rank 0's lifecycle traffic."""

    __slots__ = ("requests", "responses", "stop")

    def __init__(self, ctx) -> None:
        self.requests = ctx.Queue()
        self.responses = ctx.Queue()
        #: Mirrors the parent context's stop state for the non-root ranks.
        self.stop = ctx.Event()


class _BridgedContextMarker:
    """Placeholder swapped in for a live RunContext argument.

    A class (not an instance) so that identity survives pickling under
    spawn-based start methods.
    """


# ----------------------------------------------------------------------
# The communicator
# ----------------------------------------------------------------------
class ProcessCommunicator(SequencedCommunicator):
    """Per-rank communicator over the multiprocess queue mailboxes.

    Symmetric peer-to-peer rendezvous: a rank contributes to collective
    ``seq`` by sending ``(seq, name, rank, value)`` to every peer's
    collective inbox and then collecting the ``size - 1`` matching peer
    contributions from its own.  Contributions for *later* sequence numbers
    that arrive early (a fast peer racing ahead) are buffered; a
    contribution carrying a different collective name for the *same*
    sequence number is the mismatch case and raises on both sides.
    """

    def __init__(self, rank: int, world: _ProcessWorld) -> None:
        super().__init__(rank, world.size)
        self._world = world
        #: Contributions for sequence numbers this rank has not reached yet.
        self._coll_buffer: Dict[int, List[Tuple[str, int, Any]]] = {}
        #: Received point-to-point messages not yet matched by a recv.
        self._p2p_stash: List[Tuple[int, int, Any]] = []

    # ------------------------------------------------------------------
    def _check_abort(self) -> None:
        if self._world.abort.is_set():
            raise RuntimeError("distributed run aborted by a failing rank")

    def _fail(self, exc: BaseException) -> None:
        self._world.abort.set()
        raise exc

    # ------------------------------------------------------------------
    def _exchange(self, seq: int, name: str, value: Any) -> List[Any]:
        self._check_abort()
        for peer in range(self.size):
            if peer != self.rank:
                self._world.coll_queues[peer].put((seq, name, self.rank, value))
        slots: List[Any] = [None] * self.size
        slots[self.rank] = value
        have = 1
        # Fold in contributions that arrived before we reached this step.
        for other_name, src, other_value in self._coll_buffer.pop(seq, ()):
            if other_name != name:
                self._fail(RuntimeError(
                    f"collective mismatch at step {seq}: rank {self.rank} called {name!r} "
                    f"but rank {src} called {other_name!r}"
                ))
            slots[src] = other_value
            have += 1
        inbox = self._world.coll_queues[self.rank]
        deadline = time.monotonic() + self._world.timeout
        while have < self.size:
            self._check_abort()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._fail(RuntimeError(
                    f"collective {name!r} (step {seq}) timed out waiting for peers"
                ))
            try:
                msg_seq, msg_name, src, msg_value = inbox.get(timeout=min(remaining, 0.1))
            except queue.Empty:
                continue
            if msg_seq != seq:
                self._coll_buffer.setdefault(msg_seq, []).append((msg_name, src, msg_value))
                continue
            if msg_name != name:
                self._fail(RuntimeError(
                    f"collective mismatch at step {seq}: rank {self.rank} called {name!r} "
                    f"but rank {src} called {msg_name!r}"
                ))
            slots[src] = msg_value
            have += 1
        return slots

    def _put(self, dest: int, tag: int, payload: Any) -> None:
        self._check_abort()
        self._world.p2p_queues[dest].put((self.rank, tag, payload))

    def _take(self, source: int, tag: int) -> Any:
        inbox = self._world.p2p_queues[self.rank]
        deadline = time.monotonic() + self._world.timeout
        while True:
            for idx, (src, msg_tag, _payload) in enumerate(self._p2p_stash):
                if (source == ANY_SOURCE or src == source) and msg_tag == tag:
                    return self._p2p_stash.pop(idx)[2]
            self._check_abort()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._fail(RuntimeError(
                    f"recv on rank {self.rank} from {source} (tag {tag}) timed out"
                ))
            try:
                self._p2p_stash.append(inbox.get(timeout=min(remaining, 0.1)))
            except queue.Empty:
                continue


# ----------------------------------------------------------------------
# Worker-side run contexts
# ----------------------------------------------------------------------
class _BridgedRunContext(RunContext):
    """Worker rank 0's proxy for the parent process's RunContext.

    Every lifecycle call is a synchronous round-trip: the parent services
    it against the real context — running observer callbacks on the
    parent's thread, exactly where the thread transport runs them — and
    the response carries back either an observer exception to re-raise or
    the stop verdict to act on.  The synchrony is what preserves
    bit-identical cancellation: the *n*-th emitted event cancels the run
    at the same phase boundary under both transports.
    """

    def __init__(self, bridge: _ContextBridge, timeout: float) -> None:
        super().__init__()
        self._bridge = bridge
        self._rpc_timeout = timeout
        # The parent context is live by construction (the bridge only
        # exists for live contexts); advertising controllability makes
        # ``live`` — and every silent view's ``live`` — report True.
        self._controllable = True

    def _call(self, method: str, payload: Any) -> Any:
        self._bridge.requests.put((method, payload))
        try:
            status, value = self._bridge.responses.get(timeout=self._rpc_timeout)
        except queue.Empty:
            raise RuntimeError(f"lifecycle call {method!r} got no response from the launcher")
        if status == "err":
            raise value
        return value

    # -- stop state -----------------------------------------------------
    def should_stop(self) -> bool:
        stop, reason = self._call("should_stop", None)
        if stop and self._stop_reason is None:
            self._stop_reason = reason or "cancelled"
        return bool(stop)

    def cancel(self, reason: str = "cancelled") -> None:
        self._call("cancel", reason)
        if self._stop_reason is None:
            self._stop_reason = reason

    # -- event emission -------------------------------------------------
    def note_search_state(self, state: Dict[str, object]) -> None:
        self._call("note_search_state", state)

    def emit_cycle(self, cycle, num_blocks, description_length, mcmc_sweeps, accepted_moves,
                   blockmodel=None) -> None:
        # The live blockmodel cannot cross the process boundary; launcher-side
        # observers receive the event without it (CycleEvent.blockmodel=None).
        self._call("emit_cycle", dict(
            cycle=cycle, num_blocks=num_blocks, description_length=description_length,
            mcmc_sweeps=mcmc_sweeps, accepted_moves=accepted_moves,
        ))

    def emit_merge_phase(self, cycle, num_blocks_before, num_blocks_after, num_merges_requested) -> None:
        self._call("emit_merge_phase", dict(
            cycle=cycle, num_blocks_before=num_blocks_before,
            num_blocks_after=num_blocks_after, num_merges_requested=num_merges_requested,
        ))

    def emit_mcmc_sweep(self, sweep, accepted_moves, proposed_moves, delta_dl) -> None:
        self._call("emit_mcmc_sweep", dict(
            sweep=sweep, accepted_moves=accepted_moves,
            proposed_moves=proposed_moves, delta_dl=delta_dl,
        ))


class _EventRunContext(RunContext):
    """Non-root workers' view of the parent context: a shared stop event.

    Never result-affecting — stop decisions that change the partition are
    broadcast from rank 0 — but it lets a cancelled run's non-root
    subgraph work wind down early instead of running to completion.
    """

    def __init__(self, stop_event) -> None:
        super().__init__()
        self._stop_event = stop_event
        self._controllable = True

    def should_stop(self) -> bool:
        if self._stop_reason is None and self._stop_event.is_set():
            self._stop_reason = "cancelled"
        return self._stop_reason is not None


# ----------------------------------------------------------------------
# Worker entry point
# ----------------------------------------------------------------------
def _resolve_arg(obj: Any, rank: int, world: _ProcessWorld) -> Any:
    from repro.graphs.shm import SharedGraph

    if isinstance(obj, SharedGraph):
        return obj.attach()
    if obj is _BridgedContextMarker:
        if rank == 0:
            return _BridgedRunContext(world.bridge, world.timeout)
        return _EventRunContext(world.bridge.stop)
    return obj


def _ensure_picklable_record(record: tuple) -> tuple:
    """Degrade a result record whose payload cannot cross the process boundary.

    ``mp.Queue`` pickles in a background feeder thread, where an error
    would vanish into stderr and leave the launcher waiting; checking here
    turns an unpicklable result into an explicit per-rank failure instead.
    """
    try:
        pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        return record
    except Exception:
        rank, status, payload, stats, tb = record
        detail = f"{type(payload).__name__}: {payload}"
        if status == "ok":
            error: BaseException = RuntimeError(f"rank {rank} returned an unpicklable result ({detail})")
        else:
            error = RuntimeError(f"rank {rank} failed with an unpicklable exception ({detail})")
        return (rank, "err", error, stats, tb)


def _worker_main(rank: int, world: _ProcessWorld, fn, args, kwargs) -> None:
    comm = ProcessCommunicator(rank, world)
    status, payload, tb = "ok", None, None
    try:
        args = tuple(_resolve_arg(a, rank, world) for a in args)
        kwargs = {k: _resolve_arg(v, rank, world) for k, v in kwargs.items()}
        payload = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - shipped to the launcher
        status, payload, tb = "err", exc, traceback.format_exc()
        world.abort.set()
        # Peers will never read our in-flight collective traffic; don't let
        # the feeder threads block this process's exit on it.
        for q in world.coll_queues + world.p2p_queues:
            q.cancel_join_thread()
    world.result_queue.put(_ensure_picklable_record((rank, status, payload, comm.stats, tb)))


# ----------------------------------------------------------------------
# The transport
# ----------------------------------------------------------------------
@register_transport("processes")
class ProcessTransport(Transport):
    """One OS process per rank: real CPU parallelism for the compute phases.

    Start-up costs a process fork per rank and collective payloads cross
    the kernel (pickled over pipes), so tiny runs are slower than threads;
    on multi-core machines the MCMC/merge compute dominates and this
    transport is the one that actually scales.  Graph arguments travel via
    shared memory (one physical copy for all ranks), and lifecycle state
    (observers, cancellation, timeout) stays in the parent, bridged to the
    workers.
    """

    #: How long the launcher blocks on its service queues per poll.
    _POLL_SECONDS = 0.02

    def launch(
        self,
        num_ranks: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> DistributedResult:
        from repro.graphs.graph import Graph
        from repro.graphs.shm import share_graph

        kwargs = dict(kwargs or {})
        timeout = DEFAULT_TIMEOUT if timeout is None else timeout
        ctx = _mp_context()

        shared_graphs = []
        real_ctx: Optional[RunContext] = None
        bridge: Optional[_ContextBridge] = None

        def _export(obj: Any) -> Any:
            nonlocal real_ctx, bridge
            if isinstance(obj, Graph):
                shared = share_graph(obj)
                shared_graphs.append(shared)
                return shared
            if isinstance(obj, RunContext) and obj.live:
                # One live context per run (the drivers' contract); every
                # occurrence maps onto the same bridge.
                real_ctx = obj
                if bridge is None:
                    bridge = _ContextBridge(ctx)
                return _BridgedContextMarker
            return obj

        args = tuple(_export(a) for a in args)
        kwargs = {k: _export(v) for k, v in kwargs.items()}

        world = _ProcessWorld(ctx, num_ranks, timeout, bridge)
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(rank, world, fn, args, kwargs),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            for rank in range(num_ranks)
        ]
        try:
            for p in procs:
                p.start()
            collected = self._wait(procs, world, real_ctx)
        finally:
            for p in procs:
                if p.is_alive():  # pragma: no cover - only on launcher errors
                    p.terminate()
                p.join()
            for shared in shared_graphs:
                shared.close()

        results: List[Any] = [None] * num_ranks
        stats: List[CommStats] = [CommStats(rank=r) for r in range(num_ranks)]
        failures: Dict[int, BaseException] = {}
        tracebacks: Dict[int, str] = {}
        for rank in range(num_ranks):
            if rank not in collected:
                failures[rank] = RuntimeError(
                    f"rank {rank} process died without reporting a result "
                    f"(exit code {procs[rank].exitcode})"
                )
                continue
            status, payload, rank_stats, tb = collected[rank]
            if rank_stats is not None:
                stats[rank] = rank_stats
            if status == "ok":
                results[rank] = payload
            else:
                failures[rank] = payload
                tracebacks[rank] = tb or ""
        if failures:
            primary = primary_failures(failures)
            raise DistributedError(primary, {r: tracebacks.get(r, "") for r in primary})
        return DistributedResult(num_ranks, results, stats)

    # ------------------------------------------------------------------
    def _wait(self, procs, world: _ProcessWorld, real_ctx: Optional[RunContext]) -> Dict[int, tuple]:
        """Service the lifecycle bridge and collect worker results."""
        bridge = world.bridge
        collected: Dict[int, tuple] = {}
        while True:
            if bridge is not None:
                self._service_bridge(bridge, real_ctx)
                # Mirror the parent's stop state (cancel from a handle,
                # timeout expiry) to the non-root ranks' event contexts.
                if not bridge.stop.is_set() and real_ctx.should_stop():
                    bridge.stop.set()
            try:
                block = self._POLL_SECONDS if bridge is None else 0
                while True:
                    record = world.result_queue.get(timeout=block)
                    collected[record[0]] = record[1:]
                    block = 0
            except queue.Empty:
                pass
            # Once a rank failed (or everyone reported), in-flight traffic
            # has no remaining reader; drain it so no worker's queue feeder
            # blocks that worker's exit on a full pipe.
            if world.abort.is_set() or len(collected) == world.size:
                for q in world.coll_queues + world.p2p_queues:
                    _drain(q)
            if not any(p.is_alive() for p in procs):
                _drain(world.result_queue, into=collected)
                break
        return collected

    def _service_bridge(self, bridge: _ContextBridge, real_ctx: RunContext) -> None:
        """Answer pending lifecycle requests from worker rank 0."""
        while True:
            try:
                method, payload = bridge.requests.get(timeout=self._POLL_SECONDS)
            except queue.Empty:
                return
            try:
                if method == "should_stop":
                    response = ("ok", (real_ctx.should_stop(), real_ctx.stop_reason))
                elif method == "cancel":
                    real_ctx.cancel(payload)
                    response = ("ok", None)
                elif method == "note_search_state":
                    real_ctx.note_search_state(payload)
                    response = ("ok", None)
                else:  # emit_cycle / emit_merge_phase / emit_mcmc_sweep
                    getattr(real_ctx, method)(**payload)
                    response = ("ok", None)
            except BaseException as exc:  # noqa: BLE001 - relayed to the worker
                response = ("err", _picklable_exception(exc))
            bridge.responses.put(response)


def _drain(q, into: Optional[Dict[int, tuple]] = None) -> None:
    try:
        while True:
            item = q.get_nowait()
            if into is not None:
                into[item[0]] = item[1:]
    except queue.Empty:
        pass


def _picklable_exception(exc: BaseException) -> BaseException:
    try:
        pickle.loads(pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")
