"""The communicator interface plus the trivial single-rank implementation.

The interface deliberately mirrors the subset of mpi4py that the paper's
algorithms use (lower-case, pickle-based methods): ``send``/``recv``,
``barrier``, ``bcast``, ``scatter``, ``gather``, ``allgather``, ``alltoall``,
and ``allreduce``.  Any code written against :class:`Communicator` could be
ported to real mpi4py by swapping the object for ``MPI.COMM_WORLD``.
"""

from __future__ import annotations

import abc
from enum import Enum
from typing import Any, Callable, List, Optional, Sequence

from repro.mpi.stats import CommStats, payload_bytes

__all__ = ["ReduceOp", "Communicator", "SequencedCommunicator", "SelfCommunicator", "ANY_SOURCE"]

#: Wildcard source for :meth:`Communicator.recv`.
ANY_SOURCE = -1


class ReduceOp(Enum):
    """Reduction operators supported by :meth:`Communicator.allreduce`."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"
    PROD = "prod"
    LAND = "land"
    LOR = "lor"

    def combine(self, values: Sequence[Any]) -> Any:
        if self is ReduceOp.SUM:
            result = values[0]
            for v in values[1:]:
                result = result + v
            return result
        if self is ReduceOp.MIN:
            return min(values)
        if self is ReduceOp.MAX:
            return max(values)
        if self is ReduceOp.PROD:
            result = values[0]
            for v in values[1:]:
                result = result * v
            return result
        if self is ReduceOp.LAND:
            return all(values)
        if self is ReduceOp.LOR:
            return any(values)
        raise ValueError(f"unsupported reduction {self}")


class Communicator(abc.ABC):
    """Abstract MPI-style communicator over ``size`` ranks."""

    def __init__(self, rank: int, size: int) -> None:
        if size <= 0:
            raise ValueError("communicator size must be positive")
        if not 0 <= rank < size:
            raise ValueError("rank must lie in [0, size)")
        self.rank = int(rank)
        self.size = int(size)
        self.stats = CommStats(rank=rank)

    # -- point to point -------------------------------------------------
    @abc.abstractmethod
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a picklable object to ``dest`` (blocking, buffered)."""

    @abc.abstractmethod
    def recv(self, source: int = ANY_SOURCE, tag: int = 0) -> Any:
        """Receive an object from ``source`` (or any rank)."""

    # -- collectives ----------------------------------------------------
    @abc.abstractmethod
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""

    @abc.abstractmethod
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the value."""

    @abc.abstractmethod
    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank onto ``root`` (others get ``None``)."""

    @abc.abstractmethod
    def allgather(self, obj: Any) -> List[Any]:
        """Gather one object per rank onto every rank (rank-indexed list)."""

    @abc.abstractmethod
    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Personalised exchange: rank ``i`` sends ``objs[j]`` to rank ``j``."""

    @abc.abstractmethod
    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter a ``size``-long sequence from ``root``; returns own item."""

    # -- derived --------------------------------------------------------
    def allreduce(self, value: Any, op: ReduceOp = ReduceOp.SUM) -> Any:
        """Reduce a value across ranks and return the result everywhere."""
        values = self.allgather(value)
        return op.combine(values)

    def reduce(self, value: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0) -> Optional[Any]:
        """Reduce onto ``root`` only."""
        values = self.gather(value, root=root)
        if self.rank != root:
            return None
        return op.combine(values)

    @property
    def is_root(self) -> bool:
        return self.rank == 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(rank={self.rank}, size={self.size})"


class SequencedCommunicator(Communicator):
    """Shared collective implementations over a sequenced exchange primitive.

    Multi-rank communicators differ only in *how* contributions travel
    between ranks, never in what a collective means.  Subclasses therefore
    supply three primitives — the collective rendezvous :meth:`_exchange`
    plus the point-to-point mailbox :meth:`_put`/:meth:`_take` — and
    inherit every collective along with the :class:`CommStats` accounting
    policy.  Keeping the accounting here means every transport reports
    identical statistics for the same rank program by construction, which
    the differential suite asserts for threads vs. processes.

    Collectives are sequenced: the *n*-th collective issued by this rank
    rendezvouses with the peers' *n*-th, exactly like MPI.  ``_exchange``
    implementations must raise (not deadlock) on a name mismatch at the
    same sequence number and on timeout, naming the collective and its
    sequence number.
    """

    def __init__(self, rank: int, size: int) -> None:
        super().__init__(rank, size)
        self._seq = 0

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    # -- transport primitives -------------------------------------------
    @abc.abstractmethod
    def _exchange(self, seq: int, name: str, value: Any) -> List[Any]:
        """Contribute ``value`` to collective ``seq``; return all contributions rank-indexed."""

    @abc.abstractmethod
    def _put(self, dest: int, tag: int, payload: Any) -> None:
        """Deliver a point-to-point payload to ``dest``'s mailbox."""

    @abc.abstractmethod
    def _take(self, source: int, tag: int) -> Any:
        """Take the next matching payload from this rank's mailbox."""

    # -- point to point -------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError("destination rank out of range")
        self.stats.record("send", sent=payload_bytes(obj))
        self._put(dest, tag, obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = 0) -> Any:
        obj = self._take(source, tag)
        self.stats.record("recv", received=payload_bytes(obj))
        return obj

    # -- collectives ----------------------------------------------------
    def barrier(self) -> None:
        self.stats.record("barrier")
        self._exchange(self._next_seq(), "barrier", None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        contribution = obj if self.rank == root else None
        values = self._exchange(self._next_seq(), "bcast", contribution)
        result = values[root]
        nbytes = payload_bytes(result)
        self.stats.record("bcast", sent=nbytes if self.rank == root else 0, received=nbytes)
        return result

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        values = self._exchange(self._next_seq(), "gather", obj)
        sent = payload_bytes(obj)
        if self.rank == root:
            self.stats.record("gather", sent=sent, received=sum(payload_bytes(v) for v in values))
            return values
        self.stats.record("gather", sent=sent)
        return None

    def allgather(self, obj: Any) -> List[Any]:
        values = self._exchange(self._next_seq(), "allgather", obj)
        self.stats.record(
            "allgather",
            sent=payload_bytes(obj) * (self.size - 1),
            received=sum(payload_bytes(v) for i, v in enumerate(values) if i != self.rank),
        )
        return values

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        if len(objs) != self.size:
            raise ValueError("alltoall requires exactly one object per rank")
        matrix = self._exchange(self._next_seq(), "alltoall", list(objs))
        result = [matrix[src][self.rank] for src in range(self.size)]
        self.stats.record(
            "alltoall",
            sent=sum(payload_bytes(o) for i, o in enumerate(objs) if i != self.rank),
            received=sum(payload_bytes(o) for i, o in enumerate(result) if i != self.rank),
        )
        return result

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter requires one object per rank at the root")
            contribution = list(objs)
        else:
            contribution = None
        matrix = self._exchange(self._next_seq(), "scatter", contribution)
        item = matrix[root][self.rank]
        self.stats.record("scatter", sent=payload_bytes(item) if self.rank == root else 0, received=payload_bytes(item))
        return item


class SelfCommunicator(Communicator):
    """A size-1 communicator; every collective is the identity.

    The sequential SBP baseline and every per-rank unit test use this, so the
    same algorithm code runs unchanged with or without distribution.
    """

    def __init__(self) -> None:
        super().__init__(rank=0, size=1)

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        raise RuntimeError("SelfCommunicator has no peers to send to")

    def recv(self, source: int = ANY_SOURCE, tag: int = 0) -> Any:
        raise RuntimeError("SelfCommunicator has no peers to receive from")

    def barrier(self) -> None:
        self.stats.record("barrier")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self.stats.record("bcast")
        return obj

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        self.stats.record("gather", sent=payload_bytes(obj), received=payload_bytes(obj))
        return [obj]

    def allgather(self, obj: Any) -> List[Any]:
        self.stats.record("allgather", sent=payload_bytes(obj), received=payload_bytes(obj))
        return [obj]

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        if len(objs) != 1:
            raise ValueError("alltoall requires exactly one object per rank")
        self.stats.record("alltoall", sent=payload_bytes(objs[0]), received=payload_bytes(objs[0]))
        return [objs[0]]

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        if objs is None or len(objs) != 1:
            raise ValueError("scatter requires exactly one object per rank")
        self.stats.record("scatter")
        return objs[0]
