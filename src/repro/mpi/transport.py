"""The transport protocol and registry behind :func:`run_distributed`.

A *transport* decides where the simulated MPI ranks physically run — on the
calling thread (``"self"``), on Python threads inside this process
(``"threads"``), or on real operating-system processes (``"processes"``).
Every transport hands each rank a :class:`~repro.mpi.communicator.Communicator`
honouring the same sequenced-collective contract, so the rank programs (and
their results, under a fixed seed) are transport-independent; only the
execution substrate changes.

The registry mirrors the strategy registry of :mod:`repro.api` and the
backend registry of :mod:`repro.blockmodel.backend`: implementations are
classes decorated with :func:`register_transport`, lookups go through
:func:`get_transport`, and unknown names raise a :class:`ValueError` listing
the registered transports.  ``SBPConfig.transport`` is validated against
the live registry, never a hard-coded literal set, so downstream code can
plug in new transports (e.g. a real mpi4py bridge) without touching any
dispatch site.

Importing :mod:`repro.mpi` registers the built-in transports
(:class:`SelfTransport` here, ``ThreadTransport`` in
:mod:`repro.mpi.threaded`, ``ProcessTransport`` in
:mod:`repro.mpi.processes`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.mpi.communicator import SelfCommunicator
from repro.mpi.stats import CommStats

__all__ = [
    "DEFAULT_TIMEOUT",
    "DistributedError",
    "DistributedResult",
    "Transport",
    "SelfTransport",
    "register_transport",
    "unregister_transport",
    "get_transport",
    "available_transports",
    "transport_registry_hint",
    "primary_failures",
]

#: Default per-collective/receive timeout (seconds).  Generous enough for
#: any legitimate phase, small enough that a mismatched collective sequence
#: fails a test run instead of hanging it.  Override per run with
#: ``run_distributed(..., timeout=...)``.
DEFAULT_TIMEOUT = 300.0


class DistributedError(RuntimeError):
    """Raised when one or more ranks fail; carries all per-rank exceptions.

    ``failures`` maps rank → the exception object.  ``tracebacks`` maps
    rank → the traceback *formatted where the exception was raised* — on
    the rank's thread, or inside the worker process.  The string is the
    only faithful record across a process boundary (traceback objects do
    not pickle), and even in-process the re-raised aggregate would
    otherwise reduce each rank's failure to ``type: message``.  The
    formatted blocks are appended to the error message so a failing rank's
    stack shows up directly in test output.
    """

    def __init__(
        self,
        failures: Dict[int, BaseException],
        tracebacks: Optional[Dict[int, str]] = None,
    ) -> None:
        self.failures = failures
        self.tracebacks = {r: tb for r, tb in (tracebacks or {}).items() if tb}
        summary = "; ".join(
            f"rank {r}: {type(e).__name__}: {e}" for r, e in sorted(failures.items())
        )
        message = f"{len(failures)} rank(s) failed: {summary}"
        blocks = "".join(
            f"\n--- rank {rank} traceback ---\n{tb.rstrip()}"
            for rank, tb in sorted(self.tracebacks.items())
            if rank in failures
        )
        super().__init__(message + blocks)


@dataclass
class DistributedResult:
    """Results of a simulated distributed run."""

    num_ranks: int
    results: List[Any]
    comm_stats: List[CommStats] = field(default_factory=list)

    @property
    def root_result(self) -> Any:
        return self.results[0]

    def total_comm_stats(self) -> CommStats:
        return CommStats.aggregate(self.comm_stats)


def primary_failures(failures: Dict[int, BaseException]) -> Dict[int, BaseException]:
    """Drop failures that are mere echoes of another rank's abort.

    When one rank raises, the others are woken with a ``RuntimeError``
    mentioning the abort; reporting those secondaries would bury the real
    cause.  If *every* failure is an abort echo (shouldn't happen), keep
    them all rather than raising an empty error.
    """
    primary = {
        r: e
        for r, e in failures.items()
        if not isinstance(e, RuntimeError) or "aborted" not in str(e)
    }
    return primary or failures


class Transport(abc.ABC):
    """Abstract execution substrate for a distributed run.

    Implementations are stateless; one shared instance per registry entry
    launches any number of runs.  ``launch`` must deliver the same
    semantics on every transport: rank-indexed results, per-rank
    :class:`~repro.mpi.stats.CommStats`, and a :class:`DistributedError`
    aggregating every rank's failure (with secondaries from the abort
    cascade filtered out via :func:`primary_failures`).
    """

    #: Registry name, set by :func:`register_transport`.
    name: str = "abstract"

    @abc.abstractmethod
    def launch(
        self,
        num_ranks: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> DistributedResult:
        """Run ``fn(comm, *args, **kwargs)`` on ``num_ranks`` ranks.

        ``timeout`` is the per-collective/receive deadline in seconds
        (``None`` selects :data:`DEFAULT_TIMEOUT`); a rank that waits
        longer than this on a rendezvous fails with an error naming the
        collective and its sequence number.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_TRANSPORTS: Dict[str, Transport] = {}


def register_transport(name: str) -> Callable[[type], type]:
    """Class decorator registering a transport under ``name``.

    The class is instantiated once and the shared instance stored;
    re-registering a name replaces the previous entry (tests and
    downstream code can shadow a built-in).  The class's ``name``
    attribute is set so instances always report their registry identity.
    """

    def _register(cls: type) -> type:
        if not (isinstance(cls, type) and issubclass(cls, Transport)):
            raise TypeError(f"transport {name!r} must be a Transport subclass, got {cls!r}")
        cls.name = str(name)
        _TRANSPORTS[str(name)] = cls()
        return cls

    return _register


def unregister_transport(name: str) -> None:
    """Remove a registered transport (primarily for tests)."""
    _TRANSPORTS.pop(str(name), None)


def available_transports() -> List[str]:
    """Names of every registered transport, in registration order."""
    return list(_TRANSPORTS)


def transport_registry_hint() -> str:
    """Human-readable list of registered transports for error messages."""
    return ", ".join(repr(name) for name in available_transports())


def get_transport(name: Union[str, Transport]) -> Transport:
    """Resolve a transport name to its shared instance.

    :class:`Transport` instances pass through unchanged (mirroring
    ``get_strategy``).  Unknown names raise a :class:`ValueError` listing
    the registry.
    """
    if isinstance(name, Transport):
        return name
    if not isinstance(name, str):
        raise TypeError(f"transport must be a name or Transport instance, got {type(name).__name__}")
    if name not in _TRANSPORTS:
        raise ValueError(
            f"unknown transport {name!r}; registered transports: ({transport_registry_hint()})"
        )
    return _TRANSPORTS[name]


# ----------------------------------------------------------------------
# The trivial single-rank transport
# ----------------------------------------------------------------------
@register_transport("self")
class SelfTransport(Transport):
    """Run the rank program directly on the calling thread (one rank).

    No concurrency machinery at all: the sequential baselines (and every
    ``num_ranks == 1`` launch, whatever transport was requested) go through
    here, so single-rank runs never pay for threads or processes.
    Exceptions propagate raw — with a single rank there is no aggregate to
    build and the caller's traceback is already intact.
    """

    def launch(
        self,
        num_ranks: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> DistributedResult:
        if num_ranks != 1:
            raise ValueError("the 'self' transport runs exactly one rank")
        comm = SelfCommunicator()
        result = fn(comm, *args, **(dict(kwargs or {})))
        return DistributedResult(1, [result], [comm.stats])
