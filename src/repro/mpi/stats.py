"""Per-rank communication accounting.

Every communicator records, for each operation, how many times it was called
and how many payload bytes were moved.  The experiment harness converts these
counts into modelled communication time with an α-β (latency + bandwidth)
cost model, which is how the strong-scaling figures estimate the growing
all-to-all cost that the paper identifies as EDiSt's future bottleneck.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List

__all__ = ["CommEvent", "CommStats", "payload_bytes"]


def payload_bytes(obj: Any) -> int:
    """Approximate the wire size of a Python payload via its pickle length.

    NumPy arrays and other buffer objects pickle to roughly their raw size,
    which is a good stand-in for what an MPI implementation would send.
    """
    if obj is None:
        return 0
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


@dataclass
class CommEvent:
    """One communication call made by one rank."""

    operation: str
    bytes_sent: int
    bytes_received: int


@dataclass
class CommStats:
    """Aggregated communication counters for a single rank."""

    rank: int = 0
    calls: Dict[str, int] = field(default_factory=dict)
    bytes_sent: Dict[str, int] = field(default_factory=dict)
    bytes_received: Dict[str, int] = field(default_factory=dict)
    events: List[CommEvent] = field(default_factory=list)
    record_events: bool = False

    def record(self, operation: str, sent: int = 0, received: int = 0) -> None:
        self.calls[operation] = self.calls.get(operation, 0) + 1
        self.bytes_sent[operation] = self.bytes_sent.get(operation, 0) + int(sent)
        self.bytes_received[operation] = self.bytes_received.get(operation, 0) + int(received)
        if self.record_events:
            self.events.append(CommEvent(operation, int(sent), int(received)))

    @property
    def total_calls(self) -> int:
        return sum(self.calls.values())

    @property
    def total_bytes_sent(self) -> int:
        return sum(self.bytes_sent.values())

    @property
    def total_bytes_received(self) -> int:
        return sum(self.bytes_received.values())

    def merge(self, other: "CommStats") -> "CommStats":
        """Accumulate another rank's counters into this one (in place)."""
        for op, count in other.calls.items():
            self.calls[op] = self.calls.get(op, 0) + count
        for op, nbytes in other.bytes_sent.items():
            self.bytes_sent[op] = self.bytes_sent.get(op, 0) + nbytes
        for op, nbytes in other.bytes_received.items():
            self.bytes_received[op] = self.bytes_received.get(op, 0) + nbytes
        return self

    @classmethod
    def aggregate(cls, stats: Iterable["CommStats"]) -> "CommStats":
        """Sum a collection of per-rank stats into a single totals object."""
        total = cls(rank=-1)
        for s in stats:
            total.merge(s)
        return total

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        return {
            "calls": dict(self.calls),
            "bytes_sent": dict(self.bytes_sent),
            "bytes_received": dict(self.bytes_received),
        }

    def to_dict(self) -> Dict[str, object]:
        """Full JSON-ready snapshot; inverse of :meth:`from_dict`.

        Unlike :meth:`as_dict` (counters only, kept for the runtime model),
        this includes the rank and any recorded per-call events, so a
        persisted :class:`~repro.core.results.SBPResult` round-trips its
        communication accounting exactly.
        """
        out: Dict[str, object] = {"rank": self.rank, **self.as_dict()}
        if self.events:
            out["events"] = [
                {"operation": e.operation, "bytes_sent": e.bytes_sent, "bytes_received": e.bytes_received}
                for e in self.events
            ]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CommStats":
        """Rebuild stats from :meth:`to_dict` output."""
        return cls(
            rank=int(data.get("rank", 0)),
            calls={str(k): int(v) for k, v in dict(data.get("calls", {})).items()},
            bytes_sent={str(k): int(v) for k, v in dict(data.get("bytes_sent", {})).items()},
            bytes_received={str(k): int(v) for k, v in dict(data.get("bytes_received", {})).items()},
            events=[
                CommEvent(str(e["operation"]), int(e["bytes_sent"]), int(e["bytes_received"]))
                for e in data.get("events", [])
            ],
        )
