"""Launch a rank function across simulated MPI ranks.

:func:`run_distributed` is the in-process equivalent of ``mpiexec -n N``:
it resolves a :class:`~repro.mpi.transport.Transport` from the registry,
hands each rank a :class:`~repro.mpi.communicator.Communicator`, runs the
supplied function on every rank, and returns the per-rank results.

``DistributedResult`` and ``DistributedError`` are re-exported here for
backwards compatibility; they live in :mod:`repro.mpi.transport`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

# Importing these modules registers the built-in transports.
from repro.mpi import processes as _processes  # noqa: F401
from repro.mpi import threaded as _threaded  # noqa: F401
from repro.mpi.transport import (
    DistributedError,
    DistributedResult,
    Transport,
    get_transport,
)

__all__ = ["run_distributed", "DistributedResult", "DistributedError"]


def run_distributed(
    num_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    transport: Optional[Union[str, Transport]] = None,
    timeout: Optional[float] = None,
    **kwargs: Any,
) -> DistributedResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``num_ranks`` simulated ranks.

    Parameters
    ----------
    num_ranks:
        Number of simulated MPI ranks.  ``1`` always runs on the calling
        thread (the ``"self"`` transport), whatever ``transport`` says —
        single-rank runs never pay for threads or processes.
    fn:
        The rank program.  Its first positional argument is the rank's
        :class:`~repro.mpi.communicator.Communicator`.
    transport:
        Registered transport name (``"threads"``, ``"processes"``, …) or a
        :class:`~repro.mpi.transport.Transport` instance; ``None`` selects
        ``"threads"``.  Unknown names raise a :class:`ValueError` listing
        the registry.
    timeout:
        Per-collective/receive timeout in seconds (guards against
        deadlocks caused by mismatched collective sequences); a rank that
        trips it fails with an error naming the collective and its
        sequence number.  ``None`` selects
        :data:`~repro.mpi.transport.DEFAULT_TIMEOUT`.

    Returns
    -------
    DistributedResult
        Per-rank return values (rank-indexed) plus per-rank communication
        statistics.

    Raises
    ------
    DistributedError
        If any rank raises on a multi-rank run; the error aggregates every
        rank's exception and formatted traceback.  Single-rank runs
        propagate the exception raw.
    """
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    # Validate the requested transport even when the single-rank shortcut
    # makes it moot, so a typo fails loudly at every rank count.
    selected = get_transport(transport) if transport is not None else get_transport("threads")
    if num_ranks == 1:
        selected = get_transport("self")
    return selected.launch(num_ranks, fn, args, kwargs, timeout=timeout)
