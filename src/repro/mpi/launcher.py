"""Launch a rank function across simulated MPI ranks.

:func:`run_distributed` is the in-process equivalent of ``mpiexec -n N``:
it spawns one thread per rank, hands each a :class:`ThreadCommunicator`
(or a :class:`SelfCommunicator` for ``N == 1``), runs the supplied function,
and returns the per-rank results.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.mpi.communicator import Communicator, SelfCommunicator
from repro.mpi.stats import CommStats
from repro.mpi.threaded import ThreadCommWorld

__all__ = ["run_distributed", "DistributedResult", "DistributedError"]


class DistributedError(RuntimeError):
    """Raised when one or more ranks fail; carries all per-rank exceptions."""

    def __init__(self, failures: Dict[int, BaseException]) -> None:
        self.failures = failures
        summary = "; ".join(f"rank {r}: {type(e).__name__}: {e}" for r, e in sorted(failures.items()))
        super().__init__(f"{len(failures)} rank(s) failed: {summary}")


@dataclass
class DistributedResult:
    """Results of a simulated distributed run."""

    num_ranks: int
    results: List[Any]
    comm_stats: List[CommStats] = field(default_factory=list)

    @property
    def root_result(self) -> Any:
        return self.results[0]

    def total_comm_stats(self) -> CommStats:
        return CommStats.aggregate(self.comm_stats)


def run_distributed(
    num_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 600.0,
    **kwargs: Any,
) -> DistributedResult:
    """Run ``fn(comm, *args, **kwargs)`` on ``num_ranks`` simulated ranks.

    Parameters
    ----------
    num_ranks:
        Number of simulated MPI ranks.  ``1`` avoids threads entirely.
    fn:
        The rank program.  Its first positional argument is the rank's
        :class:`Communicator`.
    timeout:
        Per-collective/receive timeout in seconds (guards against deadlocks
        caused by mismatched collective sequences).

    Returns
    -------
    DistributedResult
        Per-rank return values (rank-indexed) plus per-rank communication
        statistics.

    Raises
    ------
    DistributedError
        If any rank raises; the error aggregates every rank's exception.
    """
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")

    if num_ranks == 1:
        comm = SelfCommunicator()
        result = fn(comm, *args, **kwargs)
        return DistributedResult(1, [result], [comm.stats])

    world = ThreadCommWorld(num_ranks, timeout=timeout)
    comms = world.communicators()
    results: List[Any] = [None] * num_ranks
    failures: Dict[int, BaseException] = {}

    def _target(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - propagate to the launcher
            failures[rank] = exc
            world.abort(exc)

    threads = [
        threading.Thread(target=_target, args=(rank,), name=f"repro-rank-{rank}", daemon=True)
        for rank in range(num_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        # Ranks that died only because the world was aborted are secondary;
        # keep the original failures first for a readable error.
        primary = {
            r: e for r, e in failures.items() if not isinstance(e, RuntimeError) or "aborted" not in str(e)
        }
        raise DistributedError(primary or failures)

    return DistributedResult(num_ranks, results, [c.stats for c in comms])
