"""The degree-corrected SBM state: assignment, block matrix, block degrees.

A :class:`Blockmodel` couples a graph with a vertex-to-block assignment and
maintains, incrementally, everything the SBP inner loops need:

* the sparse block matrix ``M`` (and its transpose) of inter-block edge
  counts,
* per-block weighted out-/in-degrees,
* per-block vertex counts.

Vertex moves are applied in place via :meth:`move_vertex`; block merges are
applied by relabelling the assignment and rebuilding
(:meth:`from_assignment`), mirroring how the reference SBP implementations
rebuild the model between phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.blockmodel.backend import BlockMatrixBackend, available_backends, get_backend

# Importing the implementation modules populates the backend registry.
from repro.blockmodel.csr_matrix import CSRBlockMatrix  # noqa: F401
from repro.blockmodel.sparse_matrix import SparseBlockMatrix  # noqa: F401
from repro.blockmodel.sparse_csr_matrix import SparseCSRBlockMatrix  # noqa: F401
from repro.blockmodel import entropy as entropy_mod
from repro.graphs.graph import Graph

__all__ = ["VertexBlockCounts", "Blockmodel", "MATRIX_BACKENDS"]

#: Import-time snapshot of the registered storage backends (``"dict"`` is
#: the hash-map reference, ``"csr"`` the dense vectorized array,
#: ``"sparse_csr"`` the scipy-free true-sparse representation).  Kept for
#: test parametrization and documentation; *validation* always consults the
#: live registry (:func:`repro.blockmodel.backend.available_backends`) so
#: backends registered after import are accepted everywhere.
MATRIX_BACKENDS = tuple(available_backends())


@dataclass
class VertexBlockCounts:
    """Edge weights from/to one vertex, grouped by the neighbours' blocks.

    ``out_counts[b]`` is the total weight of edges ``v → u`` with ``u ≠ v``
    assigned to block ``b``; ``in_counts[b]`` the same for edges ``u → v``.
    Self-loops are tracked separately because they stay within the vertex's
    own block before and after a move.
    """

    out_counts: Dict[int, int]
    in_counts: Dict[int, int]
    self_loop: int = 0

    @property
    def out_total(self) -> int:
        return sum(self.out_counts.values()) + self.self_loop

    @property
    def in_total(self) -> int:
        return sum(self.in_counts.values()) + self.self_loop


class Blockmodel:
    """Mutable DCSBM state over a fixed graph."""

    __slots__ = (
        "graph",
        "assignment",
        "num_blocks",
        "matrix",
        "block_out_degrees",
        "block_in_degrees",
        "block_sizes",
    )

    def __init__(
        self,
        graph: Graph,
        assignment: np.ndarray,
        num_blocks: int,
        matrix: BlockMatrixBackend,
        block_out_degrees: np.ndarray,
        block_in_degrees: np.ndarray,
        block_sizes: np.ndarray,
    ) -> None:
        self.graph = graph
        self.assignment = assignment
        self.num_blocks = int(num_blocks)
        self.matrix = matrix
        self.block_out_degrees = block_out_degrees
        self.block_in_degrees = block_in_degrees
        self.block_sizes = block_sizes

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        num_blocks: Optional[int] = None,
        matrix_backend: str = "dict",
    ) -> "Blockmodel":
        """Initial blockmodel: every vertex in its own block (the SBP start).

        Passing ``num_blocks`` smaller than ``graph.num_vertices`` assigns
        vertices round-robin to that many blocks instead (useful for tests
        and for building models at a prescribed granularity).
        ``matrix_backend`` selects the block matrix storage (see
        :data:`MATRIX_BACKENDS`); rebuilds triggered by merges preserve it.
        """
        if num_blocks is None or num_blocks >= graph.num_vertices:
            assignment = np.arange(graph.num_vertices, dtype=np.int64)
            num_blocks = graph.num_vertices
        else:
            assignment = np.arange(graph.num_vertices, dtype=np.int64) % num_blocks
        return cls.from_assignment(graph, assignment, num_blocks, matrix_backend=matrix_backend)

    @classmethod
    def from_assignment(
        cls,
        graph: Graph,
        assignment: Sequence[int] | np.ndarray,
        num_blocks: Optional[int] = None,
        relabel: bool = False,
        matrix_backend: str = "dict",
    ) -> "Blockmodel":
        """Build the block matrix and degrees for a given assignment.

        Parameters
        ----------
        relabel:
            If ``True``, block labels are first compacted to ``0..B-1``
            preserving order of first appearance by label value (i.e. the
            sorted unique labels are mapped to consecutive integers).
        matrix_backend:
            Block matrix storage, resolved against the backend registry
            (:func:`repro.blockmodel.backend.get_backend`): ``"dict"``
            (hash maps, the reference), ``"csr"`` (dense numpy arrays with
            cached marginals) or ``"sparse_csr"`` (scipy-free CSR/COO, no
            dense memory bound).
        """
        backend_cls = get_backend(matrix_backend)  # ValueError lists the registry
        assignment = np.asarray(assignment, dtype=np.int64).copy()
        if assignment.shape != (graph.num_vertices,):
            raise ValueError("assignment must label every vertex")
        if relabel:
            _, assignment = np.unique(assignment, return_inverse=True)
            assignment = assignment.astype(np.int64)
        if num_blocks is None:
            num_blocks = int(assignment.max()) + 1 if assignment.size else 0
        if assignment.size and (assignment.min() < 0 or assignment.max() >= num_blocks):
            raise ValueError("assignment labels must lie in [0, num_blocks)")

        src, dst, w = graph.edge_arrays()
        bsrc = assignment[src]
        bdst = assignment[dst]
        matrix = backend_cls.from_block_edges(num_blocks, bsrc, bdst, w)

        block_out = np.zeros(num_blocks, dtype=np.int64)
        block_in = np.zeros(num_blocks, dtype=np.int64)
        if src.size:
            np.add.at(block_out, bsrc, w)
            np.add.at(block_in, bdst, w)
        sizes = np.bincount(assignment, minlength=num_blocks).astype(np.int64)
        return cls(graph, assignment, num_blocks, matrix, block_out, block_in, sizes)

    def refresh_derived_state(self) -> None:
        """Recompute matrix, block degrees and sizes from the assignment.

        Used by the vectorized sweep path after editing ``assignment``
        directly: the derived state is a pure function of the assignment, so
        one vectorized rebuild replaces many per-move incremental updates.
        The storage backend is preserved.
        """
        rebuilt = Blockmodel.from_assignment(
            self.graph, self.assignment, self.num_blocks, matrix_backend=self.matrix_backend
        )
        self.matrix = rebuilt.matrix
        self.block_out_degrees = rebuilt.block_out_degrees
        self.block_in_degrees = rebuilt.block_in_degrees
        self.block_sizes = rebuilt.block_sizes

    def copy(self) -> "Blockmodel":
        """Deep copy (graph is shared; all mutable state is duplicated)."""
        return Blockmodel(
            self.graph,
            self.assignment.copy(),
            self.num_blocks,
            self.matrix.copy(),
            self.block_out_degrees.copy(),
            self.block_in_degrees.copy(),
            self.block_sizes.copy(),
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def block_total_degrees(self) -> np.ndarray:
        return self.block_out_degrees + self.block_in_degrees

    @property
    def matrix_backend(self) -> str:
        """Registry name of the block matrix storage backend."""
        return getattr(self.matrix, "backend", "dict")

    def block_of(self, v: int) -> int:
        return int(self.assignment[v])

    def nonempty_blocks(self) -> np.ndarray:
        return np.flatnonzero(self.block_sizes > 0)

    def num_nonempty_blocks(self) -> int:
        return int(np.count_nonzero(self.block_sizes > 0))

    # ------------------------------------------------------------------
    # Description length
    # ------------------------------------------------------------------
    def description_length(self) -> float:
        """Exact DL (Eq. 2) of the current state."""
        return entropy_mod.description_length(self)

    def log_likelihood(self) -> float:
        return entropy_mod.log_likelihood(self)

    def normalized_description_length(self) -> float:
        return entropy_mod.normalized_description_length(self.description_length(), self.graph)

    # ------------------------------------------------------------------
    # Vertex moves
    # ------------------------------------------------------------------
    def vertex_block_counts(self, v: int) -> VertexBlockCounts:
        """Group vertex ``v``'s edges by the current block of each neighbour."""
        out_counts: Dict[int, int] = {}
        in_counts: Dict[int, int] = {}
        self_loop = 0
        graph = self.graph
        assignment = self.assignment
        for u, w in zip(graph.out_neighbors(v).tolist(), graph.out_weights(v).tolist()):
            if u == v:
                self_loop += w
            else:
                b = int(assignment[u])
                out_counts[b] = out_counts.get(b, 0) + w
        for u, w in zip(graph.in_neighbors(v).tolist(), graph.in_weights(v).tolist()):
            if u == v:
                continue  # already counted as the self-loop above
            b = int(assignment[u])
            in_counts[b] = in_counts.get(b, 0) + w
        return VertexBlockCounts(out_counts, in_counts, self_loop)

    def move_vertex(self, v: int, to_block: int, counts: Optional[VertexBlockCounts] = None) -> None:
        """Move vertex ``v`` to ``to_block`` and update all derived state.

        ``counts`` may be supplied when the caller already computed
        :meth:`vertex_block_counts` for the proposal evaluation; it must
        reflect the *current* assignment.
        """
        from_block = int(self.assignment[v])
        to_block = int(to_block)
        if to_block < 0 or to_block >= self.num_blocks:
            raise ValueError(f"target block {to_block} out of range [0, {self.num_blocks})")
        if from_block == to_block:
            return
        if counts is None:
            counts = self.vertex_block_counts(v)

        matrix = self.matrix
        if getattr(matrix, "supports_batched_kernels", False):
            # Batched scatter-add: one numpy call instead of 2×(deg) scalar adds.
            rows: list = []
            cols: list = []
            deltas: list = []
            for b, w in counts.out_counts.items():
                rows += (from_block, to_block)
                cols += (b, b)
                deltas += (-w, w)
            for b, w in counts.in_counts.items():
                rows += (b, b)
                cols += (from_block, to_block)
                deltas += (-w, w)
            if counts.self_loop:
                rows += (from_block, to_block)
                cols += (from_block, to_block)
                deltas += (-counts.self_loop, counts.self_loop)
            if rows:
                matrix.add_many(
                    np.asarray(rows, dtype=np.int64),
                    np.asarray(cols, dtype=np.int64),
                    np.asarray(deltas, dtype=np.int64),
                )
        else:
            for b, w in counts.out_counts.items():
                matrix.add(from_block, b, -w)
                matrix.add(to_block, b, w)
            for b, w in counts.in_counts.items():
                matrix.add(b, from_block, -w)
                matrix.add(b, to_block, w)
            if counts.self_loop:
                matrix.add(from_block, from_block, -counts.self_loop)
                matrix.add(to_block, to_block, counts.self_loop)

        out_total = counts.out_total
        in_total = counts.in_total
        self.block_out_degrees[from_block] -= out_total
        self.block_out_degrees[to_block] += out_total
        self.block_in_degrees[from_block] -= in_total
        self.block_in_degrees[to_block] += in_total
        self.block_sizes[from_block] -= 1
        self.block_sizes[to_block] += 1
        self.assignment[v] = to_block

    # ------------------------------------------------------------------
    # Block merges
    # ------------------------------------------------------------------
    def apply_block_merges(self, merge_target: np.ndarray) -> "Blockmodel":
        """Apply a merge mapping and return the rebuilt, relabelled model.

        ``merge_target[b]`` is the (old-label) block that block ``b`` should
        be merged into; non-merged blocks map to themselves.  Chains are
        resolved (if ``a → b`` and ``b → c`` then ``a → c``).
        """
        merge_target = np.asarray(merge_target, dtype=np.int64)
        if merge_target.shape != (self.num_blocks,):
            raise ValueError("merge_target must have one entry per block")
        resolved = resolve_merge_chain(merge_target)
        new_assignment = resolved[self.assignment]
        return Blockmodel.from_assignment(
            self.graph, new_assignment, relabel=True, matrix_backend=self.matrix_backend
        )

    # ------------------------------------------------------------------
    # Sampling helpers used by the MCMC proposal distribution
    # ------------------------------------------------------------------
    def sample_neighbor_block(
        self, block: int, rng: np.random.Generator, cumsum_cache: Optional[Dict] = None
    ) -> int:
        """Sample a block adjacent to ``block`` ∝ its edge multiplicities.

        Considers both out-edges (row) and in-edges (column) of ``block``.
        Returns ``-1`` if ``block`` has no incident edges.  Entries are
        scanned in ascending block order for both storage backends, so a
        given RNG draw selects the same block regardless of backend.

        ``cumsum_cache`` (array backends only) memoizes the per-block
        cumulative sums across calls; callers that sample the same blocks
        many times while the blockmodel is *frozen* — the merge-proposal
        loop — pass a dict they own.  Caching changes neither the RNG
        consumption nor the result.
        """
        total = int(self.block_out_degrees[block]) + int(self.block_in_degrees[block])
        if total <= 0:
            return -1
        target = int(rng.integers(0, total))
        matrix = self.matrix
        if getattr(matrix, "supports_batched_kernels", False):
            # Array backends: cumulative-sum search over the row's non-zero
            # entries, then (for draws beyond the row total) over the
            # column's.  Searching the sparse cumulative sums selects the
            # same block as the dense-row search used previously: the dense
            # cumsum is flat across zero entries, so ``side="right"`` lands
            # on exactly the non-zero entry whose partial sum first exceeds
            # the target.
            row_total = matrix.row_sum(block)
            if target < row_total:
                key = ("row", block)
                cached = cumsum_cache.get(key) if cumsum_cache is not None else None
                if cached is None:
                    idx, vals = matrix.row_entries(block)
                    cached = (np.cumsum(vals), idx)
                    if cumsum_cache is not None:
                        cumsum_cache[key] = cached
                cum, idx = cached
                return int(idx[np.searchsorted(cum, target, side="right")])
            key = ("col", block)
            cached = cumsum_cache.get(key) if cumsum_cache is not None else None
            if cached is None:
                idx, vals = matrix.col_entries(block)
                cached = (np.cumsum(vals), idx)
                if cumsum_cache is not None:
                    cumsum_cache[key] = cached
            cum, idx = cached
            return int(idx[np.searchsorted(cum, target - row_total, side="right")])
        row = matrix.row(block)
        col = matrix.col(block)
        acc = 0
        for j in sorted(row):
            acc += row[j]
            if target < acc:
                return int(j)
        for i in sorted(col):
            acc += col[i]
            if target < acc:
                return int(i)
        # Numerical safety: should not happen because degrees equal the sums.
        return int(min(row) if row else min(col))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Verify matrix/degrees/sizes against a from-scratch rebuild.

        Raises ``AssertionError`` on any mismatch.  Used by the test suite
        and by the distributed algorithms' debug mode to confirm that
        incremental updates and blockmodel synchronisation preserved the
        invariants.
        """
        rebuilt = Blockmodel.from_assignment(
            self.graph, self.assignment, self.num_blocks, matrix_backend=self.matrix_backend
        )
        self.matrix.check_consistent()
        if self.matrix != rebuilt.matrix:
            raise AssertionError("block matrix out of sync with assignment")
        if not np.array_equal(self.block_out_degrees, rebuilt.block_out_degrees):
            raise AssertionError("block out-degrees out of sync")
        if not np.array_equal(self.block_in_degrees, rebuilt.block_in_degrees):
            raise AssertionError("block in-degrees out of sync")
        if not np.array_equal(self.block_sizes, rebuilt.block_sizes):
            raise AssertionError("block sizes out of sync")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Blockmodel(V={self.num_vertices}, E={self.num_edges}, "
            f"B={self.num_blocks}, nonempty={self.num_nonempty_blocks()})"
        )


def resolve_merge_chain(merge_target: np.ndarray) -> np.ndarray:
    """Resolve chained merge targets so every block maps to a terminal block.

    This is the pointer-chasing counterpart of the paper's "pointer-based
    scheme to keep track of the community merges" (optimisation (d)): when
    block ``a`` merges into ``b`` and ``b`` later merges into ``c``, block
    ``a`` must end up in ``c``.  Cycles (``a → b → a``) are collapsed onto
    the smallest label in the cycle.  The result is a fixpoint: every
    resolved target maps to itself.
    """
    merge_target = np.asarray(merge_target, dtype=np.int64).copy()
    for b in range(merge_target.shape[0]):
        path = []
        on_path = set()
        target = int(b)
        while merge_target[target] != target and target not in on_path:
            path.append(target)
            on_path.add(target)
            target = int(merge_target[target])
        if merge_target[target] != target:
            # ``target`` re-entered the current path: it is the cycle entry.
            cycle = [target]
            node = int(merge_target[target])
            while node != target:
                cycle.append(node)
                node = int(merge_target[node])
            target = min(cycle)
            merge_target[target] = target
        # Path compression: everything chased points straight at the terminal,
        # so later look-ups stay consistent and terminal blocks never move.
        for node in path:
            merge_target[node] = target
    return merge_target
