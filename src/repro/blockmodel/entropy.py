"""Description length of the degree-corrected SBM (paper Eqs. 1 and 2).

The SBP objective is the description length

.. math::

    DL = E\\,h\\!\\left(\\frac{C^2}{E}\\right) + V \\log C - L(G|B),

where :math:`h(x) = (1+x)\\log(1+x) - x\\log x` and the degree-corrected
log-likelihood is

.. math::

    L(G|B) = \\sum_{i,j} B_{ij} \\log \\frac{B_{ij}}{d^{out}_i d^{in}_j}.

``description_length`` recomputes DL exactly from a :class:`Blockmodel`;
:mod:`repro.blockmodel.deltas` provides the sparse delta forms used inside
the MCMC and block-merge loops.  The normalised description length
``DL / DL_null`` (Section V-E) is used to evaluate real-world graphs that
have no ground truth.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.blockmodel.blockmodel import Blockmodel
    from repro.graphs.graph import Graph

__all__ = [
    "h_function",
    "log_likelihood",
    "blockmodel_entropy_term",
    "model_complexity_term",
    "description_length",
    "null_description_length",
    "normalized_description_length",
]


def h_function(x: float) -> float:
    """The binary-entropy-like function ``h(x) = (1+x)log(1+x) − x·log x``.

    ``h(0) = 0`` by continuity.
    """
    if x < 0:
        raise ValueError("h(x) is only defined for x >= 0")
    if x == 0:
        return 0.0
    return (1.0 + x) * math.log(1.0 + x) - x * math.log(x)


def log_likelihood(blockmodel: "Blockmodel") -> float:
    """Degree-corrected log-likelihood ``L(G|B)`` of Eq. (1).

    Entries with ``B_ij = 0`` contribute nothing; blocks with zero in- or
    out-degree cannot have incident edges, so no division by zero arises.
    """
    d_out = blockmodel.block_out_degrees
    d_in = blockmodel.block_in_degrees
    matrix = blockmodel.matrix
    if hasattr(matrix, "nonzero_arrays"):
        # Array backend: one vectorized pass over the non-zero entries.
        i, j, v = matrix.nonzero_arrays()
        if v.size == 0:
            return 0.0
        denom = d_out[i].astype(np.float64) * d_in[j].astype(np.float64)
        return float(np.sum(v * np.log(v / denom)))
    total = 0.0
    for i, j, value in matrix.entries():
        denom = float(d_out[i]) * float(d_in[j])
        total += value * math.log(value / denom)
    return total


def blockmodel_entropy_term(blockmodel: "Blockmodel") -> float:
    """``−L(G|B)``, the data term of the description length."""
    return -log_likelihood(blockmodel)


def model_complexity_term(num_vertices: int, num_edges: int, num_blocks: int) -> float:
    """The model term ``E·h(C²/E) + V·log C`` of Eq. (2).

    With no edges the model term is just the assignment cost ``V log C``;
    with a single block both costs degenerate gracefully.
    """
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    term = num_vertices * math.log(num_blocks) if num_blocks > 0 else 0.0
    if num_edges > 0:
        term += num_edges * h_function((num_blocks * num_blocks) / num_edges)
    return term


def description_length(blockmodel: "Blockmodel") -> float:
    """Exact description length (Eq. 2) of the current blockmodel state."""
    return (
        model_complexity_term(blockmodel.num_vertices, blockmodel.num_edges, blockmodel.num_blocks)
        - log_likelihood(blockmodel)
    )


def null_description_length(graph: "Graph") -> float:
    """Description length of the null model with every vertex in one block.

    With a single block, ``B_00 = E``, ``d_out = d_in = E``, so
    ``L = E log(1/E)`` and ``DL_null = E·h(1/E) + V·log 1 + E·log E``.
    """
    num_edges = graph.num_edges
    num_vertices = graph.num_vertices
    if num_edges == 0:
        return 0.0
    model = num_edges * h_function(1.0 / num_edges)
    likelihood = num_edges * math.log(num_edges / (float(num_edges) * float(num_edges)))
    return model + num_vertices * math.log(1) - likelihood


def normalized_description_length(dl: float, graph: "Graph") -> float:
    """``DL_norm = DL / DL_null`` (Section V-E; lower is better)."""
    null = null_description_length(graph)
    if null == 0.0:
        return float("nan")
    return dl / null
