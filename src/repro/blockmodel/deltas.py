"""Sparse change-in-description-length computations.

SBP evaluates millions of candidate vertex moves and block merges; computing
the full description length for each would be hopeless.  Both proposals only
touch two rows and two columns of the block matrix, so the change in the
likelihood term of Eq. (2) can be computed over that region alone — the
paper's optimisation (c) ("using a sparse vector of changes to the
blockmodel to perform change in description length computations").

The functions here return **ΔDL** with the paper's sign convention: negative
values are improvements (DL is minimised).

For vertex moves the model-complexity term of Eq. (2) is unchanged (the
number of blocks stays fixed), so ``ΔDL = −ΔL``.  For block merges the model
term changes identically for every candidate merge (B decreases by one), so
it is omitted by default when ranking merges and can be included via
``include_model_term=True`` when an absolute ΔDL is wanted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel, VertexBlockCounts
from repro.blockmodel.entropy import model_complexity_term

__all__ = ["MoveDelta", "delta_dl_for_move", "delta_dl_for_merge"]


@dataclass
class MoveDelta:
    """A fully-evaluated vertex-move proposal.

    Carrying the :class:`VertexBlockCounts` along lets the caller apply the
    accepted move without recomputing the vertex's neighbourhood.
    """

    vertex: int
    from_block: int
    to_block: int
    delta_dl: float
    counts: VertexBlockCounts

    @property
    def is_improvement(self) -> bool:
        return self.delta_dl < 0


class _DegreeView:
    """Array-backed degree lookup with a sparse override for changed blocks."""

    __slots__ = ("base", "overrides")

    def __init__(self, base: np.ndarray, overrides: Optional[Dict[int, int]] = None) -> None:
        self.base = base
        self.overrides = overrides or {}

    def __getitem__(self, idx: int) -> int:
        if idx in self.overrides:
            return self.overrides[idx]
        return int(self.base[idx])


def _region_likelihood(
    rows: Mapping[int, Mapping[int, int]],
    cols: Mapping[int, Mapping[int, int]],
    d_out,
    d_in,
) -> float:
    """Likelihood contribution of the given rows and columns.

    Entries that belong to one of the listed rows are counted there; column
    entries whose row index is also listed are skipped to avoid double
    counting.
    """
    total = 0.0
    row_ids = set(rows.keys())
    for i, row in rows.items():
        douti = d_out[i]
        if douti <= 0:
            continue
        for j, val in row.items():
            if val > 0:
                total += val * math.log(val / (douti * d_in[j]))
    for j, col in cols.items():
        dinj = d_in[j]
        if dinj <= 0:
            continue
        for i, val in col.items():
            if i in row_ids:
                continue
            if val > 0:
                total += val * math.log(val / (d_out[i] * dinj))
    return total


def _apply_row_delta(row: Mapping[int, int], deltas: Iterable) -> Dict[int, int]:
    out = dict(row)
    for key, d in deltas:
        new = out.get(key, 0) + d
        if new:
            out[key] = new
        else:
            out.pop(key, None)
    return out


def delta_dl_for_move_slow(
    blockmodel: Blockmodel,
    vertex: int,
    to_block: int,
    counts: Optional[VertexBlockCounts] = None,
) -> MoveDelta:
    """Reference ΔDL of a vertex move, computed over the full affected region.

    This is the straightforward (row/column re-evaluation) formulation.  The
    production path :func:`delta_dl_for_move` uses an aggregated form that
    avoids touching unchanged entries; the test-suite checks that the two
    always agree (and that both agree with a full DL recomputation).
    """
    from_block = int(blockmodel.assignment[vertex])
    to_block = int(to_block)
    if counts is None:
        counts = blockmodel.vertex_block_counts(vertex)
    if from_block == to_block:
        return MoveDelta(vertex, from_block, to_block, 0.0, counts)

    matrix = blockmodel.matrix
    r, s = from_block, to_block

    # Sparse matrix delta induced by the move (see Blockmodel.move_vertex).
    entry_delta: Dict[tuple, int] = {}

    def bump(i: int, j: int, d: int) -> None:
        if d == 0:
            return
        key = (i, j)
        entry_delta[key] = entry_delta.get(key, 0) + d

    for b, w in counts.out_counts.items():
        bump(r, b, -w)
        bump(s, b, w)
    for b, w in counts.in_counts.items():
        bump(b, r, -w)
        bump(b, s, w)
    if counts.self_loop:
        bump(r, r, -counts.self_loop)
        bump(s, s, counts.self_loop)

    old_rows = {r: matrix.row(r), s: matrix.row(s)}
    old_cols = {r: matrix.col(r), s: matrix.col(s)}

    new_rows = {
        r: _apply_row_delta(matrix.row(r), ((j, d) for (i, j), d in entry_delta.items() if i == r)),
        s: _apply_row_delta(matrix.row(s), ((j, d) for (i, j), d in entry_delta.items() if i == s)),
    }
    new_cols = {
        r: _apply_row_delta(matrix.col(r), ((i, d) for (i, j), d in entry_delta.items() if j == r)),
        s: _apply_row_delta(matrix.col(s), ((i, d) for (i, j), d in entry_delta.items() if j == s)),
    }

    out_total = counts.out_total
    in_total = counts.in_total
    d_out = blockmodel.block_out_degrees
    d_in = blockmodel.block_in_degrees
    new_d_out = _DegreeView(d_out, {r: int(d_out[r]) - out_total, s: int(d_out[s]) + out_total})
    new_d_in = _DegreeView(d_in, {r: int(d_in[r]) - in_total, s: int(d_in[s]) + in_total})
    old_d_out = _DegreeView(d_out)
    old_d_in = _DegreeView(d_in)

    old_term = _region_likelihood(old_rows, old_cols, old_d_out, old_d_in)
    new_term = _region_likelihood(new_rows, new_cols, new_d_out, new_d_in)
    # DL contains −L, so ΔDL = L_old − L_new over the affected region.
    delta = old_term - new_term
    return MoveDelta(vertex, from_block, to_block, delta, counts)


def delta_dl_for_move(
    blockmodel: Blockmodel,
    vertex: int,
    to_block: int,
    counts: Optional[VertexBlockCounts] = None,
) -> MoveDelta:
    """ΔDL of moving ``vertex`` to ``to_block`` (without applying it).

    Aggregated formulation (the paper's optimisation (c)): the likelihood
    term of every entry whose *value* is untouched by the move changes only
    through the changed block degrees, so those entries' contributions can be
    summed per row/column and adjusted with a single logarithm instead of one
    per entry.  Only the entries actually modified by the move (the vertex's
    neighbour blocks and the four ``{r,s} × {r,s}`` corners) are re-evaluated
    individually.
    """
    from_block = int(blockmodel.assignment[vertex])
    to_block = int(to_block)
    if counts is None:
        counts = blockmodel.vertex_block_counts(vertex)
    if from_block == to_block:
        return MoveDelta(vertex, from_block, to_block, 0.0, counts)

    matrix = blockmodel.matrix
    r, s = from_block, to_block
    log = math.log

    # ------------------------------------------------------------------
    # Matrix entries whose value changes, as {(i, j): delta}.
    # ------------------------------------------------------------------
    entry_delta: Dict[tuple, int] = {}

    def bump(i: int, j: int, d: int) -> None:
        if d:
            key = (i, j)
            entry_delta[key] = entry_delta.get(key, 0) + d

    for b, w in counts.out_counts.items():
        bump(r, b, -w)
        bump(s, b, w)
    for b, w in counts.in_counts.items():
        bump(b, r, -w)
        bump(b, s, w)
    if counts.self_loop:
        bump(r, r, -counts.self_loop)
        bump(s, s, counts.self_loop)
    # The four corner entries sit in a changed row *and* a changed column;
    # always treat them explicitly so the aggregated row/column terms below
    # can exclude {r, s} wholesale.
    for corner in ((r, r), (r, s), (s, r), (s, s)):
        entry_delta.setdefault(corner, 0)

    d_out = blockmodel.block_out_degrees
    d_in = blockmodel.block_in_degrees
    out_total = counts.out_total
    in_total = counts.in_total
    old_dout = {r: int(d_out[r]), s: int(d_out[s])}
    old_din = {r: int(d_in[r]), s: int(d_in[s])}
    new_dout = {r: old_dout[r] - out_total, s: old_dout[s] + out_total}
    new_din = {r: old_din[r] - in_total, s: old_din[s] + in_total}

    delta_likelihood = 0.0

    # ------------------------------------------------------------------
    # 1. Entries with changed values (plus the corners).
    # ------------------------------------------------------------------
    for (i, j), d in entry_delta.items():
        old_val = matrix.get(i, j)
        new_val = old_val + d
        if old_val > 0:
            doi = old_dout.get(i, 0) if i in old_dout else int(d_out[i])
            dij = old_din.get(j, 0) if j in old_din else int(d_in[j])
            delta_likelihood -= old_val * log(old_val / (doi * dij))
        if new_val > 0:
            doi = new_dout[i] if i in new_dout else int(d_out[i])
            dij = new_din[j] if j in new_din else int(d_in[j])
            delta_likelihood += new_val * log(new_val / (doi * dij))

    # ------------------------------------------------------------------
    # 2. Row r and row s entries whose values are unchanged: only the row's
    #    out-degree moved, contributing  -sum(M) * log(new_dout / old_dout).
    # ------------------------------------------------------------------
    for row_block in (r, s):
        row = matrix.row(row_block)
        unchanged_sum = 0
        for j, val in row.items():
            if (row_block, j) not in entry_delta:
                unchanged_sum += val
        if unchanged_sum and new_dout[row_block] > 0 and old_dout[row_block] > 0:
            delta_likelihood -= unchanged_sum * log(new_dout[row_block] / old_dout[row_block])

    # ------------------------------------------------------------------
    # 3. Column r and column s entries whose values are unchanged.
    # ------------------------------------------------------------------
    for col_block in (r, s):
        col = matrix.col(col_block)
        unchanged_sum = 0
        for i, val in col.items():
            if (i, col_block) not in entry_delta:
                unchanged_sum += val
        if unchanged_sum and new_din[col_block] > 0 and old_din[col_block] > 0:
            delta_likelihood -= unchanged_sum * log(new_din[col_block] / old_din[col_block])

    # DL contains −L, so ΔDL = −ΔL.
    return MoveDelta(vertex, from_block, to_block, -delta_likelihood, counts)


def delta_dl_for_merge(
    blockmodel: Blockmodel,
    from_block: int,
    to_block: int,
    include_model_term: bool = False,
) -> float:
    """ΔDL of merging ``from_block`` into ``to_block`` (without applying it).

    The likelihood change treats the merged block as keeping label
    ``to_block`` while ``from_block`` becomes empty.  With
    ``include_model_term=True`` the Eq. (2) model-term change for going from
    ``B`` to ``B − 1`` blocks is added (identical for all merge candidates).
    """
    r, s = int(from_block), int(to_block)
    if r == s:
        return 0.0
    matrix = blockmodel.matrix
    d_out = blockmodel.block_out_degrees
    d_in = blockmodel.block_in_degrees

    old_rows = {r: matrix.row(r), s: matrix.row(s)}
    old_cols = {r: matrix.col(r), s: matrix.col(s)}

    merged_row: Dict[int, int] = {}
    for source in (matrix.row(r), matrix.row(s)):
        for j, w in source.items():
            key = s if j == r else j
            merged_row[key] = merged_row.get(key, 0) + w
    merged_col: Dict[int, int] = {}
    for source in (matrix.col(r), matrix.col(s)):
        for i, w in source.items():
            key = s if i == r else i
            merged_col[key] = merged_col.get(key, 0) + w

    new_rows = {r: {}, s: merged_row}
    new_cols = {r: {}, s: merged_col}

    new_d_out = _DegreeView(d_out, {r: 0, s: int(d_out[r]) + int(d_out[s])})
    new_d_in = _DegreeView(d_in, {r: 0, s: int(d_in[r]) + int(d_in[s])})
    old_d_out = _DegreeView(d_out)
    old_d_in = _DegreeView(d_in)

    old_term = _region_likelihood(old_rows, old_cols, old_d_out, old_d_in)
    new_term = _region_likelihood(new_rows, new_cols, new_d_out, new_d_in)
    delta = old_term - new_term

    if include_model_term:
        num_nonempty = blockmodel.num_nonempty_blocks()
        before = model_complexity_term(blockmodel.num_vertices, blockmodel.num_edges, max(num_nonempty, 1))
        after = model_complexity_term(blockmodel.num_vertices, blockmodel.num_edges, max(num_nonempty - 1, 1))
        delta += after - before
    return delta
