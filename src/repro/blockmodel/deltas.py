"""Sparse change-in-description-length computations.

SBP evaluates millions of candidate vertex moves and block merges; computing
the full description length for each would be hopeless.  Both proposals only
touch two rows and two columns of the block matrix, so the change in the
likelihood term of Eq. (2) can be computed over that region alone — the
paper's optimisation (c) ("using a sparse vector of changes to the
blockmodel to perform change in description length computations").

The functions here return **ΔDL** with the paper's sign convention: negative
values are improvements (DL is minimised).

For vertex moves the model-complexity term of Eq. (2) is unchanged (the
number of blocks stays fixed), so ``ΔDL = −ΔL``.  For block merges the model
term changes identically for every candidate merge (B decreases by one), so
it is omitted by default when ranking merges and can be included via
``include_model_term=True`` when an absolute ΔDL is wanted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel, VertexBlockCounts
from repro.blockmodel.entropy import model_complexity_term

__all__ = [
    "MoveDelta",
    "BatchMoveEvaluation",
    "delta_dl_for_move",
    "delta_dl_for_moves",
    "delta_dl_for_merge",
    "delta_dl_for_merges",
]


@dataclass
class MoveDelta:
    """A fully-evaluated vertex-move proposal.

    Carrying the :class:`VertexBlockCounts` along lets the caller apply the
    accepted move without recomputing the vertex's neighbourhood.
    """

    vertex: int
    from_block: int
    to_block: int
    delta_dl: float
    counts: VertexBlockCounts

    @property
    def is_improvement(self) -> bool:
        return self.delta_dl < 0


class _DegreeView:
    """Array-backed degree lookup with a sparse override for changed blocks."""

    __slots__ = ("base", "overrides")

    def __init__(self, base: np.ndarray, overrides: Optional[Dict[int, int]] = None) -> None:
        self.base = base
        self.overrides = overrides or {}

    def __getitem__(self, idx: int) -> int:
        if idx in self.overrides:
            return self.overrides[idx]
        return int(self.base[idx])


def _region_likelihood(
    rows: Mapping[int, Mapping[int, int]],
    cols: Mapping[int, Mapping[int, int]],
    d_out,
    d_in,
) -> float:
    """Likelihood contribution of the given rows and columns.

    Entries that belong to one of the listed rows are counted there; column
    entries whose row index is also listed are skipped to avoid double
    counting.
    """
    total = 0.0
    row_ids = set(rows.keys())
    # Entries are accumulated in ascending index order so that both storage
    # backends (insertion-ordered dicts vs. sorted array snapshots) produce
    # bit-identical sums.
    for i, row in rows.items():
        douti = d_out[i]
        if douti <= 0:
            continue
        for j in sorted(row):
            val = row[j]
            if val > 0:
                total += val * math.log(val / (douti * d_in[j]))
    for j, col in cols.items():
        dinj = d_in[j]
        if dinj <= 0:
            continue
        for i in sorted(col):
            if i in row_ids:
                continue
            val = col[i]
            if val > 0:
                total += val * math.log(val / (d_out[i] * dinj))
    return total


def _apply_row_delta(row: Mapping[int, int], deltas: Iterable) -> Dict[int, int]:
    out = dict(row)
    for key, d in deltas:
        new = out.get(key, 0) + d
        if new:
            out[key] = new
        else:
            out.pop(key, None)
    return out


def delta_dl_for_move_slow(
    blockmodel: Blockmodel,
    vertex: int,
    to_block: int,
    counts: Optional[VertexBlockCounts] = None,
) -> MoveDelta:
    """Reference ΔDL of a vertex move, computed over the full affected region.

    This is the straightforward (row/column re-evaluation) formulation.  The
    production path :func:`delta_dl_for_move` uses an aggregated form that
    avoids touching unchanged entries; the test-suite checks that the two
    always agree (and that both agree with a full DL recomputation).
    """
    from_block = int(blockmodel.assignment[vertex])
    to_block = int(to_block)
    if counts is None:
        counts = blockmodel.vertex_block_counts(vertex)
    if from_block == to_block:
        return MoveDelta(vertex, from_block, to_block, 0.0, counts)

    matrix = blockmodel.matrix
    r, s = from_block, to_block

    # Sparse matrix delta induced by the move (see Blockmodel.move_vertex).
    entry_delta: Dict[tuple, int] = {}

    def bump(i: int, j: int, d: int) -> None:
        if d == 0:
            return
        key = (i, j)
        entry_delta[key] = entry_delta.get(key, 0) + d

    for b, w in counts.out_counts.items():
        bump(r, b, -w)
        bump(s, b, w)
    for b, w in counts.in_counts.items():
        bump(b, r, -w)
        bump(b, s, w)
    if counts.self_loop:
        bump(r, r, -counts.self_loop)
        bump(s, s, counts.self_loop)

    old_rows = {r: matrix.row(r), s: matrix.row(s)}
    old_cols = {r: matrix.col(r), s: matrix.col(s)}

    new_rows = {
        r: _apply_row_delta(matrix.row(r), ((j, d) for (i, j), d in entry_delta.items() if i == r)),
        s: _apply_row_delta(matrix.row(s), ((j, d) for (i, j), d in entry_delta.items() if i == s)),
    }
    new_cols = {
        r: _apply_row_delta(matrix.col(r), ((i, d) for (i, j), d in entry_delta.items() if j == r)),
        s: _apply_row_delta(matrix.col(s), ((i, d) for (i, j), d in entry_delta.items() if j == s)),
    }

    out_total = counts.out_total
    in_total = counts.in_total
    d_out = blockmodel.block_out_degrees
    d_in = blockmodel.block_in_degrees
    new_d_out = _DegreeView(d_out, {r: int(d_out[r]) - out_total, s: int(d_out[s]) + out_total})
    new_d_in = _DegreeView(d_in, {r: int(d_in[r]) - in_total, s: int(d_in[s]) + in_total})
    old_d_out = _DegreeView(d_out)
    old_d_in = _DegreeView(d_in)

    old_term = _region_likelihood(old_rows, old_cols, old_d_out, old_d_in)
    new_term = _region_likelihood(new_rows, new_cols, new_d_out, new_d_in)
    # DL contains −L, so ΔDL = L_old − L_new over the affected region.
    delta = old_term - new_term
    return MoveDelta(vertex, from_block, to_block, delta, counts)


def delta_dl_for_move(
    blockmodel: Blockmodel,
    vertex: int,
    to_block: int,
    counts: Optional[VertexBlockCounts] = None,
) -> MoveDelta:
    """ΔDL of moving ``vertex`` to ``to_block`` (without applying it).

    Aggregated formulation (the paper's optimisation (c)): the likelihood
    term of every entry whose *value* is untouched by the move changes only
    through the changed block degrees, so those entries' contributions can be
    summed per row/column and adjusted with a single logarithm instead of one
    per entry.  Only the entries actually modified by the move (the vertex's
    neighbour blocks and the four ``{r,s} × {r,s}`` corners) are re-evaluated
    individually.
    """
    from_block = int(blockmodel.assignment[vertex])
    to_block = int(to_block)
    if counts is None:
        counts = blockmodel.vertex_block_counts(vertex)
    if from_block == to_block:
        return MoveDelta(vertex, from_block, to_block, 0.0, counts)

    matrix = blockmodel.matrix
    r, s = from_block, to_block
    log = math.log

    # ------------------------------------------------------------------
    # Matrix entries whose value changes, as {(i, j): delta}.
    # ------------------------------------------------------------------
    entry_delta: Dict[tuple, int] = {}

    def bump(i: int, j: int, d: int) -> None:
        if d:
            key = (i, j)
            entry_delta[key] = entry_delta.get(key, 0) + d

    for b, w in counts.out_counts.items():
        bump(r, b, -w)
        bump(s, b, w)
    for b, w in counts.in_counts.items():
        bump(b, r, -w)
        bump(b, s, w)
    if counts.self_loop:
        bump(r, r, -counts.self_loop)
        bump(s, s, counts.self_loop)
    # The four corner entries sit in a changed row *and* a changed column;
    # always treat them explicitly so the aggregated row/column terms below
    # can exclude {r, s} wholesale.
    for corner in ((r, r), (r, s), (s, r), (s, s)):
        entry_delta.setdefault(corner, 0)

    d_out = blockmodel.block_out_degrees
    d_in = blockmodel.block_in_degrees
    out_total = counts.out_total
    in_total = counts.in_total
    old_dout = {r: int(d_out[r]), s: int(d_out[s])}
    old_din = {r: int(d_in[r]), s: int(d_in[s])}
    new_dout = {r: old_dout[r] - out_total, s: old_dout[s] + out_total}
    new_din = {r: old_din[r] - in_total, s: old_din[s] + in_total}

    delta_likelihood = 0.0

    # ------------------------------------------------------------------
    # 1. Entries with changed values (plus the corners).  The old values of
    #    the changed entries are also accumulated per affected row/column so
    #    that steps 2-3 can use the cached marginals instead of scanning the
    #    rows (``unchanged = row_sum − changed``, all exact integers).
    # ------------------------------------------------------------------
    changed_row = {r: 0, s: 0}
    changed_col = {r: 0, s: 0}
    for (i, j), d in entry_delta.items():
        old_val = matrix.get(i, j)
        new_val = old_val + d
        if i in changed_row:
            changed_row[i] += old_val
        if j in changed_col:
            changed_col[j] += old_val
        if old_val > 0:
            doi = old_dout.get(i, 0) if i in old_dout else int(d_out[i])
            dij = old_din.get(j, 0) if j in old_din else int(d_in[j])
            delta_likelihood -= old_val * log(old_val / (doi * dij))
        if new_val > 0:
            doi = new_dout[i] if i in new_dout else int(d_out[i])
            dij = new_din[j] if j in new_din else int(d_in[j])
            delta_likelihood += new_val * log(new_val / (doi * dij))

    # ------------------------------------------------------------------
    # 2. Row r and row s entries whose values are unchanged: only the row's
    #    out-degree moved, contributing  -sum(M) * log(new_dout / old_dout).
    #    The row sum equals the block's out-degree, so no row scan is needed.
    # ------------------------------------------------------------------
    for row_block in (r, s):
        unchanged_sum = old_dout[row_block] - changed_row[row_block]
        if unchanged_sum and new_dout[row_block] > 0 and old_dout[row_block] > 0:
            delta_likelihood -= unchanged_sum * log(new_dout[row_block] / old_dout[row_block])

    # ------------------------------------------------------------------
    # 3. Column r and column s entries whose values are unchanged.
    # ------------------------------------------------------------------
    for col_block in (r, s):
        unchanged_sum = old_din[col_block] - changed_col[col_block]
        if unchanged_sum and new_din[col_block] > 0 and old_din[col_block] > 0:
            delta_likelihood -= unchanged_sum * log(new_din[col_block] / old_din[col_block])

    # DL contains −L, so ΔDL = −ΔL.
    return MoveDelta(vertex, from_block, to_block, -delta_likelihood, counts)


@dataclass
class BatchMoveEvaluation:
    """ΔDL of a batch of vertex moves, plus the flattened move context.

    Produced by :func:`delta_dl_for_moves`.  Beyond the per-move ``delta_dl``
    it carries the flattened sparse matrix delta and the combined
    neighbour-block counts of every move, which
    :func:`repro.core.proposals.hastings_corrections` reuses to evaluate the
    reverse proposals without touching the graph again.
    """

    #: Per-move arrays, all of shape ``(m,)``.
    vertices: np.ndarray
    from_blocks: np.ndarray
    to_blocks: np.ndarray
    delta_dl: np.ndarray
    out_totals: np.ndarray
    in_totals: np.ndarray

    #: Flattened combined neighbour-block counts: entry ``k`` says that move
    #: ``nbr_move[k]``'s vertex has ``nbr_weight[k]`` edges (in+out) to block
    #: ``nbr_block[k]``.  Self-loops are excluded, mirroring
    #: ``VertexBlockCounts``.
    nbr_move: np.ndarray
    nbr_block: np.ndarray
    nbr_weight: np.ndarray

    #: Flattened sparse matrix delta, deduplicated and sorted by
    #: ``move · B² + i · B + j`` (see :meth:`entry_key_of`).
    entry_keys: np.ndarray
    entry_deltas: np.ndarray

    #: Number of blocks at evaluation time (the key stride).
    num_blocks: int

    def entry_key_of(self, move: np.ndarray, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Flat key of entry ``(i, j)`` of the given move's matrix delta."""
        stride = np.int64(self.num_blocks) * np.int64(self.num_blocks)
        return move.astype(np.int64) * stride + i.astype(np.int64) * np.int64(self.num_blocks) + j

    def entry_delta_at(self, move: np.ndarray, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """Delta of entry ``(i, j)`` per move (0 where the move leaves it)."""
        keys = self.entry_key_of(move, i, j)
        pos = np.searchsorted(self.entry_keys, keys)
        pos_clipped = np.minimum(pos, len(self.entry_keys) - 1)
        found = self.entry_keys[pos_clipped] == keys
        return np.where(found, self.entry_deltas[pos_clipped], 0)


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Indices of the concatenation of ``[starts[k], starts[k]+lengths[k])``."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    offsets = np.repeat(starts - np.concatenate([[0], ends[:-1]]), lengths)
    return np.arange(total, dtype=np.int64) + offsets


def _batch_neighbor_counts(graph, assignment: np.ndarray, vertices: np.ndarray, direction: str):
    """Flattened per-move neighbour-block counts for one edge direction.

    Returns ``(move, block, weight, totals, self_loops)`` where the first
    three arrays list, for every move, the aggregated edge weight from/to
    each neighbouring block (self-loops excluded, like
    ``Blockmodel.vertex_block_counts``), ``totals`` is the per-move total
    including self-loops (``out_total`` / ``in_total``) and ``self_loops``
    the per-move self-loop weight.
    """
    indptr, indices, data = graph.out_adjacency() if direction == "out" else graph.in_adjacency()
    m = vertices.shape[0]
    starts = indptr[vertices]
    lengths = indptr[vertices + 1] - starts
    flat = _concat_ranges(starts, lengths)
    move = np.repeat(np.arange(m, dtype=np.int64), lengths)
    nbr = indices[flat]
    w = data[flat]

    self_mask = nbr == vertices[move]
    self_loops = np.bincount(move[self_mask], weights=w[self_mask], minlength=m).astype(np.int64)
    move, nbr, w = move[~self_mask], nbr[~self_mask], w[~self_mask]
    blocks = assignment[nbr]

    num_blocks = np.int64(int(assignment.max(initial=0)) + 1)
    keys = move * num_blocks + blocks
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    weights = np.bincount(inverse, weights=w, minlength=unique_keys.shape[0]).astype(np.int64)
    agg_move = unique_keys // num_blocks
    agg_block = unique_keys % num_blocks

    totals = np.bincount(move, weights=w, minlength=m).astype(np.int64) + self_loops
    return agg_move, agg_block, weights, totals, self_loops


def delta_dl_for_moves(
    blockmodel: Blockmodel,
    vertices: np.ndarray,
    to_blocks: np.ndarray,
) -> BatchMoveEvaluation:
    """Batched ΔDL of many vertex moves, evaluated against the current state.

    Vectorized counterpart of :func:`delta_dl_for_move` (same aggregated
    formulation, same sign convention): all candidate moves are scored with
    whole-batch numpy operations instead of per-move Python loops.  Every
    move is evaluated against the *same* (current) blockmodel state, which
    is exactly the staleness semantics of the asynchronous Gibbs batches in
    :mod:`repro.core.hybrid_mcmc`.

    Requires a backend with ``supports_batched_kernels`` (``"csr"`` or
    ``"sparse_csr"``); moves proposing ``to_block == from_block`` get
    ``ΔDL = 0``.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    to_blocks = np.asarray(to_blocks, dtype=np.int64)
    if vertices.shape != to_blocks.shape:
        raise ValueError("vertices and to_blocks must have the same shape")
    matrix = blockmodel.matrix
    if not getattr(matrix, "supports_batched_kernels", False):
        raise TypeError(
            "delta_dl_for_moves requires a backend with supports_batched_kernels "
            "(e.g. SBPConfig(matrix_backend='csr') or 'sparse_csr')"
        )
    m = vertices.shape[0]
    num_blocks = blockmodel.num_blocks
    assignment = blockmodel.assignment
    r = assignment[vertices]
    s = to_blocks
    graph = blockmodel.graph

    out_move, out_block, out_w, out_totals, self_loops = _batch_neighbor_counts(
        graph, assignment, vertices, "out"
    )
    in_move, in_block, in_w, in_totals, _ = _batch_neighbor_counts(
        graph, assignment, vertices, "in"
    )

    # ------------------------------------------------------------------
    # Flattened sparse matrix delta: for each move the same bumps the scalar
    # kernel makes, keyed by  move·B² + i·B + j  and deduplicated.  The four
    # {r,s}×{r,s} corners are always included (with +0) so that the degree
    # change is accounted for on them even when no edge touches them.
    # ------------------------------------------------------------------
    i_parts = [r[out_move], s[out_move], in_block, in_block, r, s, r, r, s, s]
    j_parts = [out_block, out_block, r[in_move], s[in_move], r, s, r, s, r, s]
    d_parts = [
        -out_w,
        out_w,
        -in_w,
        in_w,
        -self_loops,
        self_loops,
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
        np.zeros(m, dtype=np.int64),
    ]
    move_parts = [out_move, out_move, in_move, in_move] + [np.arange(m, dtype=np.int64)] * 6
    entry_i = np.concatenate(i_parts)
    entry_j = np.concatenate(j_parts)
    entry_d = np.concatenate(d_parts)
    entry_move = np.concatenate(move_parts)

    stride = np.int64(num_blocks) * np.int64(num_blocks)
    keys = entry_move * stride + entry_i * np.int64(num_blocks) + entry_j
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    deltas = np.bincount(inverse, weights=entry_d, minlength=unique_keys.shape[0]).astype(np.int64)

    mid = unique_keys // stride
    rem = unique_keys % stride
    i_u = rem // num_blocks
    j_u = rem % num_blocks

    old = matrix.get_many(i_u, j_u)
    new = old + deltas

    d_out = blockmodel.block_out_degrees
    d_in = blockmodel.block_in_degrees
    r_u = r[mid]
    s_u = s[mid]
    same = r == s  # degenerate moves contribute ΔDL = 0 (masked at the end)

    doi_old = d_out[i_u].astype(np.float64)
    dij_old = d_in[j_u].astype(np.float64)
    shift_out = out_totals[mid]
    shift_in = in_totals[mid]
    doi_new = doi_old + np.where(i_u == s_u, shift_out, 0) - np.where(i_u == r_u, shift_out, 0)
    dij_new = dij_old + np.where(j_u == s_u, shift_in, 0) - np.where(j_u == r_u, shift_in, 0)

    with np.errstate(divide="ignore", invalid="ignore"):
        term_old = np.where(old > 0, old * np.log(old / (doi_old * dij_old)), 0.0)
        term_new = np.where(new > 0, new * np.log(new / (doi_new * dij_new)), 0.0)
    delta_likelihood = np.bincount(mid, weights=term_new - term_old, minlength=m)

    # ------------------------------------------------------------------
    # Unchanged entries of the affected rows/columns: only their row/column
    # degree moved.  unchanged = marginal − Σ(old values of changed entries).
    # ------------------------------------------------------------------
    def _unchanged_term(axis_u, block_r, block_s, degrees, shifts):
        mask_r = axis_u == block_r[mid]
        mask_s = axis_u == block_s[mid]
        changed_r = np.bincount(mid[mask_r], weights=old[mask_r], minlength=m)
        changed_s = np.bincount(mid[mask_s], weights=old[mask_s], minlength=m)
        total = np.zeros(m, dtype=np.float64)
        for block, changed, sign in ((block_r, changed_r, -1), (block_s, changed_s, 1)):
            old_deg = degrees[block].astype(np.float64)
            new_deg = old_deg + sign * shifts
            unchanged = old_deg - changed
            ok = (unchanged > 0) & (new_deg > 0) & (old_deg > 0)
            with np.errstate(divide="ignore", invalid="ignore"):
                total -= np.where(ok, unchanged * np.log(np.where(ok, new_deg / np.where(old_deg > 0, old_deg, 1.0), 1.0)), 0.0)
        return total

    delta_likelihood += _unchanged_term(i_u, r, s, d_out, out_totals)
    delta_likelihood += _unchanged_term(j_u, r, s, d_in, in_totals)

    delta_dl = np.where(same, 0.0, -delta_likelihood)

    # Combined (in+out) neighbour-block counts for the Hastings correction.
    ckeys = np.concatenate([out_move * np.int64(num_blocks) + out_block,
                            in_move * np.int64(num_blocks) + in_block])
    cw = np.concatenate([out_w, in_w])
    c_unique, c_inverse = np.unique(ckeys, return_inverse=True)
    c_weights = np.bincount(c_inverse, weights=cw, minlength=c_unique.shape[0]).astype(np.int64)

    return BatchMoveEvaluation(
        vertices=vertices,
        from_blocks=r,
        to_blocks=s,
        delta_dl=delta_dl,
        out_totals=out_totals,
        in_totals=in_totals,
        nbr_move=c_unique // num_blocks,
        nbr_block=c_unique % num_blocks,
        nbr_weight=c_weights,
        entry_keys=unique_keys,
        entry_deltas=deltas,
        num_blocks=num_blocks,
    )


def _merge_region_sums(
    segment_ids: np.ndarray,
    values: np.ndarray,
    denominators: np.ndarray,
    num_segments: int,
) -> np.ndarray:
    """Per-segment likelihood sums ``Σ v·log(v / denom)``, in input order.

    This is the one summation primitive shared by the scalar
    (:func:`delta_dl_for_merge`) and batched (:func:`delta_dl_for_merges`)
    merge kernels.  ``np.bincount`` accumulates its weights strictly
    sequentially in input order, so as long as both callers lay out a merge
    candidate's region entries in the same order, the two paths produce
    **bit-identical** sums — which is what lets the dict and CSR backends
    select identical merges (the sort keys of the merge phase are these
    floats).  All entries must have ``v > 0`` and ``denom > 0``.
    """
    if values.size == 0:
        return np.zeros(num_segments, dtype=np.float64)
    terms = values * np.log(values / denominators)
    return np.bincount(segment_ids, weights=terms, minlength=num_segments)


def _merge_model_term_delta(blockmodel: Blockmodel) -> float:
    """Eq. (2) model-term change of one merge (identical for all candidates)."""
    num_nonempty = blockmodel.num_nonempty_blocks()
    before = model_complexity_term(blockmodel.num_vertices, blockmodel.num_edges, max(num_nonempty, 1))
    after = model_complexity_term(blockmodel.num_vertices, blockmodel.num_edges, max(num_nonempty - 1, 1))
    return after - before


def delta_dl_for_merge(
    blockmodel: Blockmodel,
    from_block: int,
    to_block: int,
    include_model_term: bool = False,
) -> float:
    """ΔDL of merging ``from_block`` into ``to_block`` (without applying it).

    The likelihood change treats the merged block as keeping label
    ``to_block`` while ``from_block`` becomes empty.  With
    ``include_model_term=True`` the Eq. (2) model-term change for going from
    ``B`` to ``B − 1`` blocks is added (identical for all merge candidates).

    The affected region (rows and columns ``r`` and ``s``) is evaluated
    entry-by-entry in a canonical order — row ``r`` ascending, row ``s``
    ascending, column ``r`` ascending, column ``s`` ascending (the two
    columns skip entries whose row is ``r`` or ``s`` to avoid double
    counting) — through :func:`_merge_region_sums`, so the result is
    bit-identical to the batched :func:`delta_dl_for_merges` kernel.
    """
    r, s = int(from_block), int(to_block)
    if r == s:
        return 0.0
    matrix = blockmodel.matrix
    d_out = blockmodel.block_out_degrees
    d_in = blockmodel.block_in_degrees
    row_r, row_s = matrix.row(r), matrix.row(s)
    col_r, col_s = matrix.col(r), matrix.col(s)
    dout_r, dout_s = int(d_out[r]), int(d_out[s])
    din_r, din_s = int(d_in[r]), int(d_in[s])

    vals: list = []
    denoms: list = []
    for row, dout in ((row_r, dout_r), (row_s, dout_s)):
        for j in sorted(row):
            v = row[j]
            if v > 0:
                vals.append(v)
                denoms.append(dout * int(d_in[j]))
    for col, din in ((col_r, din_r), (col_s, din_s)):
        for i in sorted(col):
            if i == r or i == s:
                continue
            v = col[i]
            if v > 0:
                vals.append(v)
                denoms.append(int(d_out[i]) * din)
    num_old = len(vals)

    # The merged block keeps label ``s``: fold index ``r`` into ``s`` in both
    # the merged row and the merged column.
    merged_row: Dict[int, int] = {}
    for source in (row_r, row_s):
        for j, w in source.items():
            key = s if j == r else j
            merged_row[key] = merged_row.get(key, 0) + w
    merged_col: Dict[int, int] = {}
    for source in (col_r, col_s):
        for i, w in source.items():
            key = s if i == r else i
            merged_col[key] = merged_col.get(key, 0) + w
    merged_dout = dout_r + dout_s
    merged_din = din_r + din_s

    for j in sorted(merged_row):
        v = merged_row[j]
        if v > 0:
            vals.append(v)
            denoms.append(merged_dout * (merged_din if j == s else int(d_in[j])))
    for i in sorted(merged_col):
        if i == r or i == s:
            continue
        v = merged_col[i]
        if v > 0:
            vals.append(v)
            denoms.append(int(d_out[i]) * merged_din)

    ids = np.zeros(len(vals), dtype=np.int64)
    ids[num_old:] = 1
    sums = _merge_region_sums(
        ids, np.asarray(vals, dtype=np.int64), np.asarray(denoms, dtype=np.int64), 2
    )
    delta = float(sums[0] - sums[1])

    if include_model_term:
        delta += _merge_model_term_delta(blockmodel)
    return delta


def _gather_segments(ptr: np.ndarray, blocks: np.ndarray) -> tuple:
    """Flattened CSR segments of the given blocks: (candidate_idx, flat_idx)."""
    starts = ptr[blocks]
    lengths = ptr[blocks + 1] - starts
    flat = _concat_ranges(starts, lengths)
    cand = np.repeat(np.arange(blocks.shape[0], dtype=np.int64), lengths)
    return cand, flat


def delta_dl_for_merges(
    blockmodel: Blockmodel,
    from_blocks: np.ndarray,
    to_blocks: np.ndarray,
    include_model_term: bool = False,
) -> np.ndarray:
    """Batched ΔDL of many candidate block merges (the merge-phase kernel).

    Vectorized counterpart of :func:`delta_dl_for_merge`: all candidates are
    scored with whole-batch numpy gathers over the non-zero structure of the
    block matrix instead of per-candidate Python loops.  Per-candidate work
    is O(Σ nnz(rows/cols touched)), on top of a once-per-call
    ``matrix.csr_structure()`` build (a zero-copy view on the sparse_csr
    backend; O(B²) + O(nnz·log nnz) on the dense backend) — callers
    amortise that by scoring a whole phase's candidates in one batch, the
    way :func:`repro.core.merges.best_segmented_merges` does.

    Each candidate's region entries are laid out in exactly the canonical
    order of the scalar kernel and summed through the same sequential
    primitive (:func:`_merge_region_sums`), so the returned deltas are
    **bit-identical** to per-candidate :func:`delta_dl_for_merge` calls —
    the property the cross-backend differential suite locks down.

    Requires a backend with ``supports_batched_kernels`` (``"csr"`` or
    ``"sparse_csr"``).  Candidates with ``from_block == to_block`` get
    ``ΔDL = 0``.
    """
    from_blocks = np.asarray(from_blocks, dtype=np.int64)
    to_blocks = np.asarray(to_blocks, dtype=np.int64)
    if from_blocks.shape != to_blocks.shape:
        raise ValueError("from_blocks and to_blocks must have the same shape")
    matrix = blockmodel.matrix
    if not getattr(matrix, "supports_batched_kernels", False):
        raise TypeError(
            "delta_dl_for_merges requires a backend with supports_batched_kernels "
            "(e.g. SBPConfig(matrix_backend='csr') or 'sparse_csr')"
        )
    total = from_blocks.shape[0]
    deltas = np.zeros(total, dtype=np.float64)
    valid = np.flatnonzero(from_blocks != to_blocks)
    if valid.size == 0:
        return deltas
    r = from_blocks[valid]
    s = to_blocks[valid]
    m = valid.size
    num_blocks = np.int64(blockmodel.num_blocks)
    d_out = blockmodel.block_out_degrees
    d_in = blockmodel.block_in_degrees
    (row_j, row_v, row_ptr), (col_i, col_v, col_ptr) = matrix.csr_structure()

    # ------------------------------------------------------------------
    # Old region, laid out per candidate as [row r | row s | col r | col s]
    # (columns skip entries whose row index is r or s), each ascending —
    # the scalar kernel's exact order.
    # ------------------------------------------------------------------
    ids_parts: list = []
    vals_parts: list = []
    denom_parts: list = []
    for blocks_arr in (r, s):
        cand, flat = _gather_segments(row_ptr, blocks_arr)
        j = row_j[flat]
        ids_parts.append(cand)
        vals_parts.append(row_v[flat])
        denom_parts.append(d_out[blocks_arr[cand]] * d_in[j])
    for blocks_arr in (r, s):
        cand, flat = _gather_segments(col_ptr, blocks_arr)
        i = col_i[flat]
        keep = (i != r[cand]) & (i != s[cand])
        cand, i, flat = cand[keep], i[keep], flat[keep]
        ids_parts.append(cand)
        vals_parts.append(col_v[flat])
        denom_parts.append(d_out[i] * d_in[blocks_arr[cand]])
    old_sums = _merge_region_sums(
        np.concatenate(ids_parts), np.concatenate(vals_parts), np.concatenate(denom_parts), m
    )

    # ------------------------------------------------------------------
    # Merged region: per candidate the merged row then the merged column,
    # with index r folded into s, entries ascending (np.unique sorts the
    # ``candidate·B + index`` keys, giving exactly the scalar iteration
    # order) and integer-exact aggregation.
    # ------------------------------------------------------------------
    merged_dout = d_out[r] + d_out[s]
    merged_din = d_in[r] + d_in[s]

    def _merged_axis(ptr, idx_arr, val_arr):
        cand_r, flat_r = _gather_segments(ptr, r)
        cand_s, flat_s = _gather_segments(ptr, s)
        cand = np.concatenate([cand_r, cand_s])
        idx = np.concatenate([idx_arr[flat_r], idx_arr[flat_s]])
        val = np.concatenate([val_arr[flat_r], val_arr[flat_s]])
        idx = np.where(idx == r[cand], s[cand], idx)
        keys = cand * num_blocks + idx
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        agg = np.bincount(inverse, weights=val, minlength=unique_keys.shape[0]).astype(np.int64)
        return unique_keys // num_blocks, unique_keys % num_blocks, agg

    row_cand, row_idx, row_agg = _merged_axis(row_ptr, row_j, row_v)
    row_denom = merged_dout[row_cand] * np.where(
        row_idx == s[row_cand], merged_din[row_cand], d_in[row_idx]
    )
    col_cand, col_idx, col_agg = _merged_axis(col_ptr, col_i, col_v)
    keep = (col_idx != r[col_cand]) & (col_idx != s[col_cand])
    col_cand, col_idx, col_agg = col_cand[keep], col_idx[keep], col_agg[keep]
    col_denom = d_out[col_idx] * merged_din[col_cand]

    new_sums = _merge_region_sums(
        np.concatenate([row_cand, col_cand]),
        np.concatenate([row_agg, col_agg]),
        np.concatenate([row_denom, col_denom]),
        m,
    )

    deltas[valid] = old_sums - new_sums
    if include_model_term:
        deltas[valid] += _merge_model_term_delta(blockmodel)
    return deltas
