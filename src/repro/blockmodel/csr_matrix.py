"""Array-backed block matrix: the vectorized storage backend.

:class:`CSRBlockMatrix` is the numpy counterpart of
:class:`~repro.blockmodel.sparse_matrix.SparseBlockMatrix`.  It is built
directly from the graph's CSR adjacency (hence the name) but stores the
block matrix as a dense ``(B, B)`` ``int64`` array together with cached row
and column sums, because the SBP inner loops need random access to entries
*and* O(1) marginals far more often than they need sparsity.

On top of the scalar API shared with the dict backend (``get`` / ``add`` /
``set`` / ``row`` / ``col`` / ``entries`` / ...) it exposes the batched
primitives the vectorized evaluation kernels are built on:

``get_many(rows, cols)``
    Fancy-indexed gather of many entries at once.
``add_many(rows, cols, deltas)``
    Scatter-add of many deltas (duplicate positions accumulate), keeping
    the cached marginals in sync.
``row_array(i)`` / ``col_array(j)``
    Dense row/column views for cumulative-sum sampling.
``nonzero_arrays()``
    ``(i, j, value)`` arrays over the non-zero entries, row-major.

Memory is O(B²): the backend is intended for graphs up to a few tens of
thousands of vertices (``MAX_DENSE_BLOCKS``); beyond that the dict backend
remains the storage of record.  Select it per run with
``SBPConfig(matrix_backend="csr")``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.blockmodel.backend import (
    BlockMatrixBackend,
    backend_registry_hint,
    register_backend,
)

__all__ = ["CSRBlockMatrix", "MAX_DENSE_BLOCKS"]

#: Largest block count the dense backend will allocate (8 GiB of int64 at the
#: limit).  ``Blockmodel.from_graph`` starts with one block per vertex, so
#: this effectively caps the graph size the dense CSR backend accepts; the
#: ``"sparse_csr"`` backend stores only the non-zeros and has no such cap.
MAX_DENSE_BLOCKS = 32768


@register_backend("csr")
class CSRBlockMatrix(BlockMatrixBackend):
    """A square integer block matrix backed by a dense numpy array.

    Implements the same :class:`BlockMatrixBackend` protocol as
    :class:`SparseBlockMatrix` (the backends are interchangeable inside
    :class:`~repro.blockmodel.blockmodel.Blockmodel`) plus the batched
    accessors used by the vectorized MCMC kernels.  Row and column sums are
    maintained incrementally so marginals are O(1).
    """

    supports_batched_kernels = True

    __slots__ = ("num_blocks", "data", "_row_sums", "_col_sums")

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        if num_blocks > MAX_DENSE_BLOCKS:
            raise ValueError(
                f"the 'csr' backend allocates a dense {num_blocks}x{num_blocks} matrix; "
                f"the limit is {MAX_DENSE_BLOCKS} blocks — for larger graphs pick another "
                f"registered matrix_backend ({backend_registry_hint()}); "
                "'sparse_csr' keeps the vectorized kernels without the dense memory bound"
            )
        self.num_blocks = int(num_blocks)
        self.data = np.zeros((num_blocks, num_blocks), dtype=np.int64)
        self._row_sums = np.zeros(num_blocks, dtype=np.int64)
        self._col_sums = np.zeros(num_blocks, dtype=np.int64)

    @classmethod
    def from_block_edges(
        cls,
        num_blocks: int,
        block_src: np.ndarray,
        block_dst: np.ndarray,
        weights: np.ndarray,
    ) -> "CSRBlockMatrix":
        """Build from per-edge block endpoints (vectorized construction)."""
        out = cls(num_blocks)
        if np.size(block_src):
            np.add.at(out.data, (block_src, block_dst), weights)
            out._row_sums = out.data.sum(axis=1)
            out._col_sums = out.data.sum(axis=0)
        return out

    # ------------------------------------------------------------------
    # Scalar element access (SparseBlockMatrix-compatible)
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> int:
        """Return entry ``(i, j)`` (0 when absent)."""
        return int(self.data[i, j])

    def add(self, i: int, j: int, delta: int) -> None:
        """Add ``delta`` to entry ``(i, j)``; negative totals are an error."""
        if delta == 0:
            return
        new_val = int(self.data[i, j]) + delta
        if new_val < 0:
            raise ValueError(f"block matrix entry ({i}, {j}) would become negative ({new_val})")
        self.data[i, j] = new_val
        self._row_sums[i] += delta
        self._col_sums[j] += delta

    def set(self, i: int, j: int, value: int) -> None:
        """Set entry ``(i, j)`` to ``value`` (must be non-negative)."""
        if value < 0:
            raise ValueError("block matrix entries must be non-negative")
        delta = int(value) - int(self.data[i, j])
        self.data[i, j] = value
        self._row_sums[i] += delta
        self._col_sums[j] += delta

    # ------------------------------------------------------------------
    # Batched access (the vectorized kernels' substrate)
    # ------------------------------------------------------------------
    def get_many(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Gather ``data[rows[k], cols[k]]`` for all ``k`` at once."""
        return self.data[rows, cols]

    def add_many(self, rows: np.ndarray, cols: np.ndarray, deltas: np.ndarray) -> None:
        """Scatter-add many deltas at once (duplicate positions accumulate)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        np.add.at(self.data, (rows, cols), deltas)
        if np.any(self.data[rows, cols] < 0):
            np.subtract.at(self.data, (rows, cols), deltas)
            raise ValueError("add_many would make a block matrix entry negative")
        np.add.at(self._row_sums, rows, deltas)
        np.add.at(self._col_sums, cols, deltas)

    def row_array(self, i: int) -> np.ndarray:
        """Dense view of row ``i`` (read-only by convention)."""
        return self.data[i]

    def col_array(self, j: int) -> np.ndarray:
        """Dense view of column ``j`` (read-only by convention)."""
        return self.data[:, j]

    def nonzero_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(i, j, value)`` arrays of the non-zero entries, row-major."""
        i, j = np.nonzero(self.data)
        return i, j, self.data[i, j]

    def row_entries(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row ``i``'s non-zero ``(columns, values)``, ascending columns."""
        row = self.data[i]
        cols = np.flatnonzero(row)
        return cols, row[cols]

    def col_entries(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column ``j``'s non-zero ``(rows, values)``, ascending rows."""
        col = self.data[:, j]
        rows = np.flatnonzero(col)
        return rows, col[rows]

    # ------------------------------------------------------------------
    # Row / column views (snapshots, unlike the dict backend's live views)
    # ------------------------------------------------------------------
    def row(self, i: int) -> Dict[int, int]:
        """Non-zero entries of row ``i`` as ``{column: count}`` (snapshot)."""
        cols = np.nonzero(self.data[i])[0]
        return {int(j): int(self.data[i, j]) for j in cols}

    def col(self, j: int) -> Dict[int, int]:
        """Non-zero entries of column ``j`` as ``{row: count}`` (snapshot)."""
        rows = np.nonzero(self.data[:, j])[0]
        return {int(i): int(self.data[i, j]) for i in rows}

    def row_sum(self, i: int) -> int:
        return int(self._row_sums[i])

    def col_sum(self, j: int) -> int:
        return int(self._col_sums[j])

    def row_sums(self) -> np.ndarray:
        return self._row_sums.copy()

    def col_sums(self) -> np.ndarray:
        return self._col_sums.copy()

    # ------------------------------------------------------------------
    # Whole-matrix operations
    # ------------------------------------------------------------------
    def total(self) -> int:
        """Sum of all entries (the number of edges in the graph)."""
        return int(self._row_sums.sum())

    def nnz(self) -> int:
        """Number of non-zero entries."""
        return int(np.count_nonzero(self.data))

    def entries(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over non-zero ``(i, j, value)`` entries, row-major."""
        i_arr, j_arr, v_arr = self.nonzero_arrays()
        for i, j, v in zip(i_arr.tolist(), j_arr.tolist(), v_arr.tolist()):
            yield i, j, v

    def copy(self) -> "CSRBlockMatrix":
        out = CSRBlockMatrix.__new__(CSRBlockMatrix)
        out.num_blocks = self.num_blocks
        out.data = self.data.copy()
        out._row_sums = self._row_sums.copy()
        out._col_sums = self._col_sums.copy()
        return out

    def to_dense(self) -> np.ndarray:
        return self.data.copy()

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "CSRBlockMatrix":
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("block matrix must be square")
        if np.any(matrix < 0):
            raise ValueError("block matrix entries must be non-negative")
        out = cls(matrix.shape[0])
        out.data[...] = matrix
        out._row_sums = out.data.sum(axis=1)
        out._col_sums = out.data.sum(axis=0)
        return out

    def check_consistent(self) -> None:
        """Verify the cached marginals against the data (used by tests)."""
        if np.any(self.data < 0):
            raise AssertionError("negative block matrix entry")
        if not np.array_equal(self._row_sums, self.data.sum(axis=1)):
            raise AssertionError("cached row sums out of sync")
        if not np.array_equal(self._col_sums, self.data.sum(axis=0)):
            raise AssertionError("cached column sums out of sync")

    def __eq__(self, other: object) -> bool:
        # Cross-backend comparison goes through the dense form so that a dict
        # and a CSR matrix holding the same counts compare equal.
        if hasattr(other, "to_dense") and hasattr(other, "num_blocks"):
            return self.num_blocks == other.num_blocks and np.array_equal(
                self.data, other.to_dense()
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRBlockMatrix(B={self.num_blocks}, nnz={self.nnz()})"
