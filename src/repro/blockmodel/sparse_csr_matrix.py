"""True sparse (scipy-free CSR/COO) block matrix: the scalable backend.

The paper's C++ implementation never densifies the ``B × B`` block matrix —
at the scales it targets the matrix would not fit in memory.  The fast
``"csr"`` backend of this reproduction *is* a dense numpy array, capped at
:data:`~repro.blockmodel.csr_matrix.MAX_DENSE_BLOCKS` blocks, so the
vectorized kernels were unavailable on exactly the large graphs where they
matter most.  :class:`SparseCSRBlockMatrix` removes that ceiling: memory is
``O(nnz + B)`` and every batched primitive the kernels need is served from
compressed-sparse arrays, without scipy.

Representation
--------------
Two compressed copies of the non-zero entries plus a mutation buffer:

base CSR (row-major)
    ``indptr`` / ``indices`` / ``data``: for each row, the non-zero columns
    in ascending order with their counts.  ``nnz_rows`` (the expanded row
    index per entry) and ``flat_keys`` (``row · B + col``, ascending) are
    kept alongside so ``get_many`` is one ``np.searchsorted`` gather.
transpose CSC (column-major)
    ``t_indptr`` / ``t_indices`` / ``t_data``: the same entries grouped by
    column with ascending rows — the paper's "keep the transpose for fast
    access along both rows and columns" (Section III-A, optimisation (b)).
COO delta buffer
    Mutations (``add`` / ``add_many``) do not rewrite the compressed
    arrays; they accumulate in per-row and per-column hash maps of
    *deltas* (conceptually a deduplicated COO triplet list).  Reads merge
    the buffer on the fly; :meth:`compact` folds it into fresh CSR/CSC
    arrays and runs automatically once the buffer grows past a fraction of
    ``nnz``.  Cached row/column sums are updated incrementally on every
    mutation, so marginals stay O(1) regardless of buffer state.

Equivalence
-----------
``nonzero_arrays`` / ``row_entries`` / ``col_entries`` / ``csr_structure``
enumerate entries in exactly the ascending orders the other backends use,
so the shared sequential-sum kernels produce bit-identical ΔDL floats and
the differential suite (``tests/differential/``) passes unchanged against
both the ``"dict"`` reference and the dense ``"csr"`` backend.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.blockmodel.backend import BlockMatrixBackend, register_backend

__all__ = ["SparseCSRBlockMatrix"]

#: The delta buffer is folded into the compressed arrays once it holds more
#: than ``max(_COMPACT_MIN, nnz >> _COMPACT_SHIFT)`` entries.
_COMPACT_MIN = 64
_COMPACT_SHIFT = 2


@register_backend("sparse_csr")
class SparseCSRBlockMatrix(BlockMatrixBackend):
    """A square sparse integer matrix in CSR + CSC form with a COO buffer."""

    supports_batched_kernels = True

    __slots__ = (
        "num_blocks",
        "indptr",
        "indices",
        "data",
        "nnz_rows",
        "flat_keys",
        "t_indptr",
        "t_indices",
        "t_data",
        "_row_sums",
        "_col_sums",
        "_delta_rows",
        "_delta_cols",
        "_delta_count",
    )

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        if num_blocks >= 2**31:
            # flat_keys packs (row, col) into one int64: row · B + col.
            raise ValueError("sparse_csr supports at most 2^31 - 1 blocks")
        self.num_blocks = int(num_blocks)
        empty = np.empty(0, dtype=np.int64)
        self.indptr = np.zeros(num_blocks + 1, dtype=np.int64)
        self.indices = empty
        self.data = empty
        self.nnz_rows = empty
        self.flat_keys = empty
        self.t_indptr = np.zeros(num_blocks + 1, dtype=np.int64)
        self.t_indices = empty
        self.t_data = empty
        self._row_sums = np.zeros(num_blocks, dtype=np.int64)
        self._col_sums = np.zeros(num_blocks, dtype=np.int64)
        self._delta_rows: Dict[int, Dict[int, int]] = {}
        self._delta_cols: Dict[int, Dict[int, int]] = {}
        self._delta_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_block_edges(
        cls,
        num_blocks: int,
        block_src: np.ndarray,
        block_dst: np.ndarray,
        weights: np.ndarray,
    ) -> "SparseCSRBlockMatrix":
        """Vectorized build from per-edge block endpoints."""
        out = cls(num_blocks)
        block_src = np.asarray(block_src, dtype=np.int64)
        block_dst = np.asarray(block_dst, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if block_src.size:
            keys = block_src * np.int64(num_blocks) + block_dst
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            values = np.bincount(inverse, weights=weights, minlength=unique_keys.shape[0])
            values = values.astype(np.int64)
            keep = values > 0
            out._rebuild(unique_keys[keep], values[keep])
        return out

    def _rebuild(self, flat_keys: np.ndarray, values: np.ndarray) -> None:
        """Install the compressed arrays from sorted flat keys and values.

        ``flat_keys`` must be strictly increasing (row-major entry order)
        and ``values`` strictly positive.
        """
        num_blocks = np.int64(self.num_blocks)
        i_arr = flat_keys // num_blocks if num_blocks else flat_keys
        j_arr = flat_keys % num_blocks if num_blocks else flat_keys
        self.flat_keys = flat_keys
        self.nnz_rows = i_arr
        self.indices = j_arr
        self.data = values
        self.indptr = np.zeros(self.num_blocks + 1, dtype=np.int64)
        np.cumsum(np.bincount(i_arr, minlength=self.num_blocks), out=self.indptr[1:])
        # Transpose: the same entries in (col, row) order.
        order = np.lexsort((i_arr, j_arr))
        self.t_indices = i_arr[order]
        self.t_data = values[order]
        self.t_indptr = np.zeros(self.num_blocks + 1, dtype=np.int64)
        np.cumsum(np.bincount(j_arr, minlength=self.num_blocks), out=self.t_indptr[1:])
        self._row_sums = np.bincount(
            i_arr, weights=values, minlength=self.num_blocks
        ).astype(np.int64)
        self._col_sums = np.bincount(
            j_arr, weights=values, minlength=self.num_blocks
        ).astype(np.int64)
        self._delta_rows = {}
        self._delta_cols = {}
        self._delta_count = 0

    # ------------------------------------------------------------------
    # Delta buffer
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Fold the COO delta buffer into fresh CSR/CSC arrays.

        Entries whose count reaches zero are dropped (matching the dict
        backend's behaviour, and keeping ``nonzero_arrays`` strictly
        positive).  Idempotent and logically a no-op: only the physical
        layout changes.
        """
        if not self._delta_count:
            return
        num_blocks = np.int64(self.num_blocks)
        d_keys = np.empty(self._delta_count, dtype=np.int64)
        d_vals = np.empty(self._delta_count, dtype=np.int64)
        pos = 0
        for i, row in self._delta_rows.items():
            for j, d in row.items():
                d_keys[pos] = i * num_blocks + j
                d_vals[pos] = d
                pos += 1
        all_keys = np.concatenate([self.flat_keys, d_keys])
        all_vals = np.concatenate([self.data, d_vals])
        unique_keys, inverse = np.unique(all_keys, return_inverse=True)
        values = np.bincount(inverse, weights=all_vals, minlength=unique_keys.shape[0])
        values = values.astype(np.int64)
        if values.size and int(values.min()) < 0:
            raise AssertionError("delta buffer drove a block matrix entry negative")
        keep = values > 0
        self._rebuild(unique_keys[keep], values[keep])

    def _maybe_compact(self) -> None:
        if self._delta_count > max(_COMPACT_MIN, self.data.shape[0] >> _COMPACT_SHIFT):
            self.compact()

    def _delta_at(self, i: int, j: int) -> int:
        row = self._delta_rows.get(i)
        if row is None:
            return 0
        return row.get(j, 0)

    # ------------------------------------------------------------------
    # Scalar element access
    # ------------------------------------------------------------------
    def _base_get(self, i: int, j: int) -> int:
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        pos = lo + int(np.searchsorted(self.indices[lo:hi], j))
        if pos < hi and int(self.indices[pos]) == j:
            return int(self.data[pos])
        return 0

    def get(self, i: int, j: int) -> int:
        """Return entry ``(i, j)`` (0 when absent)."""
        if not (0 <= i < self.num_blocks and 0 <= j < self.num_blocks):
            raise IndexError(f"block matrix entry ({i}, {j}) out of range")
        return self._base_get(i, j) + self._delta_at(i, j)

    def add(self, i: int, j: int, delta: int) -> None:
        """Add ``delta`` to entry ``(i, j)``; negative totals are an error."""
        if delta == 0:
            return
        i, j, delta = int(i), int(j), int(delta)
        if not (0 <= i < self.num_blocks and 0 <= j < self.num_blocks):
            raise IndexError(f"block matrix entry ({i}, {j}) out of range")
        new_val = self.get(i, j) + delta
        if new_val < 0:
            raise ValueError(f"block matrix entry ({i}, {j}) would become negative ({new_val})")
        self._bump_delta(i, j, delta)
        self._row_sums[i] += delta
        self._col_sums[j] += delta
        self._maybe_compact()

    def _bump_delta(self, i: int, j: int, delta: int) -> None:
        row = self._delta_rows.setdefault(i, {})
        new_d = row.get(j, 0) + delta
        col = self._delta_cols.setdefault(j, {})
        if new_d == 0:
            del row[j]
            del col[i]
            if not row:
                del self._delta_rows[i]
            if not col:
                del self._delta_cols[j]
            self._delta_count -= 1
        else:
            if j not in row:
                self._delta_count += 1
            row[j] = new_d
            col[i] = new_d

    def set(self, i: int, j: int, value: int) -> None:
        """Set entry ``(i, j)`` to ``value`` (must be non-negative)."""
        if value < 0:
            raise ValueError("block matrix entries must be non-negative")
        self.add(i, j, int(value) - self.get(int(i), int(j)))

    # ------------------------------------------------------------------
    # Batched access
    # ------------------------------------------------------------------
    def get_many(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Gather many entries at once: one searchsorted over the flat keys."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.size and not (
            0 <= int(rows.min())
            and int(rows.max()) < self.num_blocks
            and 0 <= int(cols.min())
            and int(cols.max()) < self.num_blocks
        ):
            # Without this, an out-of-range column would alias onto another
            # entry through the row·B + col flat key.
            raise IndexError("get_many indices out of range")
        out = np.zeros(rows.shape, dtype=np.int64)
        if self.flat_keys.size:
            keys = rows * np.int64(self.num_blocks) + cols
            pos = np.searchsorted(self.flat_keys, keys)
            pos_clipped = np.minimum(pos, self.flat_keys.shape[0] - 1)
            found = self.flat_keys[pos_clipped] == keys
            out = np.where(found, self.data[pos_clipped], 0)
        if self._delta_count:
            # Only positions whose row has buffered deltas need the overlay.
            delta_row_ids = np.fromiter(
                self._delta_rows.keys(), dtype=np.int64, count=len(self._delta_rows)
            )
            touched = np.flatnonzero(np.isin(rows, delta_row_ids))
            if touched.size:
                out = np.array(out, dtype=np.int64)
                flat_r = rows.ravel()
                flat_c = cols.ravel()
                flat_out = out.ravel()
                for k in touched.tolist():
                    flat_out[k] += self._delta_at(int(flat_r[k]), int(flat_c[k]))
        return out

    def add_many(self, rows: np.ndarray, cols: np.ndarray, deltas: np.ndarray) -> None:
        """Scatter-add many deltas (duplicate positions accumulate).

        Buffered in the COO delta overlay; the negativity invariant is
        enforced per final position, exactly like the other backends.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        # Aggregate duplicates first so the negativity check sees final
        # values, and validate every position before applying any — the
        # batch either applies completely or not at all, like the dense
        # backend's rollback.
        agg: Dict[Tuple[int, int], int] = {}
        for i, j, d in zip(rows.tolist(), cols.tolist(), deltas.tolist()):
            if d:
                key = (i, j)
                agg[key] = agg.get(key, 0) + d
        for (i, j), d in agg.items():
            if d == 0:
                continue
            if not (0 <= i < self.num_blocks and 0 <= j < self.num_blocks):
                raise IndexError(f"block matrix entry ({i}, {j}) out of range")
            if self.get(i, j) + d < 0:
                raise ValueError("add_many would make a block matrix entry negative")
        for (i, j), d in agg.items():
            if d == 0:
                continue
            self._bump_delta(i, j, d)
            self._row_sums[i] += d
            self._col_sums[j] += d
        self._maybe_compact()

    # ------------------------------------------------------------------
    # Row / column views
    # ------------------------------------------------------------------
    def row(self, i: int) -> Dict[int, int]:
        """Non-zero entries of row ``i`` as ``{column: count}`` (snapshot)."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        out = dict(zip(self.indices[lo:hi].tolist(), self.data[lo:hi].tolist()))
        delta = self._delta_rows.get(int(i))
        if delta:
            for j, d in delta.items():
                new_val = out.get(j, 0) + d
                if new_val:
                    out[j] = new_val
                else:
                    out.pop(j, None)
        return out

    def col(self, j: int) -> Dict[int, int]:
        """Non-zero entries of column ``j`` as ``{row: count}`` (snapshot)."""
        lo, hi = int(self.t_indptr[j]), int(self.t_indptr[j + 1])
        out = dict(zip(self.t_indices[lo:hi].tolist(), self.t_data[lo:hi].tolist()))
        delta = self._delta_cols.get(int(j))
        if delta:
            for i, d in delta.items():
                new_val = out.get(i, 0) + d
                if new_val:
                    out[i] = new_val
                else:
                    out.pop(i, None)
        return out

    def row_entries(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row ``i``'s ``(columns, values)``, ascending; zero-copy when clean."""
        i = int(i)
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        if i not in self._delta_rows:
            return self.indices[lo:hi], self.data[lo:hi]
        merged = self.row(i)
        cols = np.asarray(sorted(merged), dtype=np.int64)
        vals = np.asarray([merged[int(j)] for j in cols.tolist()], dtype=np.int64)
        return cols, vals

    def col_entries(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column ``j``'s ``(rows, values)``, ascending; zero-copy when clean."""
        j = int(j)
        lo, hi = int(self.t_indptr[j]), int(self.t_indptr[j + 1])
        if j not in self._delta_cols:
            return self.t_indices[lo:hi], self.t_data[lo:hi]
        merged = self.col(j)
        rows = np.asarray(sorted(merged), dtype=np.int64)
        vals = np.asarray([merged[int(i)] for i in rows.tolist()], dtype=np.int64)
        return rows, vals

    def row_sum(self, i: int) -> int:
        return int(self._row_sums[i])

    def col_sum(self, j: int) -> int:
        return int(self._col_sums[j])

    def row_sums(self) -> np.ndarray:
        return self._row_sums.copy()

    def col_sums(self) -> np.ndarray:
        return self._col_sums.copy()

    # ------------------------------------------------------------------
    # Whole-matrix operations
    # ------------------------------------------------------------------
    def total(self) -> int:
        """Sum of all entries (the number of edges in the graph)."""
        return int(self._row_sums.sum())

    def nnz(self) -> int:
        """Number of non-zero entries (compacts the buffer first)."""
        self.compact()
        return int(self.data.shape[0])

    def entries(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over non-zero ``(i, j, value)`` entries, row-major."""
        self.compact()
        for i, j, v in zip(self.nnz_rows.tolist(), self.indices.tolist(), self.data.tolist()):
            yield i, j, v

    def nonzero_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(i, j, value)`` arrays over the non-zero entries, row-major."""
        self.compact()
        return self.nnz_rows, self.indices, self.data

    def csr_structure(self) -> Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], ...]:
        """Zero-copy CSR/CSC views (the merge kernel's substrate)."""
        self.compact()
        return (
            (self.indices, self.data, self.indptr),
            (self.t_indices, self.t_data, self.t_indptr),
        )

    # ------------------------------------------------------------------
    # Clone / conversion / validation
    # ------------------------------------------------------------------
    def copy(self) -> "SparseCSRBlockMatrix":
        """Independent deep copy (compacts first so both sides start clean)."""
        self.compact()
        out = SparseCSRBlockMatrix.__new__(SparseCSRBlockMatrix)
        out.num_blocks = self.num_blocks
        out.indptr = self.indptr.copy()
        out.indices = self.indices.copy()
        out.data = self.data.copy()
        out.nnz_rows = self.nnz_rows.copy()
        out.flat_keys = self.flat_keys.copy()
        out.t_indptr = self.t_indptr.copy()
        out.t_indices = self.t_indices.copy()
        out.t_data = self.t_data.copy()
        out._row_sums = self._row_sums.copy()
        out._col_sums = self._col_sums.copy()
        out._delta_rows = {}
        out._delta_cols = {}
        out._delta_count = 0
        return out

    def to_dense(self) -> np.ndarray:
        """Materialise the full ``B × B`` array — tests and tiny graphs only."""
        self.compact()
        mat = np.zeros((self.num_blocks, self.num_blocks), dtype=np.int64)
        if self.data.size:
            mat[self.nnz_rows, self.indices] = self.data
        return mat

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "SparseCSRBlockMatrix":
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("block matrix must be square")
        if np.any(matrix < 0):
            raise ValueError("block matrix entries must be non-negative")
        out = cls(matrix.shape[0])
        i, j = np.nonzero(matrix)
        if i.size:
            keys = i.astype(np.int64) * np.int64(out.num_blocks) + j.astype(np.int64)
            out._rebuild(keys, matrix[i, j].astype(np.int64))
        return out

    def check_consistent(self) -> None:
        """Verify compressed arrays, transpose, buffer and marginals agree."""
        if np.any(self.data <= 0):
            raise AssertionError("base CSR holds a non-positive entry")
        if self.indptr.shape != (self.num_blocks + 1,) or int(self.indptr[-1]) != self.data.shape[0]:
            raise AssertionError("row pointer inconsistent with stored entries")
        for i in range(self.num_blocks):
            lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
            seg = self.indices[lo:hi]
            if seg.size > 1 and np.any(np.diff(seg) <= 0):
                raise AssertionError(f"row {i} columns not strictly increasing")
        expected_keys = self.nnz_rows * np.int64(self.num_blocks) + self.indices
        if not np.array_equal(self.flat_keys, expected_keys):
            raise AssertionError("flat keys out of sync with CSR arrays")
        # Transpose must hold exactly the same entries.
        order = np.lexsort((self.nnz_rows, self.indices))
        if not (
            np.array_equal(self.t_indices, self.nnz_rows[order])
            and np.array_equal(self.t_data, self.data[order])
        ):
            raise AssertionError("transpose out of sync with CSR arrays")
        # Effective (base + buffer) values must be non-negative and the
        # cached marginals must equal their recomputation.
        row_sums = np.bincount(
            self.nnz_rows, weights=self.data, minlength=self.num_blocks
        ).astype(np.int64)
        col_sums = np.bincount(
            self.indices, weights=self.data, minlength=self.num_blocks
        ).astype(np.int64)
        for i, row in self._delta_rows.items():
            for j, d in row.items():
                if self._delta_cols.get(j, {}).get(i) != d:
                    raise AssertionError(f"delta transpose mismatch at ({i}, {j})")
                if self._base_get(i, j) + d < 0:
                    raise AssertionError(f"negative effective entry at ({i}, {j})")
                row_sums[i] += d
                col_sums[j] += d
        if not np.array_equal(self._row_sums, row_sums):
            raise AssertionError("cached row sums out of sync")
        if not np.array_equal(self._col_sums, col_sums):
            raise AssertionError("cached column sums out of sync")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseCSRBlockMatrix):
            # Sparse-to-sparse comparison never densifies.
            self.compact()
            other.compact()
            return (
                self.num_blocks == other.num_blocks
                and np.array_equal(self.flat_keys, other.flat_keys)
                and np.array_equal(self.data, other.data)
            )
        if hasattr(other, "to_dense") and hasattr(other, "num_blocks"):
            return self.num_blocks == other.num_blocks and np.array_equal(
                self.to_dense(), other.to_dense()
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseCSRBlockMatrix(B={self.num_blocks}, nnz={self.data.shape[0]}, "
            f"buffered={self._delta_count})"
        )
