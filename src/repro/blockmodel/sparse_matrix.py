"""Sparse block (community-to-community edge count) matrix.

The paper's C++ implementation stores the blockmodel matrix as "a vector of
hashmap objects" and additionally keeps the transpose "for fast access along
both rows and columns" (Section III-A, optimisations (a) and (b)).  This
class is the Python equivalent: ``rows[i]`` and ``cols[j]`` are dictionaries
mapping the other index to the (strictly positive) edge count.

All mutation goes through :meth:`add`, which keeps the two views consistent
and drops entries that reach zero, so iteration only ever sees non-zero
counts.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.blockmodel.backend import BlockMatrixBackend, register_backend

__all__ = ["SparseBlockMatrix"]


@register_backend("dict")
class SparseBlockMatrix(BlockMatrixBackend):
    """A square sparse integer matrix with row and column hash-map views.

    The reference implementation of :class:`BlockMatrixBackend`: scalar
    access only (``supports_batched_kernels`` is False), registered as
    ``"dict"``.
    """

    __slots__ = ("num_blocks", "rows", "cols")

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        self.num_blocks = int(num_blocks)
        self.rows: List[Dict[int, int]] = [dict() for _ in range(num_blocks)]
        self.cols: List[Dict[int, int]] = [dict() for _ in range(num_blocks)]

    # ------------------------------------------------------------------
    # Element access
    # ------------------------------------------------------------------
    def get(self, i: int, j: int) -> int:
        """Return entry ``(i, j)`` (0 when absent)."""
        return self.rows[i].get(j, 0)

    def add(self, i: int, j: int, delta: int) -> None:
        """Add ``delta`` to entry ``(i, j)``; negative totals are an error."""
        if delta == 0:
            return
        row = self.rows[i]
        new_val = row.get(j, 0) + delta
        if new_val < 0:
            raise ValueError(f"block matrix entry ({i}, {j}) would become negative ({new_val})")
        if new_val == 0:
            row.pop(j, None)
            self.cols[j].pop(i, None)
        else:
            row[j] = new_val
            self.cols[j][i] = new_val

    def set(self, i: int, j: int, value: int) -> None:
        """Set entry ``(i, j)`` to ``value`` (must be non-negative)."""
        if value < 0:
            raise ValueError("block matrix entries must be non-negative")
        if value == 0:
            self.rows[i].pop(j, None)
            self.cols[j].pop(i, None)
        else:
            self.rows[i][j] = value
            self.cols[j][i] = value

    # ------------------------------------------------------------------
    # Row / column views
    # ------------------------------------------------------------------
    def row(self, i: int) -> Dict[int, int]:
        """The non-zero entries of row ``i`` as ``{column: count}`` (live view)."""
        return self.rows[i]

    def col(self, j: int) -> Dict[int, int]:
        """The non-zero entries of column ``j`` as ``{row: count}`` (live view)."""
        return self.cols[j]

    def row_sum(self, i: int) -> int:
        return sum(self.rows[i].values())

    def col_sum(self, j: int) -> int:
        return sum(self.cols[j].values())

    def row_sums(self) -> np.ndarray:
        return np.asarray([self.row_sum(i) for i in range(self.num_blocks)], dtype=np.int64)

    def col_sums(self) -> np.ndarray:
        return np.asarray([self.col_sum(j) for j in range(self.num_blocks)], dtype=np.int64)

    # ------------------------------------------------------------------
    # Whole-matrix operations
    # ------------------------------------------------------------------
    def total(self) -> int:
        """Sum of all entries (the number of edges in the graph)."""
        return sum(sum(r.values()) for r in self.rows)

    def nnz(self) -> int:
        """Number of non-zero entries."""
        return sum(len(r) for r in self.rows)

    def entries(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over non-zero ``(i, j, value)`` entries, row-major."""
        for i, row in enumerate(self.rows):
            for j, val in row.items():
                yield i, j, val

    def nonzero_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(i, j, value)`` arrays over the non-zero entries, row-major.

        Same contract as :meth:`CSRBlockMatrix.nonzero_arrays`, including
        ascending column order within each row — the two backends must emit
        identically-ordered arrays so that vectorized float reductions over
        them (e.g. the log-likelihood) stay bit-identical across backends.
        """
        count = self.nnz()
        i_arr = np.fromiter(
            (i for i, row in enumerate(self.rows) for _ in row), dtype=np.int64, count=count
        )
        j_arr = np.fromiter(
            (j for row in self.rows for j in sorted(row)), dtype=np.int64, count=count
        )
        v_arr = np.fromiter(
            (row[j] for row in self.rows for j in sorted(row)), dtype=np.int64, count=count
        )
        return i_arr, j_arr, v_arr

    def copy(self) -> "SparseBlockMatrix":
        out = SparseBlockMatrix(self.num_blocks)
        out.rows = [dict(r) for r in self.rows]
        out.cols = [dict(c) for c in self.cols]
        return out

    def to_dense(self) -> np.ndarray:
        mat = np.zeros((self.num_blocks, self.num_blocks), dtype=np.int64)
        for i, j, val in self.entries():
            mat[i, j] = val
        return mat

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "SparseBlockMatrix":
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("block matrix must be square")
        out = cls(matrix.shape[0])
        for i, j in zip(*np.nonzero(matrix)):
            out.set(int(i), int(j), int(matrix[i, j]))
        return out

    def check_consistent(self) -> None:
        """Verify that row and column views agree (used by tests)."""
        for i, row in enumerate(self.rows):
            for j, val in row.items():
                if self.cols[j].get(i, 0) != val:
                    raise AssertionError(f"transpose mismatch at ({i}, {j})")
        for j, col in enumerate(self.cols):
            for i, val in col.items():
                if self.rows[i].get(j, 0) != val:
                    raise AssertionError(f"row mismatch at ({i}, {j})")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseBlockMatrix):
            return self.num_blocks == other.num_blocks and self.rows == other.rows
        if hasattr(other, "to_dense") and hasattr(other, "num_blocks"):
            # Cross-backend comparison (e.g. against a CSRBlockMatrix).
            return self.num_blocks == other.num_blocks and np.array_equal(
                self.to_dense(), other.to_dense()
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SparseBlockMatrix(B={self.num_blocks}, nnz={self.nnz()})"
