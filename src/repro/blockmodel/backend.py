"""The formal block-matrix storage protocol and its backend registry.

Every blockmodel storage backend — the hash-map reference
(:class:`~repro.blockmodel.sparse_matrix.SparseBlockMatrix`), the dense
vectorized array (:class:`~repro.blockmodel.csr_matrix.CSRBlockMatrix`) and
the true-sparse CSR/COO representation
(:class:`~repro.blockmodel.sparse_csr_matrix.SparseCSRBlockMatrix`) — is an
implementation of :class:`BlockMatrixBackend`, registered under a stable
name with :func:`register_backend`.  The registry mirrors the strategy
registry of :mod:`repro.api`: ``SBPConfig.matrix_backend`` and
``Blockmodel.from_graph(..., matrix_backend=...)`` are validated against it
(never against a hard-coded literal set), unknown names raise a
:class:`ValueError` listing the registered backends, and new storage
engines plug in by registering a class instead of editing dispatch sites.

The protocol has four layers:

construction
    ``__init__(num_blocks)`` for an empty matrix and
    :meth:`~BlockMatrixBackend.from_block_edges` for the vectorized
    build-from-edge-arrays path used by ``Blockmodel.from_assignment``.
element access and mutation
    ``get`` / ``add`` / ``set`` plus the batched ``get_many`` /
    ``add_many`` used by the vectorized kernels.  Negative entries are
    always an error, enforced at mutation time.
cached marginals and views
    ``row`` / ``col`` dict snapshots, ``row_entries`` / ``col_entries``
    sorted sparse views, and the row/column sums the proposal
    distributions sample against.
clone / compact
    ``copy`` produces an independent deep copy; :meth:`compact` folds any
    pending write buffer into the primary representation (a no-op for
    backends without one).

Capability flags instead of ``hasattr`` probing: the delta kernels
(:func:`repro.blockmodel.deltas.delta_dl_for_moves`,
:func:`repro.blockmodel.deltas.delta_dl_for_merges`,
:func:`repro.core.proposals.hastings_corrections`) and the drivers dispatch
on :attr:`BlockMatrixBackend.supports_batched_kernels`.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Iterator, List, Tuple, Type

import numpy as np

__all__ = [
    "BlockMatrixBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "backend_registry_hint",
]


class BlockMatrixBackend(abc.ABC):
    """Abstract base of every block (community-to-community) matrix backend.

    A backend stores a square ``B × B`` matrix of non-negative integer edge
    counts.  Implementations are interchangeable inside
    :class:`~repro.blockmodel.blockmodel.Blockmodel`; the cross-backend
    differential suite (``tests/differential/``) holds them to a stronger
    contract than the type signatures: under a fixed seed, every registered
    backend must drive the SBP pipeline through **bit-identical** states
    (same merge selections, same assignments, same description-length
    floats).  The ordering guarantees that make this possible are part of
    the protocol: ``nonzero_arrays`` / ``row_entries`` / ``col_entries``
    enumerate entries in ascending index order on every backend.
    """

    __slots__ = ()

    #: Registry name (``"dict"`` / ``"csr"`` / ``"sparse_csr"`` / ...).
    backend: str = "abstract"

    #: Whether the vectorized whole-batch kernels (``delta_dl_for_moves``,
    #: ``delta_dl_for_merges``, ``hastings_corrections``) can run on this
    #: backend.  Requires ``get_many`` / ``add_many`` / ``csr_structure``
    #: to be efficient, not merely present.
    supports_batched_kernels: bool = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_block_edges(
        cls,
        num_blocks: int,
        block_src: np.ndarray,
        block_dst: np.ndarray,
        weights: np.ndarray,
    ) -> "BlockMatrixBackend":
        """Build from per-edge block endpoints.

        The default accumulates scalar :meth:`add` calls; array backends
        override this with a vectorized aggregation.
        """
        out = cls(num_blocks)  # type: ignore[call-arg]
        for i, j, w in zip(
            np.asarray(block_src).tolist(),
            np.asarray(block_dst).tolist(),
            np.asarray(weights).tolist(),
        ):
            out.add(i, j, w)
        return out

    # ------------------------------------------------------------------
    # Element access / mutation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def get(self, i: int, j: int) -> int:
        """Return entry ``(i, j)`` (0 when absent)."""

    @abc.abstractmethod
    def add(self, i: int, j: int, delta: int) -> None:
        """Add ``delta`` to entry ``(i, j)``; negative totals are an error."""

    @abc.abstractmethod
    def set(self, i: int, j: int, value: int) -> None:
        """Set entry ``(i, j)`` to ``value`` (must be non-negative)."""

    def get_many(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Gather ``[(i, j)]`` entries as an int64 array (batched ``get``)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        return np.asarray(
            [self.get(int(i), int(j)) for i, j in zip(rows.tolist(), cols.tolist())],
            dtype=np.int64,
        )

    def add_many(self, rows: np.ndarray, cols: np.ndarray, deltas: np.ndarray) -> None:
        """Scatter-add many deltas at once (duplicate positions accumulate)."""
        for i, j, d in zip(
            np.asarray(rows).tolist(), np.asarray(cols).tolist(), np.asarray(deltas).tolist()
        ):
            self.add(i, j, d)

    # ------------------------------------------------------------------
    # Row / column views
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def row(self, i: int) -> Dict[int, int]:
        """Non-zero entries of row ``i`` as ``{column: count}``."""

    @abc.abstractmethod
    def col(self, j: int) -> Dict[int, int]:
        """Non-zero entries of column ``j`` as ``{row: count}``."""

    def row_entries(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Row ``i``'s non-zero ``(columns, values)`` in ascending column order.

        The sampling paths (:meth:`Blockmodel.sample_neighbor_block`) build
        cumulative sums over these arrays; ascending order on every backend
        is what keeps a given RNG draw selecting the same block regardless
        of storage.
        """
        row = self.row(i)
        cols = np.asarray(sorted(row), dtype=np.int64)
        vals = np.asarray([row[int(j)] for j in cols.tolist()], dtype=np.int64)
        return cols, vals

    def col_entries(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """Column ``j``'s non-zero ``(rows, values)`` in ascending row order."""
        col = self.col(j)
        rows = np.asarray(sorted(col), dtype=np.int64)
        vals = np.asarray([col[int(i)] for i in rows.tolist()], dtype=np.int64)
        return rows, vals

    @abc.abstractmethod
    def row_sum(self, i: int) -> int: ...

    @abc.abstractmethod
    def col_sum(self, j: int) -> int: ...

    @abc.abstractmethod
    def row_sums(self) -> np.ndarray: ...

    @abc.abstractmethod
    def col_sums(self) -> np.ndarray: ...

    # ------------------------------------------------------------------
    # Whole-matrix operations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def total(self) -> int:
        """Sum of all entries (the number of edges in the graph)."""

    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of non-zero entries."""

    @abc.abstractmethod
    def entries(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over non-zero ``(i, j, value)`` entries, row-major."""

    @abc.abstractmethod
    def nonzero_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(i, j, value)`` arrays over the non-zero entries, row-major.

        Ascending column order within each row is required on every backend
        so that vectorized float reductions over the arrays (e.g. the
        log-likelihood) stay bit-identical across backends.
        """

    def csr_structure(self) -> Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], ...]:
        """Row- and column-major CSR views of the non-zero entries.

        Returns ``((row_j, row_v, row_ptr), (col_i, col_v, col_ptr))``: the
        non-zeros in row-major order with a row pointer, and the same
        entries in column-major order with a column pointer.  This is the
        substrate of the batched merge kernel
        (:func:`repro.blockmodel.deltas.delta_dl_for_merges`); backends
        that already store CSR/CSC arrays override it to return views.
        """
        nz_i, nz_j, nz_v = self.nonzero_arrays()
        num_blocks = self.num_blocks  # type: ignore[attr-defined]
        row_ptr = np.zeros(num_blocks + 1, dtype=np.int64)
        np.cumsum(np.bincount(nz_i, minlength=num_blocks), out=row_ptr[1:])
        order = np.lexsort((nz_i, nz_j))
        col_i, col_v = nz_i[order], nz_v[order]
        col_ptr = np.zeros(num_blocks + 1, dtype=np.int64)
        np.cumsum(np.bincount(nz_j, minlength=num_blocks), out=col_ptr[1:])
        return (nz_j, nz_v, row_ptr), (col_i, col_v, col_ptr)

    # ------------------------------------------------------------------
    # Clone / compact
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def copy(self) -> "BlockMatrixBackend":
        """An independent deep copy (mutating either side affects only it)."""

    def compact(self) -> None:
        """Fold any pending write buffer into the primary representation.

        A no-op for backends without a buffer.  Compaction never changes
        the logical matrix, only its physical layout.
        """

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialise the full ``B × B`` array (tests and tiny graphs only)."""

    @abc.abstractmethod
    def check_consistent(self) -> None:
        """Verify internal invariants, raising ``AssertionError`` on damage."""


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, Type[BlockMatrixBackend]] = {}


def register_backend(name: str) -> Callable[[type], type]:
    """Class decorator registering a storage backend under ``name``.

    Re-registering a name replaces the previous entry (tests and downstream
    code can shadow a built-in).  The class's ``backend`` attribute is set
    to ``name`` so instances always report their registry identity.
    """

    def _register(cls: type) -> type:
        if not (isinstance(cls, type) and issubclass(cls, BlockMatrixBackend)):
            raise TypeError(
                f"backend {name!r} must be a BlockMatrixBackend subclass, "
                f"got {cls!r}"
            )
        cls.backend = name
        _BACKENDS[str(name)] = cls
        return cls

    return _register


def available_backends() -> List[str]:
    """Names of every registered backend, in registration order."""
    return list(_BACKENDS)


def backend_registry_hint() -> str:
    """Human-readable list of registered backends for error messages."""
    return ", ".join(repr(name) for name in available_backends())


def get_backend(name: str) -> Type[BlockMatrixBackend]:
    """Resolve a backend name to its storage class.

    Unknown names raise a :class:`ValueError` listing the registry, the
    same convention as strategy and preset lookups in :mod:`repro.api`.
    """
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown matrix_backend {name!r}; registered backends: "
            f"({backend_registry_hint()})"
        )
    return _BACKENDS[name]
