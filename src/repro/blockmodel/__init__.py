"""Blockmodel substrate: the degree-corrected SBM state and its entropy.

This package implements the data structures the paper's C++ implementation
optimises (Section III-A):

* a **block matrix protocol** (:mod:`repro.blockmodel.backend`) with a
  registry of interchangeable storage backends: ``"dict"`` (hash maps +
  transpose, the reference), ``"csr"`` (dense numpy, vectorized kernels)
  and ``"sparse_csr"`` (scipy-free CSR/CSC + COO buffer — the vectorized
  kernels without the dense memory bound),
* the **sparse block matrix** stored as a vector of hash maps *plus its
  transpose* for fast row- and column-wise access (optimisations (a)/(b)),
* **sparse deltas** so that the change in description length of a proposed
  vertex move or block merge touches only the affected rows/columns
  (optimisation (c)),
* the **description length** objective of Eqs. (1)-(2), both as an exact
  recomputation and as delta forms (the two are cross-checked in the tests).

The pointer-based merge tracking (optimisation (d)) lives in
:mod:`repro.core.merges` because it belongs to the block-merge phase.
"""

from repro.blockmodel.backend import (
    BlockMatrixBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.blockmodel.sparse_matrix import SparseBlockMatrix
from repro.blockmodel.csr_matrix import CSRBlockMatrix, MAX_DENSE_BLOCKS
from repro.blockmodel.sparse_csr_matrix import SparseCSRBlockMatrix
from repro.blockmodel.blockmodel import Blockmodel, VertexBlockCounts, MATRIX_BACKENDS
from repro.blockmodel.entropy import (
    blockmodel_entropy_term,
    description_length,
    log_likelihood,
    model_complexity_term,
    normalized_description_length,
    null_description_length,
)
from repro.blockmodel.deltas import (
    delta_dl_for_merge,
    delta_dl_for_move,
    delta_dl_for_moves,
    BatchMoveEvaluation,
    MoveDelta,
)

__all__ = [
    "BlockMatrixBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "SparseBlockMatrix",
    "CSRBlockMatrix",
    "SparseCSRBlockMatrix",
    "MAX_DENSE_BLOCKS",
    "MATRIX_BACKENDS",
    "Blockmodel",
    "VertexBlockCounts",
    "log_likelihood",
    "description_length",
    "normalized_description_length",
    "null_description_length",
    "model_complexity_term",
    "blockmodel_entropy_term",
    "delta_dl_for_move",
    "delta_dl_for_moves",
    "delta_dl_for_merge",
    "BatchMoveEvaluation",
    "MoveDelta",
]
