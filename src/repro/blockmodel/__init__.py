"""Blockmodel substrate: the degree-corrected SBM state and its entropy.

This package implements the data structures the paper's C++ implementation
optimises (Section III-A):

* a **sparse block matrix** stored as a vector of hash maps *plus its
  transpose* for fast row- and column-wise access (optimisations (a)/(b)),
* **sparse deltas** so that the change in description length of a proposed
  vertex move or block merge touches only the affected rows/columns
  (optimisation (c)),
* the **description length** objective of Eqs. (1)-(2), both as an exact
  recomputation and as delta forms (the two are cross-checked in the tests).

The pointer-based merge tracking (optimisation (d)) lives in
:mod:`repro.core.merges` because it belongs to the block-merge phase.
"""

from repro.blockmodel.sparse_matrix import SparseBlockMatrix
from repro.blockmodel.csr_matrix import CSRBlockMatrix, MAX_DENSE_BLOCKS
from repro.blockmodel.blockmodel import Blockmodel, VertexBlockCounts, MATRIX_BACKENDS
from repro.blockmodel.entropy import (
    blockmodel_entropy_term,
    description_length,
    log_likelihood,
    model_complexity_term,
    normalized_description_length,
    null_description_length,
)
from repro.blockmodel.deltas import (
    delta_dl_for_merge,
    delta_dl_for_move,
    delta_dl_for_moves,
    BatchMoveEvaluation,
    MoveDelta,
)

__all__ = [
    "SparseBlockMatrix",
    "CSRBlockMatrix",
    "MAX_DENSE_BLOCKS",
    "MATRIX_BACKENDS",
    "Blockmodel",
    "VertexBlockCounts",
    "log_likelihood",
    "description_length",
    "normalized_description_length",
    "null_description_length",
    "model_complexity_term",
    "blockmodel_entropy_term",
    "delta_dl_for_move",
    "delta_dl_for_moves",
    "delta_dl_for_merge",
    "BatchMoveEvaluation",
    "MoveDelta",
]
