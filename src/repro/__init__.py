"""repro — Exact Distributed Stochastic Block Partitioning (EDiSt).

A from-scratch Python reproduction of *"Exact Distributed Stochastic Block
Partitioning"* (Wanye, Gleyzer, Kao, Feng — IEEE CLUSTER 2023), including:

* the sequential / shared-memory SBP baseline (block-merge + MCMC phases
  with a golden-ratio search over the number of communities),
* the divide-and-conquer distributed baseline **DC-SBP**,
* the paper's contribution **EDiSt**, which replicates the blockmodel on
  every rank and synchronises it with periodic all-gathers,
* every substrate the evaluation needs: DCSBM graph generators, a simulated
  MPI communicator, evaluation metrics (NMI, DL_norm, island analysis), and
  a benchmark harness that regenerates every table and figure.

Quick start::

    from repro import challenge_graph, edist

    graph = challenge_graph("20k-hard", scale=0.05, seed=0)
    result = edist(graph, num_ranks=4)
    print(result.num_communities, result.nmi())
"""

from repro.core import (
    SBPConfig,
    SBPResult,
    stochastic_block_partition,
    divide_and_conquer_sbp,
    edist,
)
from repro.graphs import Graph
from repro.graphs.generators import (
    challenge_graph,
    parameter_sweep_graph,
    scaling_graph,
    realworld_graph,
    generate_dcsbm_graph,
    DCSBMSpec,
)
from repro.evaluation import normalized_mutual_information, normalized_description_length

__version__ = "1.0.0"

__all__ = [
    "SBPConfig",
    "SBPResult",
    "stochastic_block_partition",
    "divide_and_conquer_sbp",
    "edist",
    "Graph",
    "challenge_graph",
    "parameter_sweep_graph",
    "scaling_graph",
    "realworld_graph",
    "generate_dcsbm_graph",
    "DCSBMSpec",
    "normalized_mutual_information",
    "normalized_description_length",
    "__version__",
]
