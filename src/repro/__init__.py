"""repro — Exact Distributed Stochastic Block Partitioning (EDiSt).

A from-scratch Python reproduction of *"Exact Distributed Stochastic Block
Partitioning"* (Wanye, Gleyzer, Kao, Feng — IEEE CLUSTER 2023), including:

* the sequential / shared-memory SBP baseline (block-merge + MCMC phases
  with a golden-ratio search over the number of communities),
* the divide-and-conquer distributed baseline **DC-SBP**,
* the paper's contribution **EDiSt**, which replicates the blockmodel on
  every rank and synchronises it with periodic all-gathers,
* every substrate the evaluation needs: DCSBM graph generators, a simulated
  MPI communicator, evaluation metrics (NMI, DL_norm, island analysis), and
  a benchmark harness that regenerates every table and figure.

The public API is the :func:`partition` facade over the strategy registry —
the paper's "same algorithm, different distribution strategy" comparison
expressed as one entry point::

    from repro import challenge_graph, partition

    graph = challenge_graph("20k-hard", scale=0.05, seed=0)
    result = partition(graph, strategy="edist", config="fast", num_ranks=4)
    print(result.num_communities, result.nmi())

The pre-registry entry points (``stochastic_block_partition``,
``divide_and_conquer_sbp``, ``edist``) remain importable from here but are
deprecated shims over :func:`partition`.
"""

import warnings as _warnings

from repro.api import (
    Partitioner,
    RunContext,
    RunHandle,
    RunObserver,
    Strategy,
    available_presets,
    available_strategies,
    config_preset,
    get_strategy,
    partition,
    register_config_preset,
    register_strategy,
)
from repro.core import SBPConfig, SBPResult
from repro.core import dcsbp as _dcsbp_module
from repro.core import edist as _edist_module
from repro.core import sbp as _sbp_module
from repro.graphs import Graph
from repro.graphs.generators import (
    challenge_graph,
    parameter_sweep_graph,
    scaling_graph,
    realworld_graph,
    generate_dcsbm_graph,
    DCSBMSpec,
)
from repro.evaluation import normalized_mutual_information, normalized_description_length

__version__ = "2.0.0"


def _deprecated(old_name: str, replacement: str) -> None:
    _warnings.warn(
        f"repro.{old_name}() is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def stochastic_block_partition(graph, config=None, **kwargs):
    """Deprecated shim for the ``"sequential"`` strategy.

    Use ``partition(graph, strategy="sequential", config=config)``.
    Driver-internal keyword arguments (``initial_blockmodel`` …) are
    forwarded to the core driver unchanged.
    """
    _deprecated("stochastic_block_partition", "repro.partition(graph, strategy='sequential', ...)")
    if kwargs:
        return _sbp_module.stochastic_block_partition(graph, config, **kwargs)
    return partition(graph, strategy="sequential", config=config)


def divide_and_conquer_sbp(graph, num_ranks, config=None, **kwargs):
    """Deprecated shim for the ``"dcsbp"`` strategy.

    Use ``partition(graph, strategy="dcsbp", config=config, num_ranks=n)``.
    """
    _deprecated("divide_and_conquer_sbp", "repro.partition(graph, strategy='dcsbp', ...)")
    if kwargs:
        return _dcsbp_module.divide_and_conquer_sbp(graph, num_ranks, config, **kwargs)
    return partition(graph, strategy="dcsbp", config=config, num_ranks=num_ranks)


def edist(graph, num_ranks, config=None, **kwargs):
    """Deprecated shim for the ``"edist"`` strategy.

    Use ``partition(graph, strategy="edist", config=config, num_ranks=n)``.
    """
    _deprecated("edist", "repro.partition(graph, strategy='edist', ...)")
    if kwargs:
        return _edist_module.edist(graph, num_ranks, config, **kwargs)
    return partition(graph, strategy="edist", config=config, num_ranks=num_ranks)


__all__ = [
    # The unified facade
    "partition",
    "Partitioner",
    "RunHandle",
    "RunContext",
    "RunObserver",
    "Strategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "register_config_preset",
    "config_preset",
    "available_presets",
    "SBPConfig",
    "SBPResult",
    # Deprecated pre-registry entry points (shims over partition())
    "stochastic_block_partition",
    "divide_and_conquer_sbp",
    "edist",
    # Graphs and evaluation
    "Graph",
    "challenge_graph",
    "parameter_sweep_graph",
    "scaling_graph",
    "realworld_graph",
    "generate_dcsbm_graph",
    "DCSBMSpec",
    "normalized_mutual_information",
    "normalized_description_length",
    "__version__",
]
