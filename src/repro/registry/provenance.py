"""Run provenance: code revision, host, and process peak memory.

Registry records must be auditable after the fact, so every one carries the
exact git revision (plus a dirty-tree flag — a timing from an uncommitted
tree is not attributable to any commit) and the host it ran on (wall-clock
comparisons are only meaningful per machine).  All helpers degrade gracefully
outside a git checkout or on exotic platforms: they return sentinels rather
than raising, because provenance collection must never break a benchmark.
"""

from __future__ import annotations

import functools
import socket
import subprocess
import sys
from typing import Dict

__all__ = ["collect_provenance", "git_revision", "peak_rss_mb"]


@functools.lru_cache(maxsize=1)
def git_revision() -> Dict[str, object]:
    """``{"git_rev": <sha or "unknown">, "git_dirty": <bool>}`` for the cwd.

    Cached per process: the revision cannot change under a running benchmark
    session, and shelling out twice per benchmark would be pure overhead.
    """
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return {"git_rev": "unknown", "git_dirty": False}
    return {"git_rev": rev or "unknown", "git_dirty": bool(status.strip())}


def peak_rss_mb() -> float:
    """Peak resident set size of this process in MiB (0.0 when unavailable).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; platforms without the
    ``resource`` module report 0.0.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return usage / (1024.0 * 1024.0)
    return usage / 1024.0


def collect_provenance() -> Dict[str, object]:
    """Everything a :class:`~repro.registry.record.RunRecord` needs about
    *where* and *on what code* it ran: git rev, dirty flag, hostname."""
    out = dict(git_revision())
    try:
        out["hostname"] = socket.gethostname() or "unknown"
    except OSError:  # pragma: no cover - defensive
        out["hostname"] = "unknown"
    return out
