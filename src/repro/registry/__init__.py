"""repro.registry — the append-only experiment run registry + regression gate.

Every benchmark invocation appends one schema-validated
:class:`~repro.registry.record.RunRecord` (config, preset, seed, git rev +
dirty flag, hostname, per-phase timings, peak RSS, wall-clock) to
``results/registry/<experiment>.jsonl``; nothing is ever overwritten, so the
performance trajectory of the codebase stays auditable across PRs.

Layers:

* :mod:`repro.registry.record`      — the validated ``RunRecord`` schema;
* :mod:`repro.registry.provenance`  — git rev / dirty flag / hostname / RSS;
* :mod:`repro.registry.store`       — JSONL append / read-back / summaries;
* :mod:`repro.registry.phases`      — per-phase timing collector fed by the
  harness's ``run_algorithm`` during a measured benchmark call;
* :mod:`repro.registry.gate`        — the perf-regression gate CI consumes
  (``scripts/regression_gate.py`` is its CLI).

The whole package is stdlib-only, so gate tooling can read registry history
without the numeric stack.
"""

from repro.registry.record import SCHEMA_VERSION, RunRecord, utc_timestamp
from repro.registry.phases import drain_phase_log, record_phases, reset_phase_log
from repro.registry.provenance import collect_provenance, git_revision, peak_rss_mb
from repro.registry.store import (
    append_run,
    config_fingerprint,
    latest_run,
    read_runs,
    registry_dir,
    run_path,
    summarize,
)
from repro.registry.gate import (
    DEFAULT_TOLERANCE,
    GATED_EXPERIMENTS,
    GateCheck,
    GateReport,
    default_baselines_path,
    evaluate_gate,
    load_baselines,
    refresh_baselines,
)

__all__ = [
    "RunRecord",
    "SCHEMA_VERSION",
    "utc_timestamp",
    "collect_provenance",
    "git_revision",
    "peak_rss_mb",
    "reset_phase_log",
    "drain_phase_log",
    "record_phases",
    "append_run",
    "read_runs",
    "latest_run",
    "summarize",
    "config_fingerprint",
    "registry_dir",
    "run_path",
    "GATED_EXPERIMENTS",
    "DEFAULT_TOLERANCE",
    "GateCheck",
    "GateReport",
    "evaluate_gate",
    "load_baselines",
    "refresh_baselines",
    "default_baselines_path",
]
