"""In-process collector for per-phase timings of executed runs.

The benchmark modules call harness ``run_*`` functions that return plain row
dictionaries, not :class:`~repro.core.results.SBPResult` objects — so the
per-phase breakdown each result carries would be lost by the time
``bench_utils.run_once`` builds the registry :class:`RunRecord`.  This module
closes that gap without threading state through every harness function:
``run_algorithm`` reports each *freshly executed* result's ``phase_seconds``
here, and ``run_once`` brackets its measured call with
:func:`reset_phase_log` / :func:`drain_phase_log` to pick up the totals.

Only fresh executions are logged (memoisation cache hits are not): the
collected totals then describe work actually performed inside the measured
wall-clock window, so ``RunRecord.phase_seconds`` stays consistent with
``RunRecord.wall_seconds``.

When no log is active (the default outside ``run_once``), reporting is a
no-op, so library users pay nothing.  Stdlib-only, like the rest of
:mod:`repro.registry`.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional

__all__ = ["reset_phase_log", "drain_phase_log", "record_phases"]

_LOCK = threading.Lock()
#: ``None`` means "no log active"; a dict accumulates phase → total seconds.
_TOTALS: Optional[Dict[str, float]] = None


def reset_phase_log() -> None:
    """Start (or restart) collecting phase timings from executed runs."""
    global _TOTALS
    with _LOCK:
        _TOTALS = {}


def drain_phase_log() -> Dict[str, float]:
    """Stop collecting and return the accumulated per-phase totals.

    Returns an empty dict when no log was active or nothing ran.
    """
    global _TOTALS
    with _LOCK:
        totals = dict(_TOTALS) if _TOTALS is not None else {}
        _TOTALS = None
    return totals


def record_phases(phase_seconds: Optional[Mapping[str, float]]) -> None:
    """Accumulate one executed run's ``phase_seconds`` into the active log.

    No-op when no log is active or ``phase_seconds`` is empty; non-numeric
    values are skipped rather than raising, since the caller is hot-path
    harness code.
    """
    if not phase_seconds:
        return
    with _LOCK:
        if _TOTALS is None:
            return
        for phase, seconds in phase_seconds.items():
            if isinstance(seconds, bool) or not isinstance(seconds, (int, float)):
                continue
            _TOTALS[str(phase)] = _TOTALS.get(str(phase), 0.0) + float(seconds)
