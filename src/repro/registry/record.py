"""The :class:`RunRecord` schema — one validated row of the experiment registry.

Every benchmark invocation appends exactly one record to the append-only
registry (:mod:`repro.registry.store`).  The record captures everything needed
to audit a reproduction claim after the fact: the full algorithm configuration
(:meth:`repro.core.config.SBPConfig.to_dict`), the sizing preset and seed, the
exact code revision (git rev + dirty flag) and host, the per-phase timings the
run reported, peak RSS, and the benchmark's wall-clock.

Validation follows the construction-time convention established by
``SBPConfig`` and the backend/transport registries: every error names the
offending field, and :meth:`RunRecord.from_dict` rejects unknown *and* missing
fields rather than silently dropping or defaulting them, so stale or typo'd
registry lines surface immediately.

This module is deliberately stdlib-only so the regression gate
(``scripts/regression_gate.py``) can load registry history without importing
the numeric stack.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field, fields
from datetime import datetime, timezone
from typing import Dict, Optional

__all__ = ["RunRecord", "SCHEMA_VERSION", "utc_timestamp"]

#: Bumped whenever a field is added/removed/retyped; ``from_dict`` refuses
#: records written by a *newer* schema so old readers fail loudly.
SCHEMA_VERSION = 1

#: Experiment names double as registry file names (``<experiment>.jsonl``),
#: so they are restricted to a filesystem-safe alphabet.
_EXPERIMENT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def utc_timestamp() -> str:
    """The current time as an ISO-8601 UTC string (registry convention)."""
    return datetime.now(timezone.utc).isoformat()


def _require(condition: bool, field_name: str, message: str) -> None:
    if not condition:
        raise ValueError(f"RunRecord field {field_name!r}: {message}")


def _check_optional_str(value, field_name: str) -> None:
    if value is None:
        return
    _require(isinstance(value, str), field_name, f"must be a string or None, got {type(value).__name__}")
    _require(bool(value), field_name, "must be non-empty when present (use None instead)")


def _check_finite_nonnegative(value, field_name: str) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        field_name,
        f"must be a number, got {type(value).__name__}",
    )
    _require(math.isfinite(float(value)), field_name, "must be finite")
    _require(float(value) >= 0.0, field_name, f"must be non-negative, got {value}")


@dataclass(frozen=True)
class RunRecord:
    """One schema-validated experiment run.

    Attributes
    ----------
    experiment:
        Registry key, e.g. ``"backend_throughput"``; also the registry file
        stem (``results/registry/<experiment>.jsonl``).
    mode:
        Benchmark sizing preset the run used (``"smoke"`` / ``"quick"`` /
        ``"full"`` — see :class:`repro.harness.settings.ExperimentSettings`).
    timestamp:
        ISO-8601 UTC time the record was created.
    config:
        JSON-ready algorithm configuration (``SBPConfig.to_dict()`` output,
        or ``{}`` for micro-benchmarks that build configs internally).
    preset:
        Name of the registered config preset the config matches, when known.
    seed:
        Root random seed of the run, when known.
    strategy / backend / transport:
        Registry names of the partitioning strategy, blockmodel storage
        backend, and rank transport, when known.
    git_rev / git_dirty:
        Code revision the run executed (``"unknown"`` outside a checkout)
        and whether the working tree had uncommitted changes.
    hostname:
        Machine the run executed on (timings are only comparable per host).
    phase_seconds:
        Per-phase wall-clock harvested from the run's
        :class:`~repro.core.results.SBPResult` summaries.
    peak_rss_mb:
        Peak resident set size of the process, in MiB.
    wall_seconds:
        The benchmark's wall-clock — identical to the timing pytest-benchmark
        records for the run, so the two reports always agree.
    schema_version:
        Schema revision that wrote the record.
    """

    experiment: str
    mode: str
    wall_seconds: float
    timestamp: str = field(default_factory=utc_timestamp)
    config: Dict[str, object] = field(default_factory=dict)
    preset: Optional[str] = None
    seed: Optional[int] = None
    strategy: Optional[str] = None
    backend: Optional[str] = None
    transport: Optional[str] = None
    git_rev: str = "unknown"
    git_dirty: bool = False
    hostname: str = "unknown"
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    peak_rss_mb: float = 0.0
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        _require(isinstance(self.experiment, str), "experiment",
                 f"must be a string, got {type(self.experiment).__name__}")
        _require(bool(_EXPERIMENT_RE.match(self.experiment)), "experiment",
                 f"must match {_EXPERIMENT_RE.pattern} (it names the registry file), got {self.experiment!r}")
        _require(isinstance(self.mode, str) and bool(self.mode), "mode",
                 f"must be a non-empty string, got {self.mode!r}")
        _require(isinstance(self.timestamp, str), "timestamp",
                 f"must be an ISO-8601 string, got {type(self.timestamp).__name__}")
        try:
            datetime.fromisoformat(self.timestamp)
        except ValueError:
            raise ValueError(
                f"RunRecord field 'timestamp': must be ISO-8601, got {self.timestamp!r}"
            ) from None
        _require(isinstance(self.config, dict), "config",
                 f"must be a dict, got {type(self.config).__name__}")
        _require(all(isinstance(k, str) for k in self.config), "config",
                 "keys must all be strings")
        _check_optional_str(self.preset, "preset")
        if self.seed is not None:
            _require(isinstance(self.seed, int) and not isinstance(self.seed, bool), "seed",
                     f"must be an int or None, got {self.seed!r}")
        _check_optional_str(self.strategy, "strategy")
        _check_optional_str(self.backend, "backend")
        _check_optional_str(self.transport, "transport")
        _require(isinstance(self.git_rev, str) and bool(self.git_rev), "git_rev",
                 f"must be a non-empty string, got {self.git_rev!r}")
        _require(isinstance(self.git_dirty, bool), "git_dirty",
                 f"must be a bool, got {type(self.git_dirty).__name__}")
        _require(isinstance(self.hostname, str) and bool(self.hostname), "hostname",
                 f"must be a non-empty string, got {self.hostname!r}")
        _require(isinstance(self.phase_seconds, dict), "phase_seconds",
                 f"must be a dict, got {type(self.phase_seconds).__name__}")
        for key, value in self.phase_seconds.items():
            _require(isinstance(key, str) and bool(key), "phase_seconds",
                     f"keys must be non-empty strings, got {key!r}")
            _check_finite_nonnegative(value, f"phase_seconds[{key!r}]")
        _check_finite_nonnegative(self.peak_rss_mb, "peak_rss_mb")
        _check_finite_nonnegative(self.wall_seconds, "wall_seconds")
        _require(float(self.wall_seconds) > 0.0, "wall_seconds",
                 f"must be positive, got {self.wall_seconds}")
        _require(isinstance(self.schema_version, int) and not isinstance(self.schema_version, bool),
                 "schema_version", f"must be an int, got {self.schema_version!r}")
        _require(self.schema_version >= 1, "schema_version",
                 f"must be >= 1, got {self.schema_version}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict of every field; exact inverse of :meth:`from_dict`."""
        return {
            "schema_version": int(self.schema_version),
            "experiment": self.experiment,
            "mode": self.mode,
            "timestamp": self.timestamp,
            "config": dict(self.config),
            "preset": self.preset,
            "seed": self.seed,
            "strategy": self.strategy,
            "backend": self.backend,
            "transport": self.transport,
            "git_rev": self.git_rev,
            "git_dirty": self.git_dirty,
            "hostname": self.hostname,
            "phase_seconds": {str(k): float(v) for k, v in self.phase_seconds.items()},
            "peak_rss_mb": float(self.peak_rss_mb),
            "wall_seconds": float(self.wall_seconds),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Unknown *and* missing fields raise, naming the offending fields, so a
        registry line written by incompatible code cannot be half-parsed.
        """
        if not isinstance(data, dict):
            raise ValueError(f"RunRecord.from_dict expects a dict, got {type(data).__name__}")
        valid = {f.name for f in fields(cls)}
        unknown = set(data) - valid
        if unknown:
            raise ValueError(
                f"unknown RunRecord field(s) {sorted(unknown)}; valid fields: {sorted(valid)}"
            )
        missing = valid - set(data)
        if missing:
            raise ValueError(
                f"missing RunRecord field(s) {sorted(missing)}; a registry line must carry the full schema"
            )
        version = data["schema_version"]
        if isinstance(version, int) and version > SCHEMA_VERSION:
            raise ValueError(
                f"RunRecord field 'schema_version': record was written by schema "
                f"{version} but this reader only understands <= {SCHEMA_VERSION}"
            )
        return cls(**data)
