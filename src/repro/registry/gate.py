"""The perf-regression gate: latest registry runs vs committed baselines.

CI (and ``scripts/verify.sh --bench-gate``) runs the four gated benchmarks in
smoke mode, then compares each one's latest registry record against the
committed reference in ``results/baselines.json``:

* slower than ``baseline * (1 + tolerance)``  → **regression**, gate fails;
* no registry run for a gated experiment      → **missing run**, gate fails
  (a gate that silently skips what didn't run gates nothing);
* no baseline entry for a recorded run        → **no baseline**: warn and
  surface the candidate value, but do not fail — first runs on a new machine
  or a new experiment must be recordable before they can be gated.

Wall-clock baselines are only meaningful per machine, so the file records the
host it was refreshed on and :func:`evaluate_gate` marks cross-host
comparisons as advisory context in the check message.  The default tolerance
is deliberately loose (25%) because smoke-mode runs are short and noisy.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.registry.provenance import collect_provenance
from repro.registry.record import RunRecord
from repro.registry.store import latest_run

__all__ = [
    "GATED_EXPERIMENTS",
    "DEFAULT_TOLERANCE",
    "BASELINE_FORMAT",
    "GateCheck",
    "GateReport",
    "load_baselines",
    "evaluate_gate",
    "refresh_baselines",
    "default_baselines_path",
]

PathLike = Union[str, Path]

#: The benchmarks CI gates on: the two vectorization microbenchmarks, the
#: sparse-backend scaling grid, and the distributed strong-scaling figure —
#: together they cover every hot path a PR is likely to slow down.
GATED_EXPERIMENTS = (
    "backend_throughput",
    "merge_throughput",
    "sparse_backend_scaling",
    "fig4_strong_scaling",
)

#: Allowed relative slowdown before the gate fails (smoke runs are noisy).
DEFAULT_TOLERANCE = 0.25

#: Format marker embedded in the baselines file, mirroring ``SBPResult``'s
#: persisted-format convention, so arbitrary JSON is rejected with a clear
#: error instead of a KeyError.
BASELINE_FORMAT = "repro.baselines"
BASELINE_FORMAT_VERSION = 1

#: The sizing preset baselines are recorded and compared in.
BASELINE_MODE = "smoke"


def default_baselines_path() -> Path:
    """``<results dir>/baselines.json`` (honours ``REPRO_RESULTS_DIR``)."""
    import os

    return Path(os.environ.get("REPRO_RESULTS_DIR", "results")) / "baselines.json"


@dataclass(frozen=True)
class GateCheck:
    """The verdict for one gated experiment."""

    experiment: str
    #: ``"ok"`` | ``"regression"`` | ``"missing_run"`` | ``"no_baseline"``
    status: str
    observed_wall_seconds: Optional[float]
    baseline_wall_seconds: Optional[float]
    tolerance: float
    message: str

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing_run")

    @property
    def ratio(self) -> Optional[float]:
        """observed / baseline (> 1 means slower than the reference)."""
        if self.observed_wall_seconds is None or not self.baseline_wall_seconds:
            return None
        return self.observed_wall_seconds / self.baseline_wall_seconds


@dataclass(frozen=True)
class GateReport:
    """All verdicts of one gate evaluation."""

    checks: List[GateCheck] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return any(check.failed for check in self.checks)

    @property
    def failures(self) -> List[GateCheck]:
        return [check for check in self.checks if check.failed]


def load_baselines(path: PathLike) -> Dict[str, object]:
    """Read and validate a baselines file; errors name the file and field."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"{path}: not a baselines file (missing format marker {BASELINE_FORMAT!r})"
        )
    experiments = data.get("experiments")
    if not isinstance(experiments, dict):
        raise ValueError(f"{path}: baselines field 'experiments' must be a dict")
    for name, entry in experiments.items():
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: baselines entry {name!r} must be a dict")
        wall = entry.get("wall_seconds")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool) or not math.isfinite(wall) or wall <= 0:
            raise ValueError(
                f"{path}: baselines entry {name!r} field 'wall_seconds' must be a positive number, got {wall!r}"
            )
    tolerance = data.get("tolerance", DEFAULT_TOLERANCE)
    if not isinstance(tolerance, (int, float)) or isinstance(tolerance, bool) or tolerance < 0:
        raise ValueError(f"{path}: baselines field 'tolerance' must be a non-negative number, got {tolerance!r}")
    return data


def evaluate_gate(
    experiments: Sequence[str] = GATED_EXPERIMENTS,
    baselines_path: Optional[PathLike] = None,
    directory: Optional[PathLike] = None,
    mode: str = BASELINE_MODE,
    tolerance: Optional[float] = None,
    slowdown: float = 1.0,
) -> GateReport:
    """Compare each experiment's latest ``mode`` run against its baseline.

    ``tolerance`` overrides the file-level (and per-entry) tolerance when
    given.  ``slowdown`` multiplies every observed wall-clock before the
    comparison — the gate's own fail-path self-test (CI asserts that a
    synthetic 2x slowdown trips the gate on an otherwise passing run).
    """
    baselines_path = Path(baselines_path) if baselines_path else default_baselines_path()
    if baselines_path.exists():
        baselines = load_baselines(baselines_path)
    else:
        baselines = {"format": BASELINE_FORMAT, "version": BASELINE_FORMAT_VERSION, "experiments": {}}
    entries: Dict[str, dict] = baselines["experiments"]
    file_tolerance = float(baselines.get("tolerance", DEFAULT_TOLERANCE))
    baseline_host = baselines.get("hostname")
    this_host = collect_provenance()["hostname"]

    checks: List[GateCheck] = []
    for experiment in experiments:
        entry = entries.get(experiment)
        effective_tolerance = (
            tolerance
            if tolerance is not None
            else float(entry.get("tolerance", file_tolerance)) if entry else file_tolerance
        )
        record = latest_run(experiment, directory=directory, mode=mode)
        if record is None:
            checks.append(
                GateCheck(
                    experiment=experiment,
                    status="missing_run",
                    observed_wall_seconds=None,
                    baseline_wall_seconds=float(entry["wall_seconds"]) if entry else None,
                    tolerance=effective_tolerance,
                    message=(
                        f"experiment {experiment!r} has no {mode!r}-mode run in the registry — "
                        f"run the benchmark before gating (scripts/verify.sh --bench-gate does both)"
                    ),
                )
            )
            continue
        observed = float(record.wall_seconds) * float(slowdown)
        if entry is None:
            checks.append(
                GateCheck(
                    experiment=experiment,
                    status="no_baseline",
                    observed_wall_seconds=observed,
                    baseline_wall_seconds=None,
                    tolerance=effective_tolerance,
                    message=(
                        f"experiment {experiment!r} has no committed baseline in {baselines_path} — "
                        f"recorded {observed:.3f}s; refresh with "
                        f"`python scripts/regression_gate.py --refresh-baselines` to start gating it"
                    ),
                )
            )
            continue
        baseline_wall = float(entry["wall_seconds"])
        limit = baseline_wall * (1.0 + effective_tolerance)
        host_note = ""
        if baseline_host and baseline_host != this_host:
            host_note = (
                f" [note: baseline recorded on {baseline_host!r}, this run on {this_host!r} — "
                f"wall-clock comparisons across hosts are advisory]"
            )
        if observed > limit:
            checks.append(
                GateCheck(
                    experiment=experiment,
                    status="regression",
                    observed_wall_seconds=observed,
                    baseline_wall_seconds=baseline_wall,
                    tolerance=effective_tolerance,
                    message=(
                        f"experiment {experiment!r} regressed: {observed:.3f}s vs baseline "
                        f"{baseline_wall:.3f}s (x{observed / baseline_wall:.2f}, tolerance "
                        f"+{effective_tolerance:.0%}){host_note}"
                    ),
                )
            )
        else:
            checks.append(
                GateCheck(
                    experiment=experiment,
                    status="ok",
                    observed_wall_seconds=observed,
                    baseline_wall_seconds=baseline_wall,
                    tolerance=effective_tolerance,
                    message=(
                        f"experiment {experiment!r} ok: {observed:.3f}s vs baseline "
                        f"{baseline_wall:.3f}s (x{observed / baseline_wall:.2f}, tolerance "
                        f"+{effective_tolerance:.0%}){host_note}"
                    ),
                )
            )
    return GateReport(checks=checks)


def refresh_baselines(
    baselines_path: Optional[PathLike] = None,
    experiments: Sequence[str] = GATED_EXPERIMENTS,
    directory: Optional[PathLike] = None,
    mode: str = BASELINE_MODE,
    tolerance: Optional[float] = None,
) -> Dict[str, object]:
    """(Re)write baseline entries from each experiment's latest ``mode`` run.

    Entries for experiments outside ``experiments`` are preserved; the
    file-level tolerance is kept unless ``tolerance`` is given.  An
    experiment with no recorded run raises, naming it — a baseline cannot be
    invented.
    """
    baselines_path = Path(baselines_path) if baselines_path else default_baselines_path()
    if baselines_path.exists():
        data = load_baselines(baselines_path)
    else:
        data = {
            "format": BASELINE_FORMAT,
            "version": BASELINE_FORMAT_VERSION,
            "tolerance": DEFAULT_TOLERANCE,
            "experiments": {},
        }
    if tolerance is not None:
        data["tolerance"] = float(tolerance)
    provenance = collect_provenance()
    data["mode"] = mode
    data["hostname"] = provenance["hostname"]
    for experiment in experiments:
        record: Optional[RunRecord] = latest_run(experiment, directory=directory, mode=mode)
        if record is None:
            raise ValueError(
                f"cannot refresh baseline for experiment {experiment!r}: "
                f"no {mode!r}-mode run in the registry"
            )
        data["experiments"][experiment] = {
            "wall_seconds": float(record.wall_seconds),
            "git_rev": record.git_rev,
            "hostname": record.hostname,
            "timestamp": record.timestamp,
            "mode": record.mode,
        }
    baselines_path.parent.mkdir(parents=True, exist_ok=True)
    baselines_path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data
