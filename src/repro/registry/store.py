"""Append-only JSONL storage for experiment runs.

One file per experiment — ``<registry dir>/<experiment>.jsonl`` — with one
:class:`~repro.registry.record.RunRecord` per line.  Appends are single
``write()`` calls on a file opened in append mode, so interleaved writers
(parallel benchmark sessions, multiple ranks) cannot tear each other's lines
on POSIX filesystems; nothing is ever rewritten, so history accumulates and
"did PR N make this faster?" stays answerable.

The registry root is ``<results dir>/registry`` (``results/registry/`` by
default), overridable via ``REPRO_REGISTRY_DIR``; the results dir itself
honours ``REPRO_RESULTS_DIR`` like the rest of the harness.
"""

from __future__ import annotations

import json
import os
import statistics
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.registry.record import RunRecord

__all__ = [
    "registry_dir",
    "run_path",
    "append_run",
    "read_runs",
    "latest_run",
    "summarize",
    "config_fingerprint",
]

PathLike = Union[str, Path]

#: Environment knobs (documented in the README's registry section).
REGISTRY_DIR_ENV = "REPRO_REGISTRY_DIR"
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"


def registry_dir() -> Path:
    """The registry root: ``$REPRO_REGISTRY_DIR`` or ``<results>/registry``."""
    override = os.environ.get(REGISTRY_DIR_ENV)
    if override:
        return Path(override)
    return Path(os.environ.get(RESULTS_DIR_ENV, "results")) / "registry"


def run_path(experiment: str, directory: Optional[PathLike] = None) -> Path:
    """The JSONL file holding ``experiment``'s run history."""
    return Path(directory) / f"{experiment}.jsonl" if directory else registry_dir() / f"{experiment}.jsonl"


def append_run(record: RunRecord, directory: Optional[PathLike] = None) -> Path:
    """Append one record to its experiment's JSONL file and return the path.

    The serialized line is written with a single ``write()`` call so records
    from interleaved writers land whole.
    """
    path = run_path(record.experiment, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record.to_dict(), sort_keys=True, separators=(",", ":"))
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
    return path


def read_runs(
    experiment: str,
    directory: Optional[PathLike] = None,
    mode: Optional[str] = None,
) -> List[RunRecord]:
    """Every recorded run of ``experiment``, in append order.

    ``mode`` filters to one sizing preset (e.g. ``"smoke"``).  A malformed
    line raises a :class:`ValueError` naming the file and line number — a
    corrupt registry should be noticed, not silently skipped.
    """
    path = run_path(experiment, directory)
    if not path.exists():
        return []
    records: List[RunRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(RunRecord.from_dict(json.loads(line)))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: invalid registry line: {exc}") from exc
    if mode is not None:
        records = [r for r in records if r.mode == mode]
    return records


def latest_run(
    experiment: str,
    directory: Optional[PathLike] = None,
    mode: Optional[str] = None,
) -> Optional[RunRecord]:
    """The most recently appended run of ``experiment`` (``None`` if none)."""
    records = read_runs(experiment, directory=directory, mode=mode)
    return records[-1] if records else None


def config_fingerprint(record: RunRecord) -> str:
    """A stable hash of everything that makes runs comparable.

    Two runs share a fingerprint exactly when they measured the same thing:
    same sizing mode, algorithm config, strategy, backend, and transport.
    Provenance (rev, host, time) and the seed are deliberately excluded —
    they vary across comparable runs.
    """
    key = {
        "mode": record.mode,
        "config": record.config,
        "strategy": record.strategy,
        "backend": record.backend,
        "transport": record.transport,
    }
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"), default=str)
    return sha256(blob.encode("utf-8")).hexdigest()[:16]


def summarize(
    experiment: str,
    directory: Optional[PathLike] = None,
    mode: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Aggregate ``experiment``'s history per comparable configuration.

    Returns one row per :func:`config_fingerprint` group (insertion order),
    with the run count and the median / min / latest wall-clock — median for
    the central tendency, min as the noise-floor estimate the regression
    gate's baselines are refreshed from.
    """
    groups: Dict[str, List[RunRecord]] = {}
    for record in read_runs(experiment, directory=directory, mode=mode):
        groups.setdefault(config_fingerprint(record), []).append(record)
    rows: List[Dict[str, object]] = []
    for fingerprint, records in groups.items():
        walls = [float(r.wall_seconds) for r in records]
        latest = records[-1]
        rows.append(
            {
                "experiment": experiment,
                "fingerprint": fingerprint,
                "mode": latest.mode,
                "strategy": latest.strategy,
                "backend": latest.backend,
                "transport": latest.transport,
                "runs": len(records),
                "wall_seconds_median": statistics.median(walls),
                "wall_seconds_min": min(walls),
                "wall_seconds_latest": walls[-1],
                "first_timestamp": records[0].timestamp,
                "latest_timestamp": latest.timestamp,
                "latest_git_rev": latest.git_rev,
            }
        )
    return rows
