"""Service observability: per-state counters and completed-job latencies.

The metrics surface is deliberately computed, not accumulated: every call to
:func:`service_metrics` derives the counters from the executor's live job
table, so the numbers can never drift out of sync with the jobs they count
(the failure mode incremental counters invite).  Latency percentiles cover
every *finished* job — including cancelled and timed-out ones, whose partial
runs consumed real capacity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.service.job import Job, JobState

__all__ = ["percentile", "service_metrics"]

#: Percentiles reported for completed-job latency.
LATENCY_PERCENTILES = (50, 90, 99)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` by linear interpolation.

    ``values`` need not be sorted; raises on an empty sequence (callers gate
    on having data) or a ``q`` outside [0, 100].
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must lie in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def service_metrics(jobs: Iterable[Job]) -> Dict[str, object]:
    """Aggregate counters + latency percentiles over the executor's jobs."""
    states = {state: 0 for state in JobState.ALL}
    latencies: List[float] = []
    for job in jobs:
        states[job.state] = states.get(job.state, 0) + 1
        latency = job.latency_seconds
        if latency is not None:
            latencies.append(latency)
    finished = sum(states[s] for s in JobState.TERMINAL)
    out: Dict[str, object] = {
        "jobs_total": sum(states.values()),
        "queue_depth": states[JobState.QUEUED],
        "running": states[JobState.RUNNING],
        "finished": finished,
        "states": states,
    }
    latency_stats: Dict[str, float] = {}
    if latencies:
        for q in LATENCY_PERCENTILES:
            latency_stats[f"p{q}"] = percentile(latencies, q)
        latency_stats["max"] = max(latencies)
        latency_stats["count"] = float(len(latencies))
    out["latency_seconds"] = latency_stats
    return out
