"""The job model: one partitioning run moving through a validated state machine.

A :class:`Job` is the serving layer's unit of work — a graph, a strategy,
a config, and a priority, submitted by a client and executed asynchronously
by the :class:`~repro.service.executor.JobExecutor`.  Its lifecycle is the
closed state machine

    queued → running → succeeded | failed | cancelled | timeout
    queued → cancelled                      (queue-time cancellation)

enforced by :meth:`Job.advance`: an illegal transition raises a
:class:`ValueError` naming both states, matching the construction-time
validation convention the config/registry layers established.  Terminal
states are absorbing.

Jobs carry full provenance — the serialized config, the preset it matches,
the seed, and submit/start/finish timestamps — so a finished job can be
audited (and recorded into the experiment registry) without re-deriving
anything from the request.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.config import SBPConfig
from repro.core.results import SBPResult
from repro.graphs.graph import Graph

__all__ = ["JobState", "Job", "new_job_id"]


class JobState:
    """Names of the job lifecycle states."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"

    ALL = (QUEUED, RUNNING, SUCCEEDED, FAILED, CANCELLED, TIMEOUT)
    TERMINAL = (SUCCEEDED, FAILED, CANCELLED, TIMEOUT)


#: Every legal edge of the state machine; everything else raises.
_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    JobState.QUEUED: (JobState.RUNNING, JobState.CANCELLED),
    JobState.RUNNING: (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT),
    JobState.SUCCEEDED: (),
    JobState.FAILED: (),
    JobState.CANCELLED: (),
    JobState.TIMEOUT: (),
}


def new_job_id() -> str:
    """A fresh server-generated job id (hex UUID4)."""
    return uuid.uuid4().hex


@dataclass
class Job:
    """One submitted partitioning run and everything known about it.

    Attributes
    ----------
    job_id:
        Client-supplied or server-generated identifier; unique per executor.
    graph:
        The graph to partition (already materialised at submit time).
    config:
        The resolved :class:`SBPConfig` the run will use.
    strategy:
        Registry name of the partitioning strategy.
    num_ranks:
        Simulated MPI ranks for the distributed strategies.
    priority:
        Higher-priority jobs leave the queue first; ties run in submit order.
    timeout:
        Per-job wall-clock budget in seconds (``None`` = unlimited); on
        expiry the run winds down and the job lands in ``timeout``.
    checkpoint_every:
        Write a partial-result checkpoint every N agglomerative cycles
        (0 disables checkpointing).
    preset:
        Name of the registered config preset the config matches, when known.
    state:
        Current lifecycle state (see :class:`JobState`).
    submitted_at / started_at / finished_at:
        Unix timestamps of the lifecycle edges (``None`` until reached).
    error:
        Stringified exception for ``failed`` jobs.
    """

    job_id: str
    graph: Graph
    config: SBPConfig
    strategy: str = "sequential"
    num_ranks: int = 1
    priority: int = 0
    timeout: Optional[float] = None
    checkpoint_every: int = 0
    preset: Optional[str] = None
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result: Optional[SBPResult] = None
    #: Path of the latest checkpoint written for this job, when any.
    checkpoint_path: Optional[str] = None
    #: Set when the job was warm-started from a checkpoint.
    resumed_from: Optional[str] = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("Job field 'job_id': must be a non-empty string")
        if self.state not in JobState.ALL:
            raise ValueError(
                f"Job field 'state': unknown state {self.state!r}; expected one of {JobState.ALL}"
            )
        if self.num_ranks < 1:
            raise ValueError(f"Job field 'num_ranks': must be at least 1, got {self.num_ranks}")
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(f"Job field 'timeout': must be non-negative, got {self.timeout}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"Job field 'checkpoint_every': must be non-negative, got {self.checkpoint_every}"
            )

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def latency_seconds(self) -> Optional[float]:
        """Wall-clock from start to finish; ``None`` until the job finished."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def advance(self, new_state: str) -> None:
        """Move to ``new_state``, enforcing the state machine.

        Illegal transitions raise a :class:`ValueError` naming both the
        current and the requested state.  Timestamps for the ``running`` and
        terminal edges are stamped here, so they cannot be forgotten.
        """
        if new_state not in JobState.ALL:
            raise ValueError(
                f"unknown job state {new_state!r}; expected one of {JobState.ALL}"
            )
        with self._lock:
            if new_state not in _TRANSITIONS[self.state]:
                raise ValueError(
                    f"illegal job transition {self.state!r} → {new_state!r} "
                    f"(job {self.job_id}); legal targets from {self.state!r}: "
                    f"{list(_TRANSITIONS[self.state])}"
                )
            self.state = new_state
            now = time.time()
            if new_state == JobState.RUNNING:
                self.started_at = now
            elif new_state in JobState.TERMINAL:
                self.finished_at = now

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready status view of the job (without the result payload)."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "strategy": self.strategy,
            "num_ranks": int(self.num_ranks),
            "priority": int(self.priority),
            "graph": {
                "name": self.graph.name,
                "num_vertices": int(self.graph.num_vertices),
                "num_edges": int(self.graph.num_edges),
            },
            "config": self.config.to_dict(),
            "preset": self.preset,
            "seed": self.config.seed,
            "timeout": self.timeout,
            "checkpoint_every": int(self.checkpoint_every),
            "checkpoint_path": self.checkpoint_path,
            "resumed_from": self.resumed_from,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "latency_seconds": self.latency_seconds,
            "error": self.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job(id={self.job_id!r}, state={self.state!r}, strategy={self.strategy!r}, "
            f"graph={self.graph.name!r}, priority={self.priority})"
        )
