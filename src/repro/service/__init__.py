"""repro.service — partitioning-as-a-service over the run lifecycle.

A stdlib-only serving layer that turns the synchronous
:func:`repro.partition` entry point into an asynchronous job system:

* :class:`Job` / :class:`JobState` — one run moving through the validated
  state machine ``queued → running → succeeded | failed | cancelled |
  timeout``, with full provenance (config, preset, seed, timestamps);
* :class:`JobExecutor` — a priority-queued worker pool with a concurrency
  limit, per-job timeouts, exact two-phase cancellation, and graceful
  drain, recording every finished job into the experiment registry;
* :class:`ProgressTracker` — folds run-lifecycle events into a servable
  progress/ETA snapshot (extrapolated from the block-reduction curve);
* :class:`CheckpointWriter` / :func:`resume_strategy` — periodic atomic
  partial-result snapshots and warm resume after a crash;
* :class:`PartitionService` / :func:`create_server` — the HTTP/JSON API
  (``POST /jobs``, ``GET /jobs/{id}``, ``GET /jobs/{id}/result``,
  ``DELETE /jobs/{id}``, ``/healthz``, ``/metrics``) on
  ``http.server.ThreadingHTTPServer``.

``scripts/serve.py`` wraps this package as a CLI;
``examples/service_demo.py`` drives it end to end in-process.
"""

from repro.service.job import Job, JobState, new_job_id
from repro.service.progress import ProgressSnapshot, ProgressTracker
from repro.service.checkpoint import (
    CheckpointWriter,
    WarmStartSequential,
    load_checkpoint,
    resume_strategy,
)
from repro.service.metrics import percentile, service_metrics
from repro.service.executor import SERVICE_EXPERIMENT, JobExecutor
from repro.service.schemas import JobRequest, ValidationError, validate_job_request
from repro.service.http_api import ApiError, PartitionService, create_server

__all__ = [
    "Job",
    "JobState",
    "new_job_id",
    "ProgressSnapshot",
    "ProgressTracker",
    "CheckpointWriter",
    "WarmStartSequential",
    "load_checkpoint",
    "resume_strategy",
    "percentile",
    "service_metrics",
    "JobExecutor",
    "SERVICE_EXPERIMENT",
    "JobRequest",
    "ValidationError",
    "validate_job_request",
    "ApiError",
    "PartitionService",
    "create_server",
]
