"""The job executor: a priority-queued thread pool over the run lifecycle.

:class:`JobExecutor` turns the blocking :class:`~repro.api.handle.RunHandle`
machinery into an asynchronous service: jobs are submitted with a priority
and picked up by a fixed pool of worker threads (the concurrency limit), so
many medium graphs partition concurrently while the queue absorbs bursts.

Everything the run lifecycle already provides is wired through per job:

* a :class:`~repro.service.progress.ProgressTracker` observer feeds the
  status API's progress/ETA view;
* ``checkpoint_every`` attaches a
  :class:`~repro.service.checkpoint.CheckpointWriter` so long runs leave
  resumable snapshots behind;
* the per-job ``timeout`` rides on the handle's wall-clock budget and lands
  the job in the ``timeout`` state;
* cancellation is exact in both phases — a queued job is cancelled
  immediately (it never runs), a running job winds down cooperatively via
  ``RunContext.cancel()`` at the next phase boundary.

State decisions (queued → running vs queued → cancelled) are serialised
under one executor lock, so the `Job` state machine can never be raced into
an illegal transition.  Every finished job that produced a result appends a
schema-validated :class:`~repro.registry.RunRecord` to the experiment
registry, giving served traffic the same auditable trail as benchmarks.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import warnings
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.api.facade import ConfigLike, resolve_config
from repro.api.handle import RunHandle
from repro.api.registry import Strategy, get_strategy
from repro.core.context import RunObserver
from repro.registry import RunRecord, append_run, collect_provenance, peak_rss_mb
from repro.service.checkpoint import CheckpointWriter, resume_strategy
from repro.service.job import Job, JobState, new_job_id
from repro.service.metrics import service_metrics
from repro.service.progress import ProgressSnapshot, ProgressTracker
from repro.graphs.graph import Graph

__all__ = ["JobExecutor"]

#: Registry experiment name served jobs are recorded under.
SERVICE_EXPERIMENT = "service_jobs"


class JobExecutor:
    """Schedules partitioning jobs over a bounded worker pool.

    Parameters
    ----------
    max_workers:
        Concurrency limit: how many jobs run simultaneously.
    default_timeout:
        Wall-clock budget applied to jobs submitted without their own.
    checkpoint_dir:
        Directory for checkpoint files; required before any job may request
        ``checkpoint_every > 0``.
    default_checkpoint_every:
        Checkpoint cadence applied to jobs submitted without their own
        (0 disables).
    record_runs:
        Append a :class:`~repro.registry.RunRecord` per finished job.
    registry_directory:
        Registry location override (defaults to the library-wide registry).
    """

    def __init__(
        self,
        max_workers: int = 2,
        default_timeout: Optional[float] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        default_checkpoint_every: int = 0,
        record_runs: bool = True,
        registry_directory: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        if default_checkpoint_every < 0:
            raise ValueError("default_checkpoint_every must be non-negative")
        self.max_workers = int(max_workers)
        self.default_timeout = default_timeout
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self.default_checkpoint_every = int(default_checkpoint_every)
        self.record_runs = bool(record_runs)
        self.registry_directory = registry_directory

        self._jobs: Dict[str, Job] = {}
        self._handles: Dict[str, RunHandle] = {}
        self._trackers: Dict[str, ProgressTracker] = {}
        self._checkpointers: Dict[str, CheckpointWriter] = {}
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._state_changed = threading.Condition(self._lock)
        self._shutdown = False
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"job-worker-{i}", daemon=True)
            for i in range(self.max_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: Graph,
        *,
        job_id: Optional[str] = None,
        strategy: Union[str, Strategy] = "sequential",
        config: ConfigLike = None,
        num_ranks: int = 1,
        priority: int = 0,
        timeout: Optional[float] = None,
        checkpoint_every: Optional[int] = None,
        observers: Iterable[RunObserver] = (),
        preset: Optional[str] = None,
        **overrides,
    ) -> Job:
        """Queue a partitioning job and return its :class:`Job` immediately.

        ``config`` accepts everything :func:`repro.partition` does (preset
        name, dict, :class:`SBPConfig`, ``None``); when a preset name is
        passed it is recorded on the job as provenance.  Callers that
        resolved a preset themselves (the HTTP layer) can pass ``preset``
        explicitly.  A client-supplied ``job_id`` must be unique; omitted
        ids are generated.
        """
        resolved_strategy = get_strategy(strategy)
        if preset is None and isinstance(config, str):
            preset = config
        resolved_config = resolve_config(config, **overrides)
        effective_timeout = self.default_timeout if timeout is None else timeout
        effective_every = (
            self.default_checkpoint_every if checkpoint_every is None else int(checkpoint_every)
        )
        if effective_every > 0 and self.checkpoint_dir is None:
            raise ValueError(
                "checkpoint_every requires the executor to be built with a checkpoint_dir"
            )
        job = Job(
            job_id=job_id or new_job_id(),
            graph=graph,
            config=resolved_config,
            strategy=getattr(resolved_strategy, "name", type(resolved_strategy).__name__),
            num_ranks=int(num_ranks),
            priority=int(priority),
            timeout=effective_timeout,
            checkpoint_every=effective_every,
            preset=preset,
        )
        tracker = ProgressTracker(graph.num_vertices, min_blocks=resolved_config.min_blocks)
        job_observers: List[RunObserver] = [tracker, *observers]
        checkpointer: Optional[CheckpointWriter] = None
        if effective_every > 0:
            checkpoint_path = self.checkpoint_dir / f"{job.job_id}.checkpoint.json"
            checkpointer = CheckpointWriter(checkpoint_path, effective_every)
            job.checkpoint_path = str(checkpoint_path)
            job_observers.append(checkpointer)
        handle = RunHandle(
            resolved_strategy,
            graph,
            resolved_config,
            num_ranks=int(num_ranks),
            observers=job_observers,
            timeout=effective_timeout,
        )
        with self._lock:
            if self._shutdown:
                raise RuntimeError("executor is shut down; no new jobs accepted")
            if job.job_id in self._jobs:
                raise ValueError(f"duplicate job_id {job.job_id!r}")
            self._jobs[job.job_id] = job
            self._handles[job.job_id] = handle
            self._trackers[job.job_id] = tracker
            if checkpointer is not None:
                self._checkpointers[job.job_id] = checkpointer
            # Max-heap by priority via negation; the sequence number keeps
            # equal priorities FIFO and makes entries totally ordered.
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job.job_id))
            self._work_available.notify()
        return job

    def resume(
        self,
        checkpoint_path: Union[str, Path],
        *,
        config: ConfigLike = None,
        job_id: Optional[str] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        checkpoint_every: Optional[int] = None,
        **overrides,
    ) -> Job:
        """Queue a warm resume of the checkpoint at ``checkpoint_path``.

        The checkpoint embeds its graph, so a resume needs nothing from the
        dead process except the file; the run continues from the snapshot's
        partition via the sequential driver's fine-tuning mode.  Pass the
        original job's config to continue under the same parameters.
        """
        strategy = resume_strategy(checkpoint_path)
        graph = strategy._checkpoint.graph
        job = self.submit(
            graph,
            job_id=job_id,
            strategy=strategy,
            config=config,
            priority=priority,
            timeout=timeout,
            checkpoint_every=checkpoint_every,
            **overrides,
        )
        job.resumed_from = str(checkpoint_path)
        return job

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """The job registered under ``job_id``; raises ``KeyError`` if unknown."""
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(f"unknown job {job_id!r}")
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def progress(self, job_id: str) -> ProgressSnapshot:
        """The job's live progress/ETA snapshot."""
        with self._lock:
            if job_id not in self._trackers:
                raise KeyError(f"unknown job {job_id!r}")
            tracker = self._trackers[job_id]
        return tracker.snapshot()

    def metrics(self) -> Dict[str, object]:
        """Queue depth, per-state counters, and latency percentiles."""
        with self._lock:
            jobs = list(self._jobs.values())
            out = service_metrics(jobs)
            out["max_workers"] = self.max_workers
        return out

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state (or raise ``TimeoutError``)."""
        with self._state_changed:
            if job_id not in self._jobs:
                raise KeyError(f"unknown job {job_id!r}")
            job = self._jobs[job_id]
            if not self._state_changed.wait_for(lambda: job.done, timeout=timeout):
                raise TimeoutError(f"job {job_id!r} still {job.state!r} after {timeout}s")
            return job

    # ------------------------------------------------------------------
    # Cancellation and shutdown
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Cancel a job in either phase; terminal jobs are left untouched.

        Queued jobs transition to ``cancelled`` immediately and never run;
        running jobs stop cooperatively at the next phase boundary (the
        worker then records the terminal state).  Returns the job.
        """
        with self._lock:
            if job_id not in self._jobs:
                raise KeyError(f"unknown job {job_id!r}")
            job = self._jobs[job_id]
            handle = self._handles[job_id]
            if job.state == JobState.QUEUED:
                job.advance(JobState.CANCELLED)
                handle.cancel()
                self._state_changed.notify_all()
            elif job.state == JobState.RUNNING:
                handle.cancel()
        return job

    def shutdown(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop accepting jobs and wind the pool down.

        With ``cancel_pending=False`` (graceful drain) the workers finish
        everything already queued before exiting; with ``True`` queued jobs
        are cancelled immediately and running jobs are asked to stop.
        """
        with self._lock:
            self._shutdown = True
            if cancel_pending:
                for job in self._jobs.values():
                    if job.state == JobState.QUEUED:
                        job.advance(JobState.CANCELLED)
                        self._handles[job.job_id].cancel()
                    elif job.state == JobState.RUNNING:
                        self._handles[job.job_id].cancel()
                self._state_changed.notify_all()
            self._work_available.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                while not self._heap and not self._shutdown:
                    self._work_available.wait()
                if not self._heap and self._shutdown:
                    return
                _, _, job_id = heapq.heappop(self._heap)
                job = self._jobs[job_id]
                if job.state != JobState.QUEUED:
                    continue  # cancelled while queued; nothing to run
                job.advance(JobState.RUNNING)
                handle = self._handles[job_id]
                tracker = self._trackers[job_id]
            self._execute(job, handle, tracker)

    def _execute(self, job: Job, handle: RunHandle, tracker: ProgressTracker) -> None:
        tracker.start()
        try:
            result = handle.run()
        except BaseException as exc:  # noqa: BLE001 - job isolation boundary
            with self._lock:
                job.error = f"{type(exc).__name__}: {exc}"
                job.advance(JobState.FAILED)
                self._state_changed.notify_all()
            return
        terminal = {
            "completed": JobState.SUCCEEDED,
            "cancelled": JobState.CANCELLED,
            "timeout": JobState.TIMEOUT,
        }.get(handle.status, JobState.SUCCEEDED)
        with self._lock:
            job.result = result
            job.advance(terminal)
            if terminal == JobState.SUCCEEDED:
                tracker.finish()
            self._state_changed.notify_all()
        if self.record_runs:
            self._record(job)

    def _record(self, job: Job) -> None:
        """Append the finished job to the experiment registry."""
        result = job.result
        if result is None:
            return
        latency = job.latency_seconds or 0.0
        provenance = collect_provenance()
        try:
            record = RunRecord(
                experiment=SERVICE_EXPERIMENT,
                mode="service",
                wall_seconds=max(float(result.runtime_seconds), latency, 1e-9),
                config=job.config.to_dict(),
                preset=job.preset,
                seed=job.config.seed,
                strategy=job.strategy or None,
                backend=job.config.matrix_backend,
                transport=job.config.transport,
                git_rev=provenance["git_rev"],
                git_dirty=provenance["git_dirty"],
                hostname=provenance["hostname"],
                phase_seconds={str(k): float(v) for k, v in result.phase_seconds.items()},
                peak_rss_mb=peak_rss_mb(),
            )
            append_run(record, directory=self.registry_directory)
        except (OSError, ValueError) as exc:  # pragma: no cover - degraded env
            warnings.warn(f"service registry append failed ({exc}); job {job.job_id} not recorded")

    # ------------------------------------------------------------------
    def __enter__(self) -> "JobExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True, cancel_pending=exc_type is not None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            depth = sum(1 for j in self._jobs.values() if j.state == JobState.QUEUED)
            running = sum(1 for j in self._jobs.values() if j.state == JobState.RUNNING)
        return f"JobExecutor(max_workers={self.max_workers}, queued={depth}, running={running})"
