"""Progress and ETA estimation from run-lifecycle events.

A :class:`ProgressTracker` is a :class:`~repro.core.context.RunObserver`
that folds the ``on_merge_phase`` / ``on_mcmc_sweep`` / ``on_cycle`` stream
into a thread-safe :class:`ProgressSnapshot` the HTTP layer can serve while
the run is still executing.

The ETA comes from the shape of the agglomerative search itself: the block
count starts at one-block-per-vertex and shrinks roughly geometrically
(``block_reduction_rate`` per cycle) until the golden-ratio search brackets
the description-length minimum and spends a few more cycles refining it.
The tracker therefore measures the realised per-cycle log-reduction rate,
extrapolates how many cycles remain until the estimated final block count,
and scales by the average cycle duration.  Once the DL curve has visibly
turned upward (the search overshot the minimum), the final block count is
re-estimated as the best-DL block count seen, which collapses the remaining
work to the bracket-refinement tail.

Reported ``progress`` is clamped monotonically non-decreasing: the bracket
phase legitimately revisits *larger* block counts, and a progress bar that
moves backwards is worse than one that briefly stalls.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.context import CycleEvent, MCMCSweepEvent, MergePhaseEvent, RunObserver

__all__ = ["ProgressSnapshot", "ProgressTracker"]

#: Cycles the golden-ratio search typically spends refining the bracket once
#: the DL minimum is inside it; added to every extrapolation so the ETA does
#: not collapse to zero the moment the reduction curve flattens.
REFINEMENT_CYCLES = 3


@dataclass(frozen=True)
class ProgressSnapshot:
    """A point-in-time view of one job's run, safe to serialise."""

    phase: str
    cycles: int
    merge_phases: int
    mcmc_sweeps: int
    initial_blocks: int
    current_blocks: int
    best_description_length: Optional[float]
    #: ``(cycle, num_blocks)`` pairs, one per completed agglomerative cycle.
    block_trajectory: Tuple[Tuple[int, int], ...]
    elapsed_seconds: float
    blocks_per_second: float
    #: Monotone fraction in [0, 1]; 1.0 exactly when the run finished.
    progress: float
    #: Extrapolated seconds to completion; ``None`` until one full cycle has
    #: been observed, finite afterwards.
    eta_seconds: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "cycles": self.cycles,
            "merge_phases": self.merge_phases,
            "mcmc_sweeps": self.mcmc_sweeps,
            "initial_blocks": self.initial_blocks,
            "current_blocks": self.current_blocks,
            "best_description_length": self.best_description_length,
            "block_trajectory": [list(point) for point in self.block_trajectory],
            "elapsed_seconds": self.elapsed_seconds,
            "blocks_per_second": self.blocks_per_second,
            "progress": self.progress,
            "eta_seconds": self.eta_seconds,
        }


class ProgressTracker(RunObserver):
    """Accumulates lifecycle events into servable progress state.

    Parameters
    ----------
    num_vertices:
        Vertex count of the job's graph — the search's starting block count.
    min_blocks:
        The config's agglomeration floor (the hard lower bound on the final
        block count; the extrapolation target before the bracket is found).
    """

    def __init__(self, num_vertices: int, min_blocks: int = 1) -> None:
        self._lock = threading.Lock()
        self._initial_blocks = max(int(num_vertices), 1)
        self._floor = max(int(min_blocks), 1)
        self._started_at: Optional[float] = None
        self._finished = False
        self._phase = "waiting"
        self._cycles = 0
        self._merge_phases = 0
        self._sweeps = 0
        self._current_blocks = self._initial_blocks
        self._trajectory: List[Tuple[int, int]] = []
        self._cycle_times: List[float] = []
        self._best_dl: Optional[float] = None
        self._best_dl_blocks: Optional[int] = None
        self._overshot = False
        self._max_progress = 0.0

    # ------------------------------------------------------------------
    # Observer hooks (driver thread)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Mark the run as started (called by the executor just before run)."""
        with self._lock:
            if self._started_at is None:
                self._started_at = time.monotonic()

    def finish(self) -> None:
        """Mark the run as finished; progress snaps to 1.0."""
        with self._lock:
            self._finished = True
            self._phase = "done"

    def on_merge_phase(self, event: MergePhaseEvent) -> None:
        with self._lock:
            self._ensure_started()
            self._phase = "block_merge"
            self._merge_phases += 1
            self._current_blocks = int(event.num_blocks_after)

    def on_mcmc_sweep(self, event: MCMCSweepEvent) -> None:
        with self._lock:
            self._ensure_started()
            self._phase = "mcmc"
            self._sweeps += 1

    def on_cycle(self, event: CycleEvent) -> None:
        with self._lock:
            self._ensure_started()
            self._cycles += 1
            self._current_blocks = int(event.num_blocks)
            self._trajectory.append((int(event.cycle), int(event.num_blocks)))
            self._cycle_times.append(time.monotonic())
            dl = float(event.description_length)
            if self._best_dl is None or dl < self._best_dl:
                self._best_dl = dl
                self._best_dl_blocks = int(event.num_blocks)
            elif dl > self._best_dl:
                # The DL curve turned upward: the search has overshot the
                # minimum and the remaining work is bracket refinement.
                self._overshot = True

    def _ensure_started(self) -> None:
        if self._started_at is None:
            self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Estimation (any thread)
    # ------------------------------------------------------------------
    def _estimate_remaining_cycles(self) -> Optional[float]:
        """Cycles left, extrapolated from the block-reduction curve."""
        if self._cycles == 0:
            return None
        current = max(self._current_blocks, 1)
        # Realised per-cycle log-reduction rate over the whole run so far.
        rate = math.log(self._initial_blocks / current) / self._cycles if current < self._initial_blocks else 0.0
        if self._overshot and self._best_dl_blocks is not None:
            # Bracket found: only the refinement tail remains.
            return float(REFINEMENT_CYCLES)
        target = self._floor
        if rate <= 1e-9:
            # No reduction observed yet (e.g. a warm-started fine-tune run):
            # assume only the refinement tail remains.
            return float(REFINEMENT_CYCLES)
        remaining_reduction = math.log(max(current, 1) / target) if current > target else 0.0
        return remaining_reduction / rate + REFINEMENT_CYCLES

    def snapshot(self) -> ProgressSnapshot:
        """The current progress view; cheap and safe from any thread."""
        with self._lock:
            elapsed = 0.0 if self._started_at is None else time.monotonic() - self._started_at
            removed = self._initial_blocks - self._current_blocks
            rate_bps = removed / elapsed if elapsed > 0 and removed > 0 else 0.0
            eta: Optional[float] = None
            progress = 0.0
            if self._finished:
                progress, eta = 1.0, 0.0
            else:
                remaining = self._estimate_remaining_cycles()
                if remaining is not None:
                    progress = self._cycles / (self._cycles + remaining)
                    per_cycle = elapsed / self._cycles if self._cycles else 0.0
                    eta = remaining * per_cycle
            # Monotone clamp: the bracket phase can revisit larger block
            # counts, which would otherwise walk the fraction backwards.
            self._max_progress = max(self._max_progress, progress)
            return ProgressSnapshot(
                phase=self._phase,
                cycles=self._cycles,
                merge_phases=self._merge_phases,
                mcmc_sweeps=self._sweeps,
                initial_blocks=self._initial_blocks,
                current_blocks=self._current_blocks,
                best_description_length=self._best_dl,
                block_trajectory=tuple(self._trajectory),
                elapsed_seconds=elapsed,
                blocks_per_second=rate_bps,
                progress=self._max_progress,
                eta_seconds=eta,
            )
