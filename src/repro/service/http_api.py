"""The HTTP/JSON API over the job executor (stdlib ``http.server`` only).

Endpoints::

    POST   /jobs              submit a job (graph + config/preset/overrides)
    GET    /jobs              list all jobs (status views)
    GET    /jobs/{id}         one job's status + live progress/ETA
    GET    /jobs/{id}/result  the finished SBPResult as persisted JSON
    DELETE /jobs/{id}         cancel (queued: immediate; running: cooperative)
    GET    /healthz           liveness probe
    GET    /metrics           queue depth, per-state counters, latencies

Errors are structured JSON — ``{"error": {"status", "message", "field"?}}`` —
with ``field`` naming the offending request field for 400s, following the
construction-time validation idiom of the config and registry layers.  The
result payload is byte-compatible with ``SBPResult.save``: a client can
write the response body to disk and ``SBPResult.load`` it bit-exactly.

:class:`PartitionService` bundles an executor, a
``ThreadingHTTPServer`` bound to an ephemeral (or fixed) port, and the
serving thread — the in-process harness the tests, the demo, and
``scripts/serve.py`` all share.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.executor import JobExecutor
from repro.service.job import JobState
from repro.service.schemas import ValidationError, validate_job_request

__all__ = ["ApiError", "PartitionService", "create_server"]


class ApiError(Exception):
    """An HTTP-level failure carrying its status code (and offending field)."""

    def __init__(self, status: int, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.status = status
        self.field = field

    def to_payload(self) -> Dict[str, object]:
        error: Dict[str, object] = {"status": self.status, "message": str(self)}
        if self.field is not None:
            error["field"] = self.field
        return {"error": error}


class _JobRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`JobExecutor`."""

    server_version = "repro-partition-service/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Verb entry points
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _dispatch(self, verb: str) -> None:
        try:
            status, payload = self._route(verb)
        except ApiError as exc:
            status, payload = exc.status, exc.to_payload()
        except ValidationError as exc:
            status, payload = 400, ApiError(400, str(exc), field=exc.field).to_payload()
        except Exception as exc:  # noqa: BLE001 - never let the socket die bare
            status, payload = 500, ApiError(500, f"{type(exc).__name__}: {exc}").to_payload()
        self._send_json(status, payload)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, verb: str) -> Tuple[int, Dict[str, object]]:
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = parse_qs(split.query)
        executor: JobExecutor = self.server.executor  # type: ignore[attr-defined]

        if verb == "GET" and parts == ["healthz"]:
            return 200, {"status": "ok"}
        if verb == "GET" and parts == ["metrics"]:
            return 200, executor.metrics()
        if parts and parts[0] == "jobs":
            if verb == "POST" and len(parts) == 1:
                return self._submit(executor)
            if verb == "GET" and len(parts) == 1:
                return 200, {"jobs": [job.to_dict() for job in executor.jobs()]}
            if len(parts) >= 2:
                job_id = parts[1]
                if verb == "GET" and len(parts) == 2:
                    return self._status(executor, job_id)
                if verb == "GET" and len(parts) == 3 and parts[2] == "result":
                    return self._result(executor, job_id, query)
                if verb == "DELETE" and len(parts) == 2:
                    return self._cancel(executor, job_id)
        raise ApiError(404, f"no route for {verb} {split.path}")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _submit(self, executor: JobExecutor) -> Tuple[int, Dict[str, object]]:
        request = validate_job_request(self._read_json_body())
        try:
            job = executor.submit(
                request.graph,
                job_id=request.job_id,
                strategy=request.strategy,
                config=request.config,
                num_ranks=request.num_ranks,
                priority=request.priority,
                timeout=request.timeout,
                checkpoint_every=request.checkpoint_every,
                preset=request.preset,
            )
        except ValueError as exc:
            # Duplicate client-supplied job id (or checkpointing without a
            # checkpoint_dir) — a conflict with server state, not a bad body.
            raise ApiError(409, str(exc), field="job_id" if "job_id" in str(exc) else None) from exc
        return 201, job.to_dict()

    def _get_job(self, executor: JobExecutor, job_id: str):
        try:
            return executor.get(job_id)
        except KeyError as exc:
            raise ApiError(404, f"unknown job {job_id!r}") from exc

    def _status(self, executor: JobExecutor, job_id: str) -> Tuple[int, Dict[str, object]]:
        job = self._get_job(executor, job_id)
        payload = job.to_dict()
        payload["progress"] = executor.progress(job_id).to_dict()
        return 200, payload

    def _result(self, executor: JobExecutor, job_id: str, query) -> Tuple[int, Dict[str, object]]:
        job = self._get_job(executor, job_id)
        if not job.done:
            raise ApiError(
                409, f"job {job_id!r} is still {job.state!r}; the result is not available yet"
            )
        if job.result is None:
            raise ApiError(
                409,
                f"job {job_id!r} finished {job.state!r} without a result"
                + (f": {job.error}" if job.error else ""),
            )
        include_graph = query.get("include_graph", ["1"])[0] not in ("0", "false", "no")
        return 200, job.result.to_dict(include_graph=include_graph)

    def _cancel(self, executor: JobExecutor, job_id: str) -> Tuple[int, Dict[str, object]]:
        self._get_job(executor, job_id)
        job = executor.cancel(job_id)
        return 200, job.to_dict()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_json_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ApiError(400, "request body is required", field="body")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}", field="body") from exc

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr logging; metrics carry the signal."""


def create_server(
    executor: JobExecutor, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ``ThreadingHTTPServer`` bound to ``host:port`` serving ``executor``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``).  The caller owns both server and executor
    lifecycles; :class:`PartitionService` bundles them.
    """
    server = ThreadingHTTPServer((host, port), _JobRequestHandler)
    server.executor = executor  # type: ignore[attr-defined]
    return server


class PartitionService:
    """Executor + HTTP server + serving thread, as one start/stoppable unit.

    Parameters mirror :class:`JobExecutor`; the server binds ``host:port``
    (``port=0`` = ephemeral).  Usable as a context manager::

        with PartitionService(max_workers=2) as service:
            requests.post(service.base_url + "/jobs", json=...)
    """

    def __init__(
        self,
        executor: Optional[JobExecutor] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **executor_kwargs,
    ) -> None:
        self._owns_executor = executor is None
        self.executor = executor if executor is not None else JobExecutor(**executor_kwargs)
        self.server = create_server(self.executor, host=host, port=port)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "PartitionService":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.server.serve_forever, name="partition-service", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, cancel_pending: bool = False) -> None:
        """Stop serving, then drain (or cancel) the executor."""
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._owns_executor:
            self.executor.shutdown(wait=True, cancel_pending=cancel_pending)

    def __enter__(self) -> "PartitionService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(cancel_pending=exc_type is not None)
