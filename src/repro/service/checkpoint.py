"""Mid-run checkpointing: periodic partial-result snapshots + warm resume.

A :class:`CheckpointWriter` is a :class:`~repro.core.context.RunObserver`
that, every N agglomerative cycles, freezes the run's current partition into
a well-formed partial :class:`~repro.core.results.SBPResult` and writes it
with the ordinary ``SBPResult.save`` JSON format — atomically, via a
temporary file and ``os.replace``, so a reader (or a crash) can never see a
torn checkpoint.  The snapshot embeds the graph, making the file
self-contained: a huge-graph job can be inspected mid-run with nothing but
``SBPResult.load``, and resumed warm after a crash with
:func:`resume_strategy`.

Checkpointing requires the cycle events to carry the live blockmodel
(:attr:`~repro.core.context.CycleEvent.blockmodel`), which the sequential
driver and EDiSt's rank 0 provide in-process.  Events that crossed a process
boundary arrive without it and are skipped — the writer counts those in
:attr:`CheckpointWriter.skipped` rather than failing the run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import SBPConfig
from repro.core.context import CycleEvent, RunContext, RunObserver
from repro.core.results import SBPResult
from repro.core.sbp import stochastic_block_partition
from repro.graphs.graph import Graph

__all__ = ["CheckpointWriter", "load_checkpoint", "resume_strategy", "WarmStartSequential"]

PathLike = Union[str, Path]


class CheckpointWriter(RunObserver):
    """Writes a partial-result checkpoint every ``every`` cycles.

    Parameters
    ----------
    path:
        Destination file; each write atomically replaces the previous
        checkpoint (history is not kept — the latest state supersedes it).
    every:
        Checkpoint cadence in agglomerative cycles (must be >= 1).
    algorithm:
        Label recorded in the snapshot (defaults to ``"checkpoint"``).
    """

    def __init__(self, path: PathLike, every: int, algorithm: str = "checkpoint") -> None:
        if every < 1:
            raise ValueError(f"checkpoint cadence must be at least 1 cycle, got {every}")
        self.path = Path(path)
        self.every = int(every)
        self.algorithm = algorithm
        #: Number of checkpoints successfully written.
        self.written = 0
        #: Cycle events that could not be checkpointed (no in-process blockmodel).
        self.skipped = 0
        #: Cycle number of the latest checkpoint, when any.
        self.last_cycle: Optional[int] = None

    def on_cycle(self, event: CycleEvent) -> None:
        # Cycle 0 is a warm-start record, not progress — never checkpointed.
        if event.cycle < 1 or event.cycle % self.every != 0:
            return
        if event.blockmodel is None:
            self.skipped += 1
            return
        self._write(event)

    def _write(self, event: CycleEvent) -> None:
        source: Blockmodel = event.blockmodel  # type: ignore[assignment]
        graph = source.graph
        # Copy the assignment before the driver mutates the blockmodel again,
        # then rebuild a contiguous, self-owned blockmodel for the snapshot.
        assignment = np.asarray(source.assignment).copy()
        blockmodel = Blockmodel.from_assignment(graph, assignment, relabel=True)
        snapshot = SBPResult(
            graph=graph,
            blockmodel=blockmodel,
            description_length=blockmodel.description_length(),
            algorithm=self.algorithm,
            metadata={
                "checkpoint": True,
                "checkpoint_cycle": int(event.cycle),
                "checkpoint_num_blocks": int(event.num_blocks),
            },
        )
        tmp = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        snapshot.save(tmp, include_graph=True)
        os.replace(tmp, self.path)
        self.written += 1
        self.last_cycle = int(event.cycle)


def load_checkpoint(path: PathLike, graph: Optional[Graph] = None) -> SBPResult:
    """Read a checkpoint written by :class:`CheckpointWriter`.

    Plain persisted results are rejected with an error naming the file, so a
    resume can only start from an actual mid-run snapshot.
    """
    result = SBPResult.load(path, graph=graph)
    if not result.metadata.get("checkpoint"):
        raise ValueError(f"{path} is a persisted SBPResult but not a checkpoint snapshot")
    return result


class WarmStartSequential:
    """A sequential strategy warm-started from a checkpoint partition.

    Satisfies the :class:`~repro.api.registry.Strategy` protocol, so it runs
    through the ordinary :class:`~repro.api.handle.RunHandle` lifecycle
    (observers, timeout, cancellation), but seeds the agglomerative search
    with the checkpoint's blockmodel instead of one block per vertex — the
    same fine-tuning mode DC-SBP uses to resume from combined partials.
    """

    name = "sequential-warm"

    def __init__(self, checkpoint: SBPResult) -> None:
        self._checkpoint = checkpoint

    def run(
        self,
        graph: Graph,
        config: SBPConfig,
        *,
        num_ranks: int = 1,
        run_context: Optional[RunContext] = None,
    ):
        if num_ranks != 1:
            raise ValueError(
                f"a warm-started resume runs on one rank (got num_ranks={num_ranks})"
            )
        initial = Blockmodel.from_assignment(
            graph,
            np.asarray(self._checkpoint.blockmodel.assignment).copy(),
            relabel=True,
            matrix_backend=config.matrix_backend,
        )
        result = stochastic_block_partition(
            graph,
            config,
            initial_blockmodel=initial,
            algorithm_label="sbp-resumed",
            run_context=run_context,
        )
        result.metadata["resumed_from_cycle"] = self._checkpoint.metadata.get("checkpoint_cycle")
        return result


def resume_strategy(checkpoint_path: PathLike, graph: Optional[Graph] = None) -> WarmStartSequential:
    """Build the warm-start strategy for the checkpoint at ``checkpoint_path``."""
    return WarmStartSequential(load_checkpoint(checkpoint_path, graph=graph))
