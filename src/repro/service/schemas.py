"""Request validation for the HTTP API: every error names the offending field.

The serving layer follows the construction-time validation idiom the config
(`SBPConfig`), backend/transport registries, and run registry (`RunRecord`)
established: a bad request is rejected immediately with a message that names
the field at fault, never half-parsed.  :func:`validate_job_request` turns a
decoded ``POST /jobs`` JSON body into a :class:`JobRequest` — the graph
fully materialised, the config resolved, everything typed — or raises a
:class:`ValidationError` whose ``field`` attribute the HTTP layer surfaces
in the structured 400 response.

Graph specifications (the ``graph`` object) come in three forms:

* an **edge list**: ``{"edges": [[src, dst], [src, dst, weight], ...]}``
  with optional ``num_vertices`` / ``name`` / ``true_assignment`` (vertex
  ids are 0-based);
* the **persisted form** ``graph_to_dict`` produces (``num_vertices`` +
  ``src`` / ``dst`` / ``weight`` arrays) — what a client holding a saved
  ``SBPResult`` already has;
* a **generator spec**: ``{"generator": "challenge", "graph_id": ...}`` or
  ``{"generator": "dcsbm", "num_vertices": ..., "num_communities": ...}``,
  so benchmarking clients need not ship edges at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.api.registry import available_strategies
from repro.core.config import SBPConfig, available_presets, config_preset
from repro.graphs.generators import (
    DCSBMSpec,
    DegreeSequenceSpec,
    challenge_graph,
    generate_dcsbm_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.io import graph_from_dict

__all__ = ["ValidationError", "JobRequest", "validate_job_request"]

#: Body keys accepted by ``POST /jobs``; anything else is rejected by name.
_ALLOWED_KEYS = frozenset(
    {"job_id", "priority", "strategy", "num_ranks", "config", "preset",
     "overrides", "timeout", "checkpoint_every", "graph"}
)
_GENERATORS = ("challenge", "dcsbm")


class ValidationError(ValueError):
    """A rejected request body; ``field`` names the offending field."""

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"field {field!r}: {message}")
        self.field = field


@dataclass(frozen=True)
class JobRequest:
    """A validated, fully materialised job submission."""

    graph: Graph
    config: SBPConfig
    preset: Optional[str]
    strategy: str
    num_ranks: int
    priority: int
    job_id: Optional[str]
    timeout: Optional[float]
    checkpoint_every: Optional[int]


def _require_int(body: Dict[str, object], key: str, minimum: Optional[int] = None) -> Optional[int]:
    if key not in body:
        return None
    value = body[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(key, f"must be an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ValidationError(key, f"must be at least {minimum}, got {value}")
    return value


def _build_edge_list_graph(spec: Dict[str, object]) -> Graph:
    edges = spec["edges"]
    if not isinstance(edges, list) or not edges:
        raise ValidationError("graph.edges", "must be a non-empty list of [src, dst(, weight)] rows")
    srcs, dsts, weights = [], [], []
    for i, row in enumerate(edges):
        if not isinstance(row, (list, tuple)) or len(row) not in (2, 3):
            raise ValidationError(
                "graph.edges", f"row {i} must be [src, dst] or [src, dst, weight], got {row!r}"
            )
        if any(isinstance(v, bool) or not isinstance(v, int) for v in row):
            raise ValidationError("graph.edges", f"row {i} must contain integers, got {row!r}")
        if row[0] < 0 or row[1] < 0:
            raise ValidationError("graph.edges", f"row {i} has a negative vertex id: {row!r}")
        srcs.append(row[0])
        dsts.append(row[1])
        weights.append(row[2] if len(row) == 3 else 1)
    inferred = max(max(srcs), max(dsts)) + 1
    num_vertices = spec.get("num_vertices", inferred)
    if isinstance(num_vertices, bool) or not isinstance(num_vertices, int) or num_vertices < inferred:
        raise ValidationError(
            "graph.num_vertices",
            f"must be an integer >= {inferred} (the largest vertex id + 1), got {num_vertices!r}",
        )
    truth = spec.get("true_assignment")
    if truth is not None:
        if not isinstance(truth, list) or len(truth) != num_vertices:
            raise ValidationError(
                "graph.true_assignment", f"must be a list of {num_vertices} labels"
            )
        truth = np.asarray(truth, dtype=np.int64)
    name = spec.get("name", "submitted-graph")
    if not isinstance(name, str):
        raise ValidationError("graph.name", f"must be a string, got {type(name).__name__}")
    return Graph(
        num_vertices,
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(weights, dtype=np.int64),
        true_assignment=truth,
        name=name,
    )


def _build_generator_graph(spec: Dict[str, object]) -> Graph:
    generator = spec["generator"]
    if generator not in _GENERATORS:
        raise ValidationError(
            "graph.generator", f"unknown generator {generator!r}; expected one of {list(_GENERATORS)}"
        )
    seed = spec.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValidationError("graph.seed", f"must be an integer, got {seed!r}")
    if generator == "challenge":
        graph_id = spec.get("graph_id")
        if not isinstance(graph_id, str):
            raise ValidationError("graph.graph_id", "required for the challenge generator")
        scale = spec.get("scale", 1.0)
        if isinstance(scale, bool) or not isinstance(scale, (int, float)) or scale <= 0:
            raise ValidationError("graph.scale", f"must be a positive number, got {scale!r}")
        try:
            return challenge_graph(graph_id, scale=float(scale), seed=seed)
        except (KeyError, ValueError) as exc:
            raise ValidationError("graph.graph_id", str(exc)) from exc
    # generator == "dcsbm"
    num_vertices = spec.get("num_vertices")
    num_communities = spec.get("num_communities")
    for key, value in (("num_vertices", num_vertices), ("num_communities", num_communities)):
        if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
            raise ValidationError(f"graph.{key}", f"must be a positive integer, got {value!r}")
    try:
        kwargs = {}
        degree_keys = ("min_degree", "max_degree", "exponent")
        if any(key in spec for key in degree_keys):
            kwargs["degree_spec"] = DegreeSequenceSpec(
                exponent=float(spec.get("exponent", 3.0)),
                min_degree=int(spec.get("min_degree", 2)),
                max_degree=int(spec.get("max_degree", 30)),
                duplicate=True,
            )
        dcsbm = DCSBMSpec(
            num_vertices=num_vertices,
            num_communities=num_communities,
            intra_inter_ratio=float(spec.get("intra_inter_ratio", 2.0)),
            block_size_alpha=float(spec.get("block_size_alpha", 2.0)),
            name=str(spec.get("name", f"dcsbm-{num_vertices}")),
            **kwargs,
        )
        return generate_dcsbm_graph(dcsbm, seed=seed)
    except (TypeError, ValueError) as exc:
        raise ValidationError("graph", str(exc)) from exc


def _build_graph(spec: object) -> Graph:
    if not isinstance(spec, dict):
        raise ValidationError("graph", f"must be an object, got {type(spec).__name__}")
    if "generator" in spec:
        return _build_generator_graph(spec)
    if "edges" in spec:
        return _build_edge_list_graph(spec)
    if "src" in spec and "dst" in spec and "num_vertices" in spec:
        try:
            return graph_from_dict(spec)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError("graph", f"invalid persisted graph: {exc}") from exc
    raise ValidationError(
        "graph",
        "must contain 'edges', a persisted graph ('num_vertices'/'src'/'dst'), or a 'generator' spec",
    )


def validate_job_request(body: object) -> JobRequest:
    """Validate a decoded ``POST /jobs`` body into a :class:`JobRequest`.

    Raises :class:`ValidationError` naming the offending field on any
    problem; never partially succeeds.
    """
    if not isinstance(body, dict):
        raise ValidationError("body", f"must be a JSON object, got {type(body).__name__}")
    unknown = set(body) - _ALLOWED_KEYS
    if unknown:
        raise ValidationError(
            sorted(unknown)[0],
            f"unknown field(s) {sorted(unknown)}; allowed fields: {sorted(_ALLOWED_KEYS)}",
        )
    if "graph" not in body:
        raise ValidationError("graph", "required")
    graph = _build_graph(body["graph"])

    strategy = body.get("strategy", "sequential")
    if not isinstance(strategy, str) or strategy not in available_strategies():
        raise ValidationError(
            "strategy",
            f"unknown strategy {strategy!r}; registered strategies: {available_strategies()}",
        )

    preset = body.get("preset")
    if preset is not None and (not isinstance(preset, str) or preset not in available_presets()):
        raise ValidationError(
            "preset", f"unknown preset {preset!r}; available presets: {available_presets()}"
        )
    config_entry = body.get("config")
    if config_entry is not None and preset is not None:
        raise ValidationError("config", "pass either 'config' or 'preset', not both")
    if config_entry is not None and not isinstance(config_entry, dict):
        raise ValidationError("config", f"must be an object, got {type(config_entry).__name__}")
    try:
        if config_entry is not None:
            config = SBPConfig.from_dict(config_entry)
        elif preset is not None:
            config = config_preset(preset)
        else:
            config = SBPConfig()
    except (TypeError, ValueError) as exc:
        raise ValidationError("config", str(exc)) from exc

    overrides = body.get("overrides")
    if overrides is not None:
        if not isinstance(overrides, dict):
            raise ValidationError("overrides", f"must be an object, got {type(overrides).__name__}")
        try:
            config = config.with_overrides(**overrides)
        except (TypeError, ValueError) as exc:
            raise ValidationError("overrides", str(exc)) from exc

    job_id = body.get("job_id")
    if job_id is not None and (not isinstance(job_id, str) or not job_id):
        raise ValidationError("job_id", f"must be a non-empty string, got {job_id!r}")

    priority = _require_int(body, "priority")
    num_ranks = _require_int(body, "num_ranks", minimum=1)
    checkpoint_every = _require_int(body, "checkpoint_every", minimum=0)

    timeout = body.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)) or timeout < 0:
            raise ValidationError("timeout", f"must be a non-negative number, got {timeout!r}")
        timeout = float(timeout)

    return JobRequest(
        graph=graph,
        config=config,
        preset=preset,
        strategy=strategy,
        num_ranks=num_ranks if num_ranks is not None else 1,
        priority=priority if priority is not None else 0,
        job_id=job_id,
        timeout=timeout,
        checkpoint_every=checkpoint_every,
    )
