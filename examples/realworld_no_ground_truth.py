#!/usr/bin/env python3
"""Community detection without ground truth, evaluated by description length.

The paper's real-world graphs (Table V / Fig. 6) have no reliable planted
communities, so result quality is measured with the *normalised description
length* ``DL_norm = DL / DL_null`` (lower is better; 1.0 means the model
explains nothing beyond a single giant community).

This example sweeps both distributed strategies over a rank grid using one
reusable :class:`repro.Partitioner` per strategy — the facade's object form,
convenient when the same (strategy, config) runs against many inputs — on a
structural stand-in for the Amazon co-purchasing graph, and reports DL_norm
per rank count plus the modelled cluster runtime from the harness's α-β cost
model.

Run with::

    python examples/realworld_no_ground_truth.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

import os

from repro import Partitioner, realworld_graph
from repro.harness import RuntimeModelParams, format_table, modeled_runtime

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE") == "1"


def main() -> None:
    graph = realworld_graph("amazon", scale=0.001 if SMOKE else 0.002, seed=3)
    params = RuntimeModelParams(tasks_per_node=4)
    rank_grid = (1, 4) if SMOKE else (1, 4, 8)

    print(f"Amazon stand-in: V={graph.num_vertices} E={graph.num_edges} "
          f"(original: V=403,394 E=3,387,388) — no ground truth available")

    rows = []
    for strategy in ("dcsbp", "edist"):
        for num_ranks in rank_grid:
            runner = Partitioner(strategy=strategy, config="fast", seed=17, num_ranks=num_ranks)
            result = runner.run(graph)
            rows.append(
                {
                    "algorithm": strategy,
                    "ranks": num_ranks,
                    "communities": result.num_communities,
                    "dl_norm": round(result.dl_norm(), 4),
                    "modeled_seconds": round(modeled_runtime(result, params), 3),
                }
            )

    print()
    print(format_table(rows, title="DL_norm (lower is better) and modelled runtime"))
    print("\nExpected shape (paper Fig. 6): EDiSt keeps DL_norm flat as ranks grow,"
          " while DC-SBP's DL_norm degrades once its subgraphs become too fragmented.")


if __name__ == "__main__":
    main()
