#!/usr/bin/env python3
"""Community detection without ground truth, evaluated by description length.

The paper's real-world graphs (Table V / Fig. 6) have no reliable planted
communities, so result quality is measured with the *normalised description
length* ``DL_norm = DL / DL_null`` (lower is better; 1.0 means the model
explains nothing beyond a single giant community).

This example runs DC-SBP and EDiSt on a structural stand-in for the Amazon
co-purchasing graph and reports DL_norm per rank count, plus the modelled
cluster runtime from the harness's α-β cost model.

Run with::

    python examples/realworld_no_ground_truth.py
"""

from repro import SBPConfig, divide_and_conquer_sbp, edist, realworld_graph
from repro.harness import RuntimeModelParams, format_table, modeled_runtime


def main() -> None:
    graph = realworld_graph("amazon", scale=0.002, seed=3)
    config = SBPConfig.fast(seed=17)
    params = RuntimeModelParams(tasks_per_node=4)

    print(f"Amazon stand-in: V={graph.num_vertices} E={graph.num_edges} "
          f"(original: V=403,394 E=3,387,388) — no ground truth available")

    rows = []
    for algorithm, runner in (("dcsbp", divide_and_conquer_sbp), ("edist", edist)):
        for num_ranks in (1, 4, 8):
            result = runner(graph, num_ranks, config) if num_ranks > 1 else runner(graph, 1, config)
            rows.append(
                {
                    "algorithm": algorithm,
                    "ranks": num_ranks,
                    "communities": result.num_communities,
                    "dl_norm": round(result.dl_norm(), 4),
                    "modeled_seconds": round(modeled_runtime(result, params), 3),
                }
            )

    print()
    print(format_table(rows, title="DL_norm (lower is better) and modelled runtime"))
    print("\nExpected shape (paper Fig. 6): EDiSt keeps DL_norm flat as ranks grow,"
          " while DC-SBP's DL_norm degrades once its subgraphs become too fragmented.")


if __name__ == "__main__":
    main()
