#!/usr/bin/env python3
"""Quickstart: partition a Graph-Challenge-style graph with the public API.

This walks through the paper's Fig. 1 pipeline on a small synthetic graph:
generate a degree-corrected SBM graph with planted communities, run
stochastic block partitioning through the :func:`repro.partition` facade,
and watch the agglomerative search (block-merge + MCMC cycles under the
golden-ratio search) converge on the right number of communities via a
run-lifecycle observer.

Run with::

    python examples/quickstart.py

Set ``REPRO_EXAMPLES_SMOKE=1`` (as ``scripts/verify.sh --examples`` does) to
run a further scaled-down configuration suitable for CI.
"""

import os

from repro import RunObserver, partition
from repro.blockmodel import Blockmodel
from repro.graphs.generators import challenge_graph

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE") == "1"


class SearchProgress(RunObserver):
    """Print one line per agglomerative cycle as the search runs."""

    def __init__(self) -> None:
        self.cycles = 0

    def on_cycle(self, event) -> None:
        self.cycles += 1
        target = (event.search_state or {}).get("target_blocks", "-")
        print(f"  cycle {event.cycle:>2}: B={event.num_blocks:>4}  DL={event.description_length:>12.1f}  "
              f"sweeps={event.mcmc_sweeps:>2}  next target B={target}")


def main() -> None:
    # A scaled-down version of the Graph Challenge "20k-hard" dataset
    # (high community overlap, high block-size variation — the difficult case).
    graph = challenge_graph("20k-hard", scale=0.015 if SMOKE else 0.03, seed=0)
    print(f"Graph: {graph.name}  V={graph.num_vertices}  E={graph.num_edges}  "
          f"planted communities={len(set(graph.true_assignment.tolist()))}")

    print("\nAgglomerative search trajectory (paper Fig. 1):")
    progress = SearchProgress()
    result = partition(graph, strategy="sequential", config="fast", seed=42,
                       observers=[progress])

    truth_dl = Blockmodel.from_assignment(graph, graph.true_assignment, relabel=True).description_length()
    print("\nResult:")
    print(f"  observed cycles   : {progress.cycles} (history records: {len(result.history)})")
    print(f"  communities found : {result.num_communities}")
    print(f"  NMI vs planted    : {result.nmi():.3f}")
    print(f"  description length: {result.description_length:.1f} (planted truth: {truth_dl:.1f})")
    print(f"  normalised DL     : {result.dl_norm():.3f} (1.0 = everything in one community)")
    print(f"  runtime           : {result.runtime_seconds:.1f}s "
          f"(block merge {result.phase_seconds.get('block_merge', 0):.1f}s, "
          f"MCMC {result.phase_seconds.get('mcmc', 0):.1f}s)")


if __name__ == "__main__":
    main()
