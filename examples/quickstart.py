#!/usr/bin/env python3
"""Quickstart: run sequential SBP on a Graph-Challenge-style graph.

This walks through the paper's Fig. 1 pipeline on a small synthetic graph:
generate a degree-corrected SBM graph with planted communities, run
stochastic block partitioning, and inspect how the agglomerative search
(block-merge + MCMC cycles under the golden-ratio search) converges on the
right number of communities.

Run with::

    python examples/quickstart.py
"""

from repro import SBPConfig, challenge_graph, stochastic_block_partition
from repro.blockmodel import Blockmodel


def main() -> None:
    # A scaled-down version of the Graph Challenge "20k-hard" dataset
    # (high community overlap, high block-size variation — the difficult case).
    graph = challenge_graph("20k-hard", scale=0.03, seed=0)
    print(f"Graph: {graph.name}  V={graph.num_vertices}  E={graph.num_edges}  "
          f"planted communities={len(set(graph.true_assignment.tolist()))}")

    config = SBPConfig.fast(seed=42)
    result = stochastic_block_partition(graph, config)

    print("\nAgglomerative search trajectory (paper Fig. 1):")
    print(f"  {'cycle':>5}  {'blocks':>6}  {'description length':>20}  {'MCMC sweeps':>11}")
    for record in result.history:
        print(f"  {record.iteration:>5}  {record.num_blocks:>6}  {record.description_length:>20.1f}  {record.mcmc_sweeps:>11}")

    truth_dl = Blockmodel.from_assignment(graph, graph.true_assignment, relabel=True).description_length()
    print("\nResult:")
    print(f"  communities found : {result.num_communities}")
    print(f"  NMI vs planted    : {result.nmi():.3f}")
    print(f"  description length: {result.description_length:.1f} (planted truth: {truth_dl:.1f})")
    print(f"  normalised DL     : {result.dl_norm():.3f} (1.0 = everything in one community)")
    print(f"  runtime           : {result.runtime_seconds:.1f}s "
          f"(block merge {result.phase_seconds.get('block_merge', 0):.1f}s, "
          f"MCMC {result.phase_seconds.get('mcmc', 0):.1f}s)")


if __name__ == "__main__":
    main()
