#!/usr/bin/env python3
"""Partitioning-as-a-service, end to end, in one process.

Starts the HTTP job service on an ephemeral port, submits three jobs with
mixed priorities over one worker (so the priority order is observable),
polls live progress/ETA while they run, then fetches each finished
``SBPResult`` back over the wire and checks its accuracy against the
planted ground truth.

Everything speaks plain HTTP/JSON through ``urllib`` — exactly what an
external client would do — but the server runs in-process, so the demo
needs no open ports or separate terminals.

Run with::

    python examples/service_demo.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

import json
import os
import time
import urllib.error
import urllib.request

from repro.core.results import SBPResult
from repro.service import PartitionService

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE") == "1"


def call(url, method="GET", body=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def main() -> None:
    num_vertices = 120 if SMOKE else 400
    communities = 4 if SMOKE else 8

    # One worker: the queue drains strictly in priority order, which the
    # submission order below deliberately contradicts.
    with PartitionService(max_workers=1, record_runs=False) as service:
        base = service.base_url
        print(f"service up at {base}")
        status, health = call(base + "/healthz")
        assert status == 200 and health["status"] == "ok"

        submissions = [
            ("background-sweep", 0),
            ("interactive-query", 10),
            ("batch-refresh", 5),
        ]
        for i, (job_id, priority) in enumerate(submissions):
            status, job = call(base + "/jobs", "POST", {
                "job_id": job_id,
                "priority": priority,
                "preset": "fast",
                "graph": {
                    "generator": "dcsbm",
                    "num_vertices": num_vertices,
                    "num_communities": communities,
                    "intra_inter_ratio": 4.0,
                    "block_size_alpha": 10.0,
                    "min_degree": 8,
                    "seed": 100 + i,
                },
            })
            assert status == 201, (status, job)
            print(f"submitted {job_id!r} (priority {priority}) -> {job['state']}")

        pending = {job_id for job_id, _ in submissions}
        finish_order = []
        while pending:
            for job_id in sorted(pending):
                status, view = call(base + f"/jobs/{job_id}")
                assert status == 200
                progress = view["progress"]
                print(f"  {job_id:18s} {view['state']:9s} "
                      f"progress={progress['progress']:.2f} "
                      f"blocks={progress['current_blocks']:4d} "
                      f"eta={progress['eta_seconds'] if progress['eta_seconds'] is None else round(progress['eta_seconds'], 2)}")
                if view["state"] in ("succeeded", "failed", "cancelled", "timeout"):
                    pending.discard(job_id)
                    finish_order.append(job_id)
            time.sleep(0.05)

        print(f"\nfinish order: {finish_order}")
        # The first submission grabs the idle worker before the others even
        # arrive; everything actually *queued* drains in priority order.
        assert finish_order[1:] == ["interactive-query", "batch-refresh"], finish_order

        print("\nresults:")
        for job_id, _ in submissions:
            status, payload = call(base + f"/jobs/{job_id}/result")
            assert status == 200, (status, payload)
            result = SBPResult.from_dict(payload)
            nmi = result.nmi()
            print(f"  {job_id:18s} communities={result.num_communities:3d} "
                  f"NMI={nmi:.2f} DL_norm={result.dl_norm():.3f}")
            assert nmi > 0.3, f"{job_id} recovered implausibly little structure (NMI={nmi:.2f})"

        status, metrics = call(base + "/metrics")
        assert status == 200
        assert metrics["states"]["succeeded"] == len(submissions)
        print(f"\nmetrics: {metrics['finished']} finished, "
              f"p50 latency {metrics['latency_seconds']['p50']:.2f}s")
    print("service drained cleanly")


if __name__ == "__main__":
    main()
