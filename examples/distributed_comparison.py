#!/usr/bin/env python3
"""DC-SBP vs EDiSt: the paper's core comparison, on one graph.

Reproduces the essence of Tables VII/VIII on a single parameter-sweep graph:
as the number of (simulated) MPI ranks grows, the divide-and-conquer baseline
loses accuracy — its round-robin data distribution strands more and more
island vertices — while EDiSt, which replicates the graph and synchronises
blockmodels with all-gathers, keeps the single-node accuracy.

The comparison is exactly what the strategy registry exists for: the same
graph and config dispatched under ``strategy="dcsbp"`` and
``strategy="edist"`` through one :func:`repro.partition` call.

Run with::

    python examples/distributed_comparison.py [graph_id] [scale]

e.g. ``python examples/distributed_comparison.py FTT33 0.05`` for the sparse
failure mode or ``TTT33 0.05`` (default) for the dense one.  Set
``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

import os
import sys

from repro import partition, parameter_sweep_graph
from repro.harness import format_table

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE") == "1"


def main() -> None:
    graph_id = sys.argv[1] if len(sys.argv) > 1 else "TTT33"
    default_scale = 0.03 if SMOKE else 0.05
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else default_scale
    rank_grid = (2, 4) if SMOKE else (2, 4, 8, 16)
    graph = parameter_sweep_graph(graph_id, scale=scale, seed=5)

    print(f"Graph {graph_id}: V={graph.num_vertices} E={graph.num_edges} "
          f"average degree {graph.average_degree:.1f}")

    baseline = partition(graph, strategy="sequential", config="fast", seed=11)
    print(f"Shared-memory baseline (1 rank): NMI={baseline.nmi():.2f}, "
          f"{baseline.num_communities} communities\n")

    rows = []
    for num_ranks in rank_grid:
        dc = partition(graph, strategy="dcsbp", config="fast", seed=11, num_ranks=num_ranks)
        ed = partition(graph, strategy="edist", config="fast", seed=11, num_ranks=num_ranks)
        rows.append(
            {
                "ranks": num_ranks,
                "dcsbp_nmi": round(dc.nmi(), 2),
                "dcsbp_islands": round(dc.metadata["island_fraction"], 2),
                "dcsbp_communities": dc.num_communities,
                "edist_nmi": round(ed.nmi(), 2),
                "edist_communities": ed.num_communities,
            }
        )
        print(f"  ranks={num_ranks:2d}: DC-SBP NMI={rows[-1]['dcsbp_nmi']:.2f} "
              f"(islands {rows[-1]['dcsbp_islands']:.0%}), EDiSt NMI={rows[-1]['edist_nmi']:.2f}")

    print()
    print(format_table(rows, title=f"DC-SBP vs EDiSt on {graph_id} (baseline NMI {baseline.nmi():.2f})"))
    print("\nExpected shape (paper Tables VII/VIII): DC-SBP NMI decays as ranks "
          "grow — earlier on sparse graphs — while EDiSt stays at the baseline.")


if __name__ == "__main__":
    main()
