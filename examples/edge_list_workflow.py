#!/usr/bin/env python3
"""Full workflow on a user-supplied edge list, including result persistence.

Shows the I/O path a downstream user of the library would take with their own
data: write/read a Graph-Challenge-style TSV edge list (plus optional ground
truth), partition it with EDiSt through the :func:`repro.partition` facade,
evaluate, persist the full :class:`~repro.core.results.SBPResult` as JSON,
and prove the reload reproduces the run's metrics exactly.

Run with::

    python examples/edge_list_workflow.py [path/to/edges.tsv]

Without an argument, a demonstration graph is generated and written to a
temporary directory first, so the script is runnable out of the box.  Set
``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

import os
import sys
import tempfile
from pathlib import Path

from repro import SBPResult, partition
from repro.evaluation import compare_partitions
from repro.graphs.generators import DCSBMSpec, generate_dcsbm_graph
from repro.graphs.io import load_edge_list, save_edge_list, save_truth_file

SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE") == "1"


def make_demo_files(directory: Path) -> tuple:
    """Generate a small DCSBM graph and persist it as TSV files."""
    spec = DCSBMSpec(
        num_vertices=200 if SMOKE else 400,
        num_communities=6,
        intra_inter_ratio=3.0,
        name="demo",
    )
    graph = generate_dcsbm_graph(spec, seed=1)
    edge_path = directory / "demo_edges.tsv"
    truth_path = directory / "demo_truth.tsv"
    save_edge_list(graph, edge_path)
    save_truth_file(graph.true_assignment, truth_path)
    return edge_path, truth_path


def main() -> None:
    if len(sys.argv) > 1:
        edge_path, truth_path = Path(sys.argv[1]), None
    else:
        tmp = Path(tempfile.mkdtemp(prefix="repro-example-"))
        edge_path, truth_path = make_demo_files(tmp)
        print(f"(no edge list supplied — wrote a demo graph to {tmp})")

    graph = load_edge_list(edge_path, truth_path=truth_path, name=edge_path.stem)
    print(f"Loaded {graph.name}: V={graph.num_vertices} E={graph.num_edges}")

    result = partition(graph, strategy="edist", config="fast", seed=7,
                       num_ranks=2 if SMOKE else 4)
    print(f"EDiSt ({result.num_ranks} ranks) found {result.num_communities} communities, "
          f"DL_norm={result.dl_norm():.3f}")

    if graph.true_assignment is not None:
        comparison = compare_partitions(graph.true_assignment, result.assignment)
        print(f"Against ground truth: NMI={comparison.nmi:.3f}, ARI={comparison.ari:.3f}, "
              f"pairwise F1={comparison.f1:.3f}")

    # Persist the detected communities (TSV, for interchange) and the full
    # result object (JSON, for exact reloading).
    out_path = edge_path.with_name(edge_path.stem + "_communities.tsv")
    save_truth_file(result.assignment, out_path)
    result_path = edge_path.with_name(edge_path.stem + "_result.json")
    result.save(result_path)
    reloaded = SBPResult.load(result_path)
    assert reloaded.description_length == result.description_length
    assert (reloaded.assignment == result.assignment).all()
    print(f"Detected communities written to {out_path}")
    print(f"Full result persisted to {result_path} "
          f"(reload verified: DL={reloaded.description_length:.1f}, "
          f"{len(reloaded.history)} history records)")


if __name__ == "__main__":
    main()
