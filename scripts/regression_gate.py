#!/usr/bin/env python
"""CLI for the perf-regression gate (see :mod:`repro.registry.gate`).

Compares the latest smoke-mode registry run of each gated benchmark against
the committed baselines and exits non-zero on a regression or a missing run.

Typical flows::

    # Gate the current registry against results/baselines.json:
    python scripts/regression_gate.py

    # Re-anchor the baselines to the latest smoke runs on this machine
    # (run `scripts/verify.sh --bench-gate` first to populate the registry):
    python scripts/regression_gate.py --refresh-baselines

    # Self-test the fail path: a passing run, synthetically slowed 2x,
    # must trip the gate (CI asserts this):
    python scripts/regression_gate.py --simulate-slowdown 2.0

    # Report without failing (cross-machine CI comparison of committed
    # baselines, where wall-clock deltas are advisory):
    python scripts/regression_gate.py --advisory

Exit codes: 0 = every gated experiment passed (or --advisory/--refresh),
1 = at least one regression or missing run, 2 = bad invocation/inputs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running as `python scripts/regression_gate.py` without PYTHONPATH=src.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.registry import (  # noqa: E402
    GATED_EXPERIMENTS,
    evaluate_gate,
    refresh_baselines,
    registry_dir,
    summarize,
)
from repro.registry.gate import BASELINE_MODE, default_baselines_path  # noqa: E402

_STATUS_TAGS = {
    "ok": "PASS",
    "regression": "FAIL",
    "missing_run": "FAIL",
    "no_baseline": "WARN",
}


def _parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "--experiments", nargs="+", default=list(GATED_EXPERIMENTS), metavar="NAME",
        help=f"experiments to gate (default: {' '.join(GATED_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--baselines", type=Path, default=None, metavar="FILE",
        help="baselines JSON file (default: <results dir>/baselines.json)",
    )
    parser.add_argument(
        "--registry", type=Path, default=None, metavar="DIR",
        help="registry directory (default: $REPRO_REGISTRY_DIR or <results dir>/registry)",
    )
    parser.add_argument(
        "--mode", default=BASELINE_MODE,
        help=f"sizing mode of the runs to gate (default: {BASELINE_MODE})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None, metavar="FRACTION",
        help="override the allowed relative slowdown (e.g. 0.25 = +25%%)",
    )
    parser.add_argument(
        "--simulate-slowdown", type=float, default=1.0, metavar="FACTOR",
        help="multiply observed wall-clocks by FACTOR before comparing (gate self-test)",
    )
    parser.add_argument(
        "--refresh-baselines", action="store_true",
        help="rewrite the baseline entries from the latest runs instead of gating",
    )
    parser.add_argument(
        "--advisory", action="store_true",
        help="report verdicts but always exit 0 (cross-machine comparisons)",
    )
    parser.add_argument(
        "--history", action="store_true",
        help="also print the per-config registry summary (median/min over history)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(argv)
    baselines_path = args.baselines if args.baselines is not None else default_baselines_path()
    directory = args.registry if args.registry is not None else registry_dir()

    if args.tolerance is not None and args.tolerance < 0:
        print("error: --tolerance must be non-negative", file=sys.stderr)
        return 2
    if args.simulate_slowdown <= 0:
        print("error: --simulate-slowdown must be positive", file=sys.stderr)
        return 2

    if args.refresh_baselines:
        try:
            data = refresh_baselines(
                baselines_path=baselines_path,
                experiments=args.experiments,
                directory=directory,
                mode=args.mode,
                tolerance=args.tolerance,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"refreshed {len(args.experiments)} baseline(s) in {baselines_path}:")
        for name in args.experiments:
            entry = data["experiments"][name]
            print(f"  {name}: wall_seconds={entry['wall_seconds']:.3f} @ {entry['git_rev'][:12]}")
        return 0

    try:
        report = evaluate_gate(
            experiments=args.experiments,
            baselines_path=baselines_path,
            directory=directory,
            mode=args.mode,
            tolerance=args.tolerance,
            slowdown=args.simulate_slowdown,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"perf-regression gate: baselines={baselines_path} registry={directory} mode={args.mode}")
    if args.simulate_slowdown != 1.0:
        print(f"  (observed wall-clocks synthetically scaled x{args.simulate_slowdown})")
    for check in report.checks:
        print(f"[{_STATUS_TAGS[check.status]}] {check.message}")

    if args.history:
        for name in args.experiments:
            for row in summarize(name, directory=directory, mode=args.mode):
                print(
                    f"history {name} [{row['fingerprint']}]: {row['runs']} run(s), "
                    f"median {row['wall_seconds_median']:.3f}s, min {row['wall_seconds_min']:.3f}s, "
                    f"latest {row['wall_seconds_latest']:.3f}s"
                )

    if report.failed:
        failed = ", ".join(check.experiment for check in report.failures)
        verdict = f"gate FAILED for: {failed}"
        if args.advisory:
            print(f"{verdict} (advisory mode: exiting 0)")
            return 0
        print(verdict)
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
