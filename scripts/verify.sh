#!/usr/bin/env bash
# Tier-1 verification gate: fast-fail lint, then the full test suite.
#
# Usage:  scripts/verify.sh [--differential | --examples] [extra pytest args]
#
# This is the single command builders gate on (see ROADMAP.md).  The
# compileall step catches syntax/import-level breakage in seconds before
# the multi-minute pytest run starts; extra arguments are forwarded to
# pytest (e.g. `scripts/verify.sh tests/` to skip the benchmark suite).
#
#   --differential   run only the cross-backend differential suite
#                    (tests/differential/): bit-identity of all three
#                    storage backends (dict / csr / sparse_csr) through
#                    sequential SBP, DC-SBP and EDiSt, golden-file
#                    regression partitions, and old→new API equivalence.
#
#   --examples       run every examples/*.py in scaled-down smoke mode
#                    (REPRO_EXAMPLES_SMOKE=1), so breakage of the public
#                    API surface the examples exercise is caught by the
#                    tier-1 gate.
#
#   --bench-gate     run the four gated benchmarks in smoke mode (recording
#                    them in the experiment registry, results/registry/) and
#                    then scripts/regression_gate.py against the committed
#                    results/baselines.json; extra arguments are forwarded
#                    to regression_gate.py (e.g. --advisory, --tolerance).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: python -m compileall src =="
python -m compileall -q src

if [[ "${1:-}" == "--differential" ]]; then
    shift
    echo "== differential: python -m pytest -x -q tests/differential =="
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q tests/differential "$@"
    exit 0
fi

if [[ "${1:-}" == "--examples" ]]; then
    shift
    for example in examples/*.py; do
        echo "== example (smoke): python ${example} =="
        REPRO_EXAMPLES_SMOKE=1 PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python "$example"
    done
    echo "== all examples passed =="
    exit 0
fi

if [[ "${1:-}" == "--bench-gate" ]]; then
    shift
    echo "== bench-gate: gated benchmarks (smoke) =="
    REPRO_BENCH_MODE=smoke PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q \
        benchmarks/test_backend_throughput.py \
        benchmarks/test_merge_throughput.py \
        benchmarks/test_sparse_backend_scaling.py \
        benchmarks/test_fig4_strong_scaling.py
    echo "== bench-gate: scripts/regression_gate.py =="
    PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python scripts/regression_gate.py "$@"
    exit 0
fi

echo "== tests: python -m pytest -x -q =="
PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python -m pytest -x -q "$@"
