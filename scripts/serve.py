#!/usr/bin/env python3
"""Serve the partitioning job API over HTTP.

Starts the :class:`repro.service.PartitionService` — a priority-queued job
executor behind the stdlib ``ThreadingHTTPServer`` — and blocks until
interrupted.  In-flight jobs drain gracefully on Ctrl-C.

Usage::

    PYTHONPATH=src python scripts/serve.py [options]

Options::

    --host HOST              bind address        (default 127.0.0.1)
    --port PORT              bind port, 0 = ephemeral (default 8349)
    --workers N              concurrent jobs     (default 2)
    --timeout SECONDS        default per-job wall-clock budget (default none)
    --checkpoint-dir DIR     enable checkpointing; files land here
    --checkpoint-every N     default checkpoint cadence in cycles (default 0)
    --registry-dir DIR       experiment-registry override
    --no-record              do not record finished jobs in the registry

Try it::

    curl -s localhost:8349/healthz
    curl -s -X POST localhost:8349/jobs -d '{
        "graph": {"generator": "dcsbm", "num_vertices": 500, "num_communities": 8},
        "preset": "fast", "priority": 1}'
    curl -s localhost:8349/jobs/<id>
    curl -s localhost:8349/jobs/<id>/result
    curl -s localhost:8349/metrics
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import JobExecutor, PartitionService  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8349)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--checkpoint-dir", default=None)
    parser.add_argument("--checkpoint-every", type=int, default=0)
    parser.add_argument("--registry-dir", default=None)
    parser.add_argument("--no-record", action="store_true")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    executor = JobExecutor(
        max_workers=args.workers,
        default_timeout=args.timeout,
        checkpoint_dir=args.checkpoint_dir,
        default_checkpoint_every=args.checkpoint_every,
        record_runs=not args.no_record,
        registry_directory=args.registry_dir,
    )
    service = PartitionService(executor=executor, host=args.host, port=args.port)
    # The service wrapper only drains executors it created; this one is
    # ours, so drain it explicitly after the server stops.
    service.start()
    print(f"partition service listening on {service.base_url} "
          f"({args.workers} worker{'s' if args.workers != 1 else ''})")
    print("POST /jobs | GET /jobs/{id} | GET /jobs/{id}/result | "
          "DELETE /jobs/{id} | GET /healthz | GET /metrics")
    try:
        service._thread.join()
    except KeyboardInterrupt:
        print("\nshutting down: draining in-flight jobs ...")
    finally:
        service.stop()
        executor.shutdown(wait=True, cancel_pending=False)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
