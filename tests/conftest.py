"""Shared fixtures: small deterministic graphs and fast SBP configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SBPConfig
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph
from repro.graphs.graph import Graph


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """A hand-built 6-vertex directed graph with two obvious communities."""
    edges = [
        (0, 1), (1, 2), (2, 0), (1, 0), (2, 1),       # triangle A
        (3, 4), (4, 5), (5, 3), (4, 3), (5, 4),       # triangle B
        (0, 3),                                        # one bridge
    ]
    truth = np.array([0, 0, 0, 1, 1, 1])
    return Graph.from_edges(6, edges, true_assignment=truth, name="tiny")


@pytest.fixture(scope="session")
def planted_graph() -> Graph:
    """A small, dense planted-partition graph that SBP recovers exactly."""
    spec = DCSBMSpec(
        num_vertices=160,
        num_communities=4,
        degree_spec=DegreeSequenceSpec(exponent=3.0, min_degree=8, max_degree=30, duplicate=True),
        intra_inter_ratio=4.0,
        block_size_alpha=10.0,
        name="planted-160",
    )
    return generate_dcsbm_graph(spec, seed=12345)


@pytest.fixture(scope="session")
def hard_graph() -> Graph:
    """A harder planted graph (paper-style high overlap / high variation)."""
    spec = DCSBMSpec(
        num_vertices=220,
        num_communities=5,
        degree_spec=DegreeSequenceSpec(exponent=3.0, min_degree=6, max_degree=40, duplicate=True),
        intra_inter_ratio=2.0,
        block_size_alpha=2.0,
        name="hard-220",
    )
    return generate_dcsbm_graph(spec, seed=999)


@pytest.fixture(scope="session")
def sparse_graph() -> Graph:
    """A sparse graph with minimum degree 1 (the paper's second failure mode)."""
    spec = DCSBMSpec(
        num_vertices=300,
        num_communities=5,
        degree_spec=DegreeSequenceSpec(exponent=2.1, min_degree=1, max_degree=40, duplicate=True),
        intra_inter_ratio=2.5,
        block_size_alpha=2.0,
        name="sparse-300",
    )
    return generate_dcsbm_graph(spec, seed=4242)


@pytest.fixture(scope="session")
def fast_config() -> SBPConfig:
    """An SBP configuration tuned for sub-second test runs."""
    return SBPConfig.fast(seed=7).with_overrides(max_mcmc_iterations=8)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2023)
