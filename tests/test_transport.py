"""Tests for the transport layer: registry, processes backend, shared graphs.

The registry tests mirror the matrix-backend conventions
(``tests/test_api_facade.py``): unknown names fail loudly, listing what *is*
registered.  The processes-transport tests hold the multiprocess backend to
the same Communicator contract the threaded tests establish — collectives,
point-to-point, failure aggregation with tracebacks, configurable timeouts —
plus the pieces unique to crossing a process boundary: CommStats parity and
shared-memory graph ingestion.
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import SBPConfig, TransportName
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph
from repro.graphs.shm import share_graph
from repro.mpi import run_distributed
from repro.mpi.transport import (
    DEFAULT_TIMEOUT,
    DistributedError,
    SelfTransport,
    Transport,
    available_transports,
    get_transport,
    register_transport,
    transport_registry_hint,
    unregister_transport,
)

TRANSPORTS = ["threads", "processes"]


@pytest.fixture(scope="module")
def small_graph():
    spec = DCSBMSpec(
        num_vertices=60,
        num_communities=3,
        degree_spec=DegreeSequenceSpec(exponent=3.0, min_degree=3, max_degree=12, duplicate=True),
        intra_inter_ratio=3.5,
        block_size_alpha=5.0,
        name="transport-60",
    )
    return generate_dcsbm_graph(spec, seed=13)


class TestRegistry:
    def test_builtin_transports_registered_in_order(self):
        assert available_transports() == ["self", "threads", "processes"]

    def test_get_transport_by_name(self):
        assert get_transport("self") is get_transport("self")
        assert isinstance(get_transport("self"), SelfTransport)
        for name in available_transports():
            assert get_transport(name).name == name

    def test_get_transport_instance_passthrough(self):
        instance = get_transport("threads")
        assert get_transport(instance) is instance

    def test_unknown_transport_lists_registered_transports(self):
        with pytest.raises(ValueError) as excinfo:
            get_transport("smoke-signals")
        message = str(excinfo.value)
        for name in available_transports():
            assert repr(name) in message

    def test_non_string_rejected(self):
        with pytest.raises(TypeError):
            get_transport(42)

    def test_register_and_unregister_round_trip(self):
        @register_transport("carrier-pigeon")
        class PigeonTransport(Transport):
            def launch(self, num_ranks, fn, args=(), kwargs=None, *, timeout=None):
                raise NotImplementedError

        try:
            assert "carrier-pigeon" in available_transports()
            assert get_transport("carrier-pigeon").name == "carrier-pigeon"
            assert "'carrier-pigeon'" in transport_registry_hint()
        finally:
            unregister_transport("carrier-pigeon")
        assert "carrier-pigeon" not in available_transports()

    def test_config_validates_against_live_registry(self):
        with pytest.raises(ValueError) as excinfo:
            SBPConfig(transport="smoke-signals")
        message = str(excinfo.value)
        for name in TransportName.ALL:
            assert repr(name) in message

    def test_config_accepts_every_builtin_transport(self):
        for name in TransportName.ALL:
            assert SBPConfig(transport=name).transport == name

    def test_run_distributed_validates_transport_even_for_one_rank(self):
        # The single-rank shortcut must not swallow a typo'd transport name.
        with pytest.raises(ValueError, match="registered transports"):
            run_distributed(1, lambda comm: comm.rank, transport="smoke-signals")


class TestProcessTransportCollectives:
    def test_allgather_returns_rank_indexed_values(self):
        result = run_distributed(
            4, lambda comm: comm.allgather(comm.rank * 10), transport="processes", timeout=30.0
        )
        assert all(values == [0, 10, 20, 30] for values in result.results)

    def test_send_recv_crosses_process_boundary(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("from-0", dest=1, tag=7)
                return None
            return comm.recv(source=0, tag=7)

        result = run_distributed(2, program, transport="processes", timeout=30.0)
        assert result.results[1] == "from-0"

    def test_numpy_payloads(self):
        def program(comm):
            gathered = comm.allgather(np.full(4, comm.rank))
            return np.concatenate(gathered).sum()

        result = run_distributed(3, program, transport="processes", timeout=30.0)
        assert result.results == [12, 12, 12]

    def test_shared_memory_graph_argument_identical_in_workers(self, small_graph):
        def program(comm, graph):
            src, dst, weight = graph.edge_arrays()
            return (
                graph.num_vertices,
                graph.num_edges,
                int(src.sum()),
                int(dst.sum()),
                int(weight.sum()),
            )

        result = run_distributed(2, program, small_graph, transport="processes", timeout=30.0)
        src, dst, weight = small_graph.edge_arrays()
        expected = (
            small_graph.num_vertices,
            small_graph.num_edges,
            int(src.sum()),
            int(dst.sum()),
            int(weight.sum()),
        )
        assert result.results == [expected, expected]


class TestFailureAggregation:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_distributed_error_preserves_per_rank_tracebacks(self, transport):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("boom on rank 1")
            comm.barrier()
            return comm.rank

        with pytest.raises(DistributedError) as excinfo:
            run_distributed(2, program, transport=transport, timeout=10.0)
        error = excinfo.value
        assert "boom on rank 1" in str(error)
        assert 1 in error.tracebacks
        assert "ValueError: boom on rank 1" in error.tracebacks[1]
        assert "program" in error.tracebacks[1]  # the worker frame survived

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_collective_mismatch_names_collective_and_step(self, transport):
        def program(comm):
            comm.barrier()  # step 0, matched
            if comm.rank == 0:
                return comm.allgather(comm.rank)  # step 1: allgather ...
            return comm.gather(comm.rank)  # ... vs gather

        with pytest.raises(DistributedError) as excinfo:
            run_distributed(2, program, transport=transport, timeout=10.0)
        assert "collective mismatch at step 1" in str(excinfo.value)

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_timeout_names_collective_and_step(self, transport):
        def program(comm):
            comm.barrier()  # step 0, matched
            if comm.rank == 0:
                comm.barrier()  # step 1: rank 1 never arrives
            else:
                time.sleep(5.0)
            return comm.rank

        start = time.monotonic()
        with pytest.raises(DistributedError) as excinfo:
            run_distributed(2, program, transport=transport, timeout=0.5)
        elapsed = time.monotonic() - start
        assert "'barrier' (step 1) timed out" in str(excinfo.value)
        # The configured timeout was honoured, not DEFAULT_TIMEOUT.
        assert elapsed < DEFAULT_TIMEOUT / 2

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_recv_timeout_names_source_and_tag(self, transport):
        def program(comm):
            if comm.rank == 1:
                return comm.recv(source=0, tag=3)  # rank 0 never sends
            return None

        with pytest.raises(DistributedError) as excinfo:
            run_distributed(2, program, transport=transport, timeout=0.5)
        assert "recv on rank 1 from 0 (tag 3) timed out" in str(excinfo.value)

    def test_default_timeout_is_300_seconds(self):
        assert DEFAULT_TIMEOUT == 300.0
        from repro.mpi.threaded import _DEFAULT_TIMEOUT  # back-compat alias

        assert _DEFAULT_TIMEOUT == DEFAULT_TIMEOUT


class TestCommStatsParity:
    def test_identical_stats_across_transports(self):
        def program(comm):
            comm.barrier()
            comm.bcast({"payload": list(range(32))}, root=0)
            comm.allgather(np.full(8, comm.rank))
            comm.alltoall([(comm.rank, dest) for dest in range(comm.size)])
            gathered = comm.gather(comm.rank, root=0)
            if comm.rank == 0:
                comm.send("ping", dest=1, tag=1)
            elif comm.rank == 1:
                comm.recv(source=0, tag=1)
            return gathered

        runs = {
            transport: run_distributed(3, program, transport=transport, timeout=30.0)
            for transport in TRANSPORTS
        }
        threads, processes = runs["threads"], runs["processes"]
        assert threads.results == processes.results
        # Per-rank accounting is identical call-for-call and byte-for-byte …
        assert threads.comm_stats == processes.comm_stats
        # … so the aggregate the cost model consumes is too.
        threads_total = threads.total_comm_stats()
        processes_total = processes.total_comm_stats()
        assert threads_total.calls == processes_total.calls
        assert threads_total.bytes_sent == processes_total.bytes_sent
        assert threads_total.bytes_received == processes_total.bytes_received


class TestSharedGraph:
    def test_round_trip_preserves_every_array(self, small_graph):
        shared = share_graph(small_graph)
        try:
            attached = shared.attach()
            assert attached.num_vertices == small_graph.num_vertices
            assert attached.num_edges == small_graph.num_edges
            assert attached.name == small_graph.name
            for original, view in (
                (small_graph.out_degrees, attached.out_degrees),
                (small_graph.in_degrees, attached.in_degrees),
                (small_graph.degrees, attached.degrees),
            ):
                assert np.array_equal(original, view)
            for a, b in zip(small_graph.edge_arrays(), attached.edge_arrays()):
                assert np.array_equal(a, b)
            if small_graph.true_assignment is not None:
                assert np.array_equal(small_graph.true_assignment, attached.true_assignment)
        finally:
            shared.close()

    def test_attached_arrays_are_read_only(self, small_graph):
        shared = share_graph(small_graph)
        try:
            attached = shared.attach()
            with pytest.raises(ValueError):
                attached.out_degrees[0] = 99
        finally:
            shared.close()

    def test_descriptor_pickles_without_segment_handle(self, small_graph):
        import pickle

        shared = share_graph(small_graph)
        try:
            clone = pickle.loads(pickle.dumps(shared))
            assert clone._shm is None
            assert clone.shm_name == shared.shm_name
            assert np.array_equal(clone.attach().degrees, small_graph.degrees)
        finally:
            shared.close()


@pytest.mark.skipif(os.cpu_count() < 4, reason="speedup is only observable with >= 4 cores")
class TestProcessSpeedup:
    def test_processes_beat_threads_on_cpu_bound_ranks(self):
        def program(comm):
            # Pure-python CPU burn: the GIL serialises this under threads.
            total = 0
            for i in range(2_000_000):
                total += i * i
            comm.barrier()
            return total

        timings = {}
        for transport in TRANSPORTS:
            start = time.monotonic()
            run_distributed(4, program, transport=transport, timeout=120.0)
            timings[transport] = time.monotonic() - start
        assert timings["processes"] * 1.5 < timings["threads"]
