"""Tests for the simulated MPI communicator."""

import numpy as np
import pytest

from repro.mpi.communicator import ANY_SOURCE, ReduceOp, SelfCommunicator
from repro.mpi.launcher import DistributedError, run_distributed
from repro.mpi.stats import CommStats, payload_bytes
from repro.mpi.threaded import ThreadCommWorld


class TestSelfCommunicator:
    def test_basic_properties(self):
        comm = SelfCommunicator()
        assert comm.rank == 0 and comm.size == 1 and comm.is_root

    def test_collectives_are_identity(self):
        comm = SelfCommunicator()
        comm.barrier()
        assert comm.bcast({"a": 1}) == {"a": 1}
        assert comm.gather(5) == [5]
        assert comm.allgather("x") == ["x"]
        assert comm.alltoall([3]) == [3]
        assert comm.scatter([9]) == 9
        assert comm.allreduce(4) == 4

    def test_point_to_point_rejected(self):
        comm = SelfCommunicator()
        with pytest.raises(RuntimeError):
            comm.send(1, dest=0)
        with pytest.raises(RuntimeError):
            comm.recv()

    def test_stats_recorded(self):
        comm = SelfCommunicator()
        comm.allgather([1, 2, 3])
        assert comm.stats.calls["allgather"] == 1
        assert comm.stats.total_bytes_sent > 0


class TestThreadCommunicator:
    def test_allgather_returns_rank_indexed_values(self):
        result = run_distributed(4, lambda comm: comm.allgather(comm.rank * 10))
        for rank, values in enumerate(result.results):
            assert values == [0, 10, 20, 30]

    def test_bcast_from_nonzero_root(self):
        def program(comm):
            payload = {"data": list(range(5))} if comm.rank == 2 else None
            return comm.bcast(payload, root=2)

        result = run_distributed(3, program)
        assert all(r == {"data": [0, 1, 2, 3, 4]} for r in result.results)

    def test_gather_only_root_receives(self):
        result = run_distributed(4, lambda comm: comm.gather(comm.rank + 1, root=1))
        assert result.results[1] == [1, 2, 3, 4]
        assert result.results[0] is None and result.results[2] is None

    def test_scatter(self):
        def program(comm):
            data = [f"item-{i}" for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(data, root=0)

        result = run_distributed(4, program)
        assert result.results == ["item-0", "item-1", "item-2", "item-3"]

    def test_alltoall_personalised_exchange(self):
        def program(comm):
            outgoing = [(comm.rank, dest) for dest in range(comm.size)]
            incoming = comm.alltoall(outgoing)
            return incoming

        result = run_distributed(3, program)
        for rank, incoming in enumerate(result.results):
            assert incoming == [(src, rank) for src in range(3)]

    def test_allreduce_operations(self):
        def program(comm):
            return (
                comm.allreduce(comm.rank + 1, ReduceOp.SUM),
                comm.allreduce(comm.rank + 1, ReduceOp.MIN),
                comm.allreduce(comm.rank + 1, ReduceOp.MAX),
                comm.allreduce(comm.rank + 1, ReduceOp.PROD),
            )

        result = run_distributed(4, program)
        assert result.results[0] == (10, 1, 4, 24)

    def test_reduce_to_root(self):
        result = run_distributed(4, lambda comm: comm.reduce(comm.rank, ReduceOp.SUM, root=0))
        assert result.results[0] == 6
        assert result.results[1] is None

    def test_send_recv_specific_source(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("from-0", dest=1, tag=7)
                return None
            if comm.rank == 1:
                return comm.recv(source=0, tag=7)
            return None

        result = run_distributed(2, program)
        assert result.results[1] == "from-0"

    def test_recv_any_source(self):
        def program(comm):
            if comm.rank == 0:
                received = [comm.recv(source=ANY_SOURCE, tag=0) for _ in range(comm.size - 1)]
                return sorted(received)
            comm.send(comm.rank, dest=0)
            return None

        result = run_distributed(4, program)
        assert result.results[0] == [1, 2, 3]

    def test_numpy_payloads(self):
        def program(comm):
            gathered = comm.allgather(np.full(4, comm.rank))
            return int(sum(arr.sum() for arr in gathered))

        result = run_distributed(3, program)
        assert result.results == [12, 12, 12]

    def test_barrier_completes(self):
        result = run_distributed(5, lambda comm: comm.barrier() or comm.rank)
        assert result.results == [0, 1, 2, 3, 4]

    def test_collective_mismatch_raises(self):
        def program(comm):
            if comm.rank == 0:
                return comm.allgather(1)
            return comm.barrier()

        with pytest.raises(DistributedError):
            run_distributed(2, program, timeout=10.0)

    def test_rank_exception_propagates(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return comm.allgather(comm.rank)

        with pytest.raises(DistributedError) as excinfo:
            run_distributed(3, program, timeout=10.0)
        assert any(isinstance(e, ValueError) for e in excinfo.value.failures.values())

    def test_alltoall_wrong_length_rejected(self):
        def program(comm):
            return comm.alltoall([1])

        with pytest.raises(DistributedError):
            run_distributed(2, program, timeout=10.0)

    def test_comm_stats_collected_per_rank(self):
        result = run_distributed(3, lambda comm: comm.allgather(b"x" * 100) and None)
        assert len(result.comm_stats) == 3
        total = result.total_comm_stats()
        assert total.calls["allgather"] == 3
        assert total.total_bytes_sent > 0

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            ThreadCommWorld(0)
        with pytest.raises(ValueError):
            run_distributed(0, lambda comm: None)


class TestLauncherAndStats:
    def test_single_rank_uses_self_communicator(self):
        result = run_distributed(1, lambda comm: type(comm).__name__)
        assert result.results == ["SelfCommunicator"]
        assert result.root_result == "SelfCommunicator"

    def test_payload_bytes_scales_with_size(self):
        small = payload_bytes(np.zeros(10))
        large = payload_bytes(np.zeros(10000))
        assert large > small > 0
        assert payload_bytes(None) == 0

    def test_comm_stats_merge_and_aggregate(self):
        a = CommStats(rank=0)
        a.record("allgather", sent=10, received=20)
        b = CommStats(rank=1)
        b.record("allgather", sent=5, received=5)
        b.record("send", sent=3)
        total = CommStats.aggregate([a, b])
        assert total.calls == {"allgather": 2, "send": 1}
        assert total.total_bytes_sent == 18
        assert total.total_bytes_received == 25
        assert "allgather" in total.as_dict()["calls"]

    def test_kwargs_forwarded_to_rank_program(self):
        def program(comm, base, extra=0):
            return base + extra + comm.rank

        result = run_distributed(2, program, 100, extra=10)
        assert result.results == [110, 111]
