"""Merge-phase edge cases, exercised on both storage backends.

Covers the corners the differential suite's random graphs may not hit
reliably: blocks with zero degree (isolated vertices), merge chains that
resolve into already-merged blocks (the paper's optimisation (d)), and the
degenerate single-block model.
"""

import numpy as np
import pytest

from repro.blockmodel.blockmodel import Blockmodel, MATRIX_BACKENDS
from repro.blockmodel.deltas import delta_dl_for_merge, delta_dl_for_merges
from repro.core.config import SBPConfig
from repro.core.merges import MergeProposal, block_merge_phase, propose_merges, select_and_apply_merges
from repro.graphs.graph import Graph


@pytest.fixture
def config() -> SBPConfig:
    return SBPConfig.fast(seed=3)


@pytest.fixture
def islands_graph() -> Graph:
    """Two connected triangles plus two isolated (zero-degree) vertices."""
    edges = [
        (0, 1), (1, 2), (2, 0),
        (3, 4), (4, 5), (5, 3),
        (0, 3),
    ]
    return Graph.from_edges(8, edges)  # vertices 6 and 7 are isolated


@pytest.mark.parametrize("backend", MATRIX_BACKENDS)
class TestZeroDegreeBlocks:
    def test_propose_merges_covers_zero_degree_blocks(self, islands_graph, config, backend):
        bm = Blockmodel.from_graph(islands_graph, matrix_backend=backend)
        proposals = propose_merges(bm, range(bm.num_blocks), config, np.random.default_rng(0))
        # Every block is non-empty (one vertex each), including the
        # zero-degree ones, which reach targets via the uniform fallback.
        assert {p.block for p in proposals} == set(range(8))
        assert all(p.target != p.block for p in proposals)

    def test_merge_involving_zero_degree_block_scores_zero_likelihood(self, islands_graph, backend):
        bm = Blockmodel.from_graph(islands_graph, matrix_backend=backend)
        # Merging one isolated block into another touches no edges at all.
        assert delta_dl_for_merge(bm, 6, 7) == 0.0
        # Merging an isolated block into a connected one only rescales that
        # block's region; it must equal the full recomputation.
        delta = delta_dl_for_merge(bm, 6, 0)
        merge_target = np.arange(8)
        merge_target[6] = 0
        merged = bm.apply_block_merges(merge_target)
        actual = (-merged.log_likelihood()) - (-bm.log_likelihood())
        assert delta == pytest.approx(actual, abs=1e-9)

    def test_block_merge_phase_absorbs_islands(self, islands_graph, config, backend):
        bm = Blockmodel.from_graph(islands_graph, matrix_backend=backend)
        merged = block_merge_phase(bm, num_merges=4, config=config, rng=np.random.default_rng(1))
        assert merged.num_blocks == 4
        merged.check_consistency()
        assert merged.matrix_backend == backend


@pytest.mark.parametrize("backend", MATRIX_BACKENDS)
class TestMergeChainResolution:
    def test_chain_into_already_merged_block(self, islands_graph, backend):
        """Optimisation (d): a proposal targeting a block that has itself
        been merged must land in that block's terminal destination."""
        bm = Blockmodel.from_graph(islands_graph, matrix_backend=backend)
        proposals = [
            MergeProposal(1, 2, -10.0),  # applied first: 1 -> 2
            MergeProposal(0, 1, -9.0),   # 1 already merged: 0 must land in 2
            MergeProposal(3, 4, -8.0),
        ]
        merged = select_and_apply_merges(bm, proposals, num_merges=3)
        merged.check_consistency()
        assert merged.num_blocks == 5
        labels = merged.assignment
        # Vertices 0, 1, 2 all collapsed into one block.
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] != labels[0]

    def test_self_merge_through_chain_is_skipped_without_counting(self, islands_graph, backend):
        bm = Blockmodel.from_graph(islands_graph, matrix_backend=backend)
        proposals = [
            MergeProposal(0, 1, -10.0),
            MergeProposal(1, 0, -9.0),   # chases to 1 == 1: skipped, not counted
            MergeProposal(2, 3, -8.0),
            MergeProposal(4, 5, -7.0),
        ]
        merged = select_and_apply_merges(bm, proposals, num_merges=3)
        # Three *effective* merges were requested; the degenerate one must
        # not consume the budget, so all of 0->1, 2->3 and 4->5 happen.
        assert merged.num_blocks == 5
        labels = merged.assignment
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] == labels[5]


@pytest.mark.parametrize("backend", MATRIX_BACKENDS)
class TestSingleBlock:
    def test_propose_merges_returns_nothing(self, islands_graph, config, backend):
        bm = Blockmodel.from_graph(islands_graph, num_blocks=1, matrix_backend=backend)
        assert propose_merges(bm, range(1), config, np.random.default_rng(0)) == []

    def test_block_merge_phase_is_identity_copy(self, islands_graph, config, backend):
        bm = Blockmodel.from_graph(islands_graph, num_blocks=1, matrix_backend=backend)
        merged = block_merge_phase(bm, num_merges=1, config=config, rng=np.random.default_rng(0))
        assert merged is not bm
        assert merged.num_blocks == 1
        assert np.array_equal(merged.assignment, bm.assignment)
        assert merged.matrix_backend == backend

    def test_self_merge_delta_is_zero(self, islands_graph, backend):
        bm = Blockmodel.from_graph(islands_graph, num_blocks=1, matrix_backend=backend)
        assert delta_dl_for_merge(bm, 0, 0) == 0.0


def test_batched_kernel_zero_degree_blocks_match_scalar(islands_graph):
    bm = Blockmodel.from_graph(islands_graph, matrix_backend="csr")
    pairs = [(6, 7), (6, 0), (0, 6), (7, 7), (2, 5)]
    fr = np.asarray([p[0] for p in pairs])
    to = np.asarray([p[1] for p in pairs])
    batch = delta_dl_for_merges(bm, fr, to)
    for k, (r, s) in enumerate(pairs):
        assert batch[k] == delta_dl_for_merge(bm, r, s)
