"""Tests for the Blockmodel state and its incremental updates."""

import numpy as np
import pytest

from repro.blockmodel.blockmodel import Blockmodel, resolve_merge_chain


class TestConstruction:
    def test_from_graph_singleton_blocks(self, tiny_graph):
        bm = Blockmodel.from_graph(tiny_graph)
        assert bm.num_blocks == tiny_graph.num_vertices
        assert np.array_equal(bm.assignment, np.arange(tiny_graph.num_vertices))
        assert bm.block_sizes.tolist() == [1] * tiny_graph.num_vertices

    def test_from_graph_limited_blocks(self, tiny_graph):
        bm = Blockmodel.from_graph(tiny_graph, num_blocks=2)
        assert bm.num_blocks == 2
        assert bm.block_sizes.sum() == tiny_graph.num_vertices

    def test_from_assignment_matches_edge_counts(self, tiny_graph):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_graph.true_assignment)
        # Triangle A: 5 internal edges; triangle B: 5; one bridge A->B.
        assert bm.matrix.get(0, 0) == 5
        assert bm.matrix.get(1, 1) == 5
        assert bm.matrix.get(0, 1) == 1
        assert bm.matrix.get(1, 0) == 0

    def test_degrees_match_matrix_sums(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        assert np.array_equal(bm.block_out_degrees, bm.matrix.row_sums())
        assert np.array_equal(bm.block_in_degrees, bm.matrix.col_sums())
        assert bm.block_out_degrees.sum() == planted_graph.num_edges

    def test_relabel_compacts_labels(self, tiny_graph):
        labels = np.array([5, 5, 5, 9, 9, 9])
        bm = Blockmodel.from_assignment(tiny_graph, labels, relabel=True)
        assert bm.num_blocks == 2
        assert set(bm.assignment.tolist()) == {0, 1}

    def test_bad_assignment_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            Blockmodel.from_assignment(tiny_graph, np.array([0, 1]))
        with pytest.raises(ValueError):
            Blockmodel.from_assignment(tiny_graph, np.array([0, 0, 0, 0, 0, 7]), num_blocks=2)

    def test_copy_is_independent(self, tiny_graph):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_graph.true_assignment)
        cp = bm.copy()
        cp.move_vertex(0, 1)
        assert bm.block_of(0) == 0
        assert cp.block_of(0) == 1
        bm.check_consistency()
        cp.check_consistency()


class TestVertexMoves:
    def test_move_updates_assignment_and_sizes(self, tiny_graph):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_graph.true_assignment)
        bm.move_vertex(0, 1)
        assert bm.block_of(0) == 1
        assert bm.block_sizes.tolist() == [2, 4]

    def test_move_keeps_state_consistent(self, planted_graph, rng):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        for _ in range(25):
            v = int(rng.integers(planted_graph.num_vertices))
            bm.move_vertex(v, int(rng.integers(bm.num_blocks)))
        bm.check_consistency()

    def test_move_to_same_block_is_noop(self, tiny_graph):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_graph.true_assignment)
        before = bm.matrix.to_dense()
        bm.move_vertex(0, 0)
        assert np.array_equal(bm.matrix.to_dense(), before)

    def test_move_out_of_range_rejected(self, tiny_graph):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_graph.true_assignment)
        with pytest.raises(ValueError):
            bm.move_vertex(0, 5)

    def test_move_with_precomputed_counts(self, tiny_graph):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_graph.true_assignment)
        counts = bm.vertex_block_counts(0)
        bm.move_vertex(0, 1, counts)
        bm.check_consistency()

    def test_vertex_block_counts_totals_match_degree(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        for v in range(0, planted_graph.num_vertices, 17):
            counts = bm.vertex_block_counts(v)
            assert counts.out_total == planted_graph.out_degree(v)
            assert counts.in_total == planted_graph.in_degree(v)

    def test_self_loop_handling(self):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        bm = Blockmodel.from_assignment(g, np.array([0, 0, 1]))
        counts = bm.vertex_block_counts(0)
        assert counts.self_loop == 1
        bm.move_vertex(0, 1, counts)
        bm.check_consistency()
        assert bm.matrix.get(1, 1) == 1  # the self-loop moved with the vertex


class TestBlockMerges:
    def test_apply_block_merges_reduces_blocks(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        target = np.arange(bm.num_blocks)
        target[0] = 1
        merged = bm.apply_block_merges(target)
        assert merged.num_blocks == bm.num_blocks - 1
        merged.check_consistency()

    def test_merge_chain_resolution(self):
        target = np.array([1, 2, 2, 3])
        resolved = resolve_merge_chain(target)
        assert resolved.tolist() == [2, 2, 2, 3]

    def test_merge_cycle_collapses(self):
        target = np.array([1, 0, 2])
        resolved = resolve_merge_chain(target)
        assert resolved[0] == resolved[1]

    def test_merge_target_shape_checked(self, tiny_graph):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_graph.true_assignment)
        with pytest.raises(ValueError):
            bm.apply_block_merges(np.array([0]))

    def test_merge_preserves_total_edges(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        target = np.arange(bm.num_blocks)
        target[2] = 0
        merged = bm.apply_block_merges(target)
        assert merged.matrix.total() == bm.matrix.total()


class TestSamplingAndMetrics:
    def test_sample_neighbor_block_returns_adjacent(self, planted_graph, rng):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        for block in range(bm.num_blocks):
            nbr = bm.sample_neighbor_block(block, rng)
            assert 0 <= nbr < bm.num_blocks
            assert bm.matrix.get(block, nbr) > 0 or bm.matrix.get(nbr, block) > 0

    def test_sample_neighbor_block_isolated(self, rng):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(3, [(0, 1)])
        bm = Blockmodel.from_assignment(g, np.array([0, 1, 2]))
        assert bm.sample_neighbor_block(2, rng) == -1

    def test_nonempty_block_count(self, tiny_graph):
        bm = Blockmodel.from_assignment(tiny_graph, np.array([0, 0, 0, 2, 2, 2]), num_blocks=3)
        assert bm.num_nonempty_blocks() == 2
        assert bm.nonempty_blocks().tolist() == [0, 2]

    def test_description_length_positive(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        assert bm.description_length() > 0
        assert 0 < bm.normalized_description_length() < 2

    def test_truth_has_lower_dl_than_random(self, planted_graph, rng):
        truth_bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        random_assignment = rng.integers(0, 4, planted_graph.num_vertices)
        random_bm = Blockmodel.from_assignment(planted_graph, random_assignment, num_blocks=4)
        assert truth_bm.description_length() < random_bm.description_length()
