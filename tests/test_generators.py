"""Tests for the degree sequences and the DCSBM graph generators."""

import numpy as np
import pytest

from repro.graphs.generators.challenge import CHALLENGE_GRAPHS, challenge_graph
from repro.graphs.generators.degree import (
    DegreeSequenceSpec,
    directed_degree_sequences,
    power_law_degree_sequence,
    split_degree_sequence,
)
from repro.graphs.generators.parameter_sweep import (
    PARAMETER_SWEEP_GRAPHS,
    parameter_sweep_graph,
    sweep_graph_ids,
)
from repro.graphs.generators.realworld import REALWORLD_GRAPHS, realworld_graph
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph, sample_block_sizes
from repro.graphs.generators.scaling import SCALING_GRAPHS, scaling_graph


class TestDegreeSequences:
    def test_truncation_bounds_respected(self, rng):
        spec = DegreeSequenceSpec(exponent=3.0, min_degree=10, max_degree=100)
        seq = power_law_degree_sequence(5000, spec, rng)
        assert seq.min() >= 10 and seq.max() <= 100

    def test_min_degree_one_produces_degree_one_vertices(self, rng):
        spec = DegreeSequenceSpec(exponent=3.0, min_degree=1, max_degree=100)
        seq = power_law_degree_sequence(5000, spec, rng)
        assert (seq == 1).sum() > 0

    def test_heavier_tail_increases_mean(self, rng):
        light = power_law_degree_sequence(5000, DegreeSequenceSpec(exponent=3.0, min_degree=1, max_degree=200), rng)
        heavy = power_law_degree_sequence(5000, DegreeSequenceSpec(exponent=2.1, min_degree=1, max_degree=200), rng)
        assert heavy.mean() > light.mean()

    def test_split_preserves_totals(self, rng):
        totals = rng.integers(1, 20, size=1000)
        out_deg, in_deg = split_degree_sequence(totals, rng)
        assert np.array_equal(out_deg + in_deg, totals)
        assert (out_deg >= 0).all() and (in_deg >= 0).all()

    def test_duplicated_sequences_are_equal(self, rng):
        spec = DegreeSequenceSpec(min_degree=2, max_degree=50, duplicate=True)
        out_deg, in_deg = directed_degree_sequences(500, spec, rng)
        assert np.array_equal(out_deg, in_deg)

    def test_non_duplicated_sequences_differ(self, rng):
        spec = DegreeSequenceSpec(min_degree=2, max_degree=50, duplicate=False)
        out_deg, in_deg = directed_degree_sequences(500, spec, rng)
        assert not np.array_equal(out_deg, in_deg)

    def test_zero_vertices(self, rng):
        spec = DegreeSequenceSpec()
        assert power_law_degree_sequence(0, spec, rng).shape == (0,)

    @pytest.mark.parametrize("bad", [
        dict(min_degree=0),
        dict(max_degree=0, min_degree=1),
        dict(exponent=1.0),
        dict(min_degree=10, max_degree=5),
    ])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            DegreeSequenceSpec(**bad)


class TestBlockSizes:
    def test_sizes_sum_to_vertices(self, rng):
        sizes = sample_block_sizes(1000, 13, 2.0, rng)
        assert sizes.sum() == 1000 and sizes.shape == (13,)

    def test_minimum_size_respected(self, rng):
        sizes = sample_block_sizes(100, 20, 0.5, rng, min_size=3)
        assert sizes.min() >= 3

    def test_low_alpha_gives_more_variation(self, rng):
        varied = sample_block_sizes(10000, 20, 1.0, rng)
        even = sample_block_sizes(10000, 20, 100.0, rng)
        assert varied.std() > even.std()

    def test_too_many_blocks_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_block_sizes(10, 20, 2.0, rng)


class TestDCSBMGenerator:
    def test_reproducible_with_seed(self):
        spec = DCSBMSpec(num_vertices=100, num_communities=4)
        a = generate_dcsbm_graph(spec, seed=1)
        b = generate_dcsbm_graph(spec, seed=1)
        assert a == b
        assert np.array_equal(a.true_assignment, b.true_assignment)

    def test_different_seeds_differ(self):
        spec = DCSBMSpec(num_vertices=100, num_communities=4)
        assert generate_dcsbm_graph(spec, seed=1) != generate_dcsbm_graph(spec, seed=2)

    def test_truth_has_requested_communities(self, planted_graph):
        assert np.unique(planted_graph.true_assignment).size == 4

    def test_intra_inter_ratio_close_to_target(self):
        spec = DCSBMSpec(
            num_vertices=2000,
            num_communities=8,
            intra_inter_ratio=2.0,
            block_size_alpha=10.0,
        )
        g = generate_dcsbm_graph(spec, seed=3)
        truth = g.true_assignment
        src, dst, w = g.edge_arrays()
        intra = w[truth[src] == truth[dst]].sum()
        inter = w.sum() - intra
        assert 1.5 < intra / inter < 2.7

    def test_scaled_spec_reduces_size(self):
        spec = DCSBMSpec(num_vertices=10000, num_communities=50)
        small = spec.scaled(0.1)
        assert small.num_vertices < spec.num_vertices
        assert 2 <= small.num_communities <= spec.num_communities

    def test_scaled_spec_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DCSBMSpec(num_vertices=100, num_communities=4).scaled(0)

    @pytest.mark.parametrize("bad", [
        dict(num_vertices=0, num_communities=1),
        dict(num_vertices=10, num_communities=0),
        dict(num_vertices=4, num_communities=4, min_community_size=2),
        dict(num_vertices=100, num_communities=4, intra_inter_ratio=0),
        dict(num_vertices=100, num_communities=4, block_size_alpha=0),
    ])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            DCSBMSpec(**bad)


class TestDatasetRegistries:
    def test_table2_has_six_graphs(self):
        assert len(CHALLENGE_GRAPHS) == 6
        assert {s.difficulty for s in CHALLENGE_GRAPHS.values()} == {"easy", "hard"}

    def test_challenge_graph_generation(self):
        g = challenge_graph("20k-hard", scale=0.01, seed=0)
        assert g.name == "20k-hard"
        assert g.num_vertices > 0 and g.true_assignment is not None

    def test_challenge_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            challenge_graph("30k-easy")

    def test_table3_has_sixteen_graphs(self):
        assert len(PARAMETER_SWEEP_GRAPHS) == 16
        assert len(sweep_graph_ids()) == 16
        assert len(sweep_graph_ids(dense_only=True)) == 8
        assert len(sweep_graph_ids(sparse_only=True)) == 8

    def test_sweep_flags_match_ids(self):
        spec = PARAMETER_SWEEP_GRAPHS["TTF150"]
        assert spec.truncate_min_degree and spec.truncate_max_degree and not spec.duplicate_degree_sequence
        assert spec.num_communities == 150
        assert not spec.is_sparse_family
        assert PARAMETER_SWEEP_GRAPHS["FTT33"].is_sparse_family

    def test_sparse_family_is_sparser_than_dense(self):
        dense = parameter_sweep_graph("TTT33", scale=0.02, seed=1)
        sparse = parameter_sweep_graph("FTT33", scale=0.02, seed=1)
        assert sparse.average_degree < dense.average_degree

    def test_sweep_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            parameter_sweep_graph("XYZ42")

    def test_table4_registry_and_generation(self):
        assert set(SCALING_GRAPHS) == {"1M", "2M", "4M"}
        g = scaling_graph("1M", scale=0.0005, seed=1)
        assert g.true_assignment is not None
        assert g.num_vertices > 0

    def test_scaling_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            scaling_graph("8M")

    def test_table5_registry(self):
        assert set(REALWORLD_GRAPHS) == {"amazon", "patents", "berk-stan", "twitter", "livejournal"}

    def test_realworld_standin_has_no_truth_by_default(self):
        g = realworld_graph("amazon", scale=0.0005, seed=1)
        assert g.true_assignment is None
        g2 = realworld_graph("amazon", scale=0.0005, seed=1, keep_truth=True)
        assert g2.true_assignment is not None

    def test_twitter_standin_is_densest(self):
        degrees = {}
        for name in ("amazon", "twitter"):
            g = realworld_graph(name, scale=0.001, seed=2)
            degrees[name] = g.average_degree
        assert degrees["twitter"] > degrees["amazon"]

    def test_realworld_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            realworld_graph("facebook")
