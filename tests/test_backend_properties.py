"""Property-based cross-backend tests: array backends vs SparseBlockMatrix.

Random interleavings of the mutation and query APIs must leave every
storage backend (dense ``csr`` and true-sparse ``sparse_csr``) in states
identical to the hash-map reference: same matrix, same cached marginals,
same entropy (description length, compared **exactly** — all backends emit
identically-ordered non-zero arrays, so the vectorized likelihood reduction
is bit-identical).

``hypothesis`` is an optional dependency: the module skips cleanly when it
is not installed.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.blockmodel.backend import get_backend  # noqa: E402
from repro.blockmodel.blockmodel import Blockmodel  # noqa: E402
from repro.blockmodel.sparse_matrix import SparseBlockMatrix  # noqa: E402
from repro.graphs.graph import Graph  # noqa: E402

MATRIX_SIZE = 6

#: The vectorized backends exercised against the hash-map reference.
ARRAY_BACKENDS = ("csr", "sparse_csr")


def _assert_matrices_equal(candidate, ref: SparseBlockMatrix) -> None:
    assert np.array_equal(candidate.to_dense(), ref.to_dense())
    assert np.array_equal(candidate.row_sums(), ref.row_sums())
    assert np.array_equal(candidate.col_sums(), ref.col_sums())
    assert candidate.total() == ref.total()
    assert candidate.nnz() == ref.nnz()
    candidate.check_consistent()
    ref.check_consistent()


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_index = st.integers(min_value=0, max_value=MATRIX_SIZE - 1)

_add_many_op = st.tuples(
    st.just("add_many"),
    st.lists(st.tuples(_index, _index, st.integers(min_value=1, max_value=7)), min_size=1, max_size=8),
)
_set_op = st.tuples(st.just("set"), st.tuples(_index, _index, st.integers(min_value=0, max_value=9)))
_get_many_op = st.tuples(
    st.just("get_many"),
    st.lists(st.tuples(_index, _index), min_size=1, max_size=8),
)
_matrix_ops = st.lists(st.one_of(_add_many_op, _set_op, _get_many_op), min_size=1, max_size=30)


@st.composite
def graph_move_sequences(draw):
    """A small random graph, an initial assignment, and a move sequence."""
    num_vertices = draw(st.integers(min_value=2, max_value=10))
    num_blocks = draw(st.integers(min_value=2, max_value=num_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1),
                st.integers(0, num_vertices - 1),
            ),
            min_size=1,
            max_size=30,
        )
    )
    assignment = draw(
        st.lists(st.integers(0, num_blocks - 1), min_size=num_vertices, max_size=num_vertices)
    )
    moves = draw(
        st.lists(
            st.tuples(st.integers(0, num_vertices - 1), st.integers(0, num_blocks - 1)),
            max_size=25,
        )
    )
    return Graph.from_edges(num_vertices, edges), np.asarray(assignment), num_blocks, moves


# ----------------------------------------------------------------------
# Matrix-level interleavings
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ARRAY_BACKENDS)
@given(_matrix_ops)
@settings(max_examples=60, deadline=None)
def test_matrix_op_interleavings_keep_backends_identical(backend, ops):
    candidate = get_backend(backend)(MATRIX_SIZE)
    ref = SparseBlockMatrix(MATRIX_SIZE)
    for op, payload in ops:
        if op == "add_many":
            rows = np.asarray([i for i, _, _ in payload], dtype=np.int64)
            cols = np.asarray([j for _, j, _ in payload], dtype=np.int64)
            deltas = np.asarray([w for _, _, w in payload], dtype=np.int64)
            candidate.add_many(rows, cols, deltas)
            # The reference backend has no batched API: the same logical
            # update goes through scalar adds.
            for i, j, w in payload:
                ref.add(i, j, w)
        elif op == "set":
            i, j, value = payload
            candidate.set(i, j, value)
            ref.set(i, j, value)
        else:  # get_many
            rows = np.asarray([i for i, _ in payload], dtype=np.int64)
            cols = np.asarray([j for _, j in payload], dtype=np.int64)
            batched = candidate.get_many(rows, cols)
            scalars = [ref.get(i, j) for i, j in payload]
            assert batched.tolist() == scalars
        _assert_matrices_equal(candidate, ref)


# ----------------------------------------------------------------------
# Blockmodel-level interleavings
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ARRAY_BACKENDS)
@given(graph_move_sequences())
@settings(max_examples=40, deadline=None)
def test_move_vertex_interleavings_keep_backends_identical(backend, data):
    graph, assignment, num_blocks, moves = data
    bm_cand = Blockmodel.from_assignment(graph, assignment, num_blocks, matrix_backend=backend)
    bm_ref = Blockmodel.from_assignment(graph, assignment, num_blocks, matrix_backend="dict")
    _assert_matrices_equal(bm_cand.matrix, bm_ref.matrix)
    for vertex, target in moves:
        bm_cand.move_vertex(vertex, target)
        bm_ref.move_vertex(vertex, target)
        assert np.array_equal(bm_cand.assignment, bm_ref.assignment)
        assert np.array_equal(bm_cand.block_out_degrees, bm_ref.block_out_degrees)
        assert np.array_equal(bm_cand.block_in_degrees, bm_ref.block_in_degrees)
        assert np.array_equal(bm_cand.block_sizes, bm_ref.block_sizes)
        _assert_matrices_equal(bm_cand.matrix, bm_ref.matrix)
        # All backends emit identically-ordered non-zero arrays, so the
        # vectorized entropy reduction must agree to the last bit.
        assert bm_cand.description_length() == bm_ref.description_length()
