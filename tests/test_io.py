"""Round-trip tests for graph serialisation."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.io import (
    load_edge_list,
    load_matrix_market,
    load_truth_file,
    save_edge_list,
    save_matrix_market,
    save_truth_file,
)


def test_edge_list_round_trip(tmp_path, planted_graph):
    path = tmp_path / "graph.tsv"
    save_edge_list(planted_graph, path)
    loaded = load_edge_list(path, num_vertices=planted_graph.num_vertices)
    assert loaded == planted_graph


def test_edge_list_zero_indexed_round_trip(tmp_path, tiny_graph):
    path = tmp_path / "graph0.tsv"
    save_edge_list(tiny_graph, path, one_indexed=False)
    loaded = load_edge_list(path, num_vertices=tiny_graph.num_vertices, one_indexed=False)
    assert loaded == tiny_graph


def test_edge_list_gzip_round_trip(tmp_path, tiny_graph):
    path = tmp_path / "graph.tsv.gz"
    save_edge_list(tiny_graph, path)
    loaded = load_edge_list(path, num_vertices=tiny_graph.num_vertices)
    assert loaded == tiny_graph


def test_edge_list_infers_vertex_count(tmp_path, tiny_graph):
    path = tmp_path / "graph.tsv"
    save_edge_list(tiny_graph, path)
    loaded = load_edge_list(path)
    assert loaded.num_vertices == tiny_graph.num_vertices


def test_edge_list_skips_comments(tmp_path):
    path = tmp_path / "commented.tsv"
    path.write_text("# header\n% other comment\n1\t2\n2\t3\t4\n")
    g = load_edge_list(path)
    assert g.num_vertices == 3
    assert g.num_edges == 5  # 1 + weight 4


def test_truth_file_round_trip(tmp_path, planted_graph):
    path = tmp_path / "truth.tsv"
    save_truth_file(planted_graph.true_assignment, path)
    loaded = load_truth_file(path, planted_graph.num_vertices)
    assert np.array_equal(loaded, planted_graph.true_assignment)


def test_edge_list_with_truth(tmp_path, planted_graph):
    gpath = tmp_path / "graph.tsv"
    tpath = tmp_path / "truth.tsv"
    save_edge_list(planted_graph, gpath)
    save_truth_file(planted_graph.true_assignment, tpath)
    loaded = load_edge_list(gpath, num_vertices=planted_graph.num_vertices, truth_path=tpath)
    assert np.array_equal(loaded.true_assignment, planted_graph.true_assignment)


def test_matrix_market_round_trip(tmp_path, planted_graph):
    path = tmp_path / "graph.mtx"
    save_matrix_market(planted_graph, path)
    loaded = load_matrix_market(path)
    assert loaded == planted_graph


def test_matrix_market_symmetric_mirrors_edges(tmp_path):
    path = tmp_path / "sym.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate integer symmetric\n"
        "3 3 2\n"
        "2 1 1\n"
        "3 2 1\n"
    )
    g = load_matrix_market(path)
    assert g.num_edges == 4
    assert g.to_dense()[0, 1] == 1 and g.to_dense()[1, 0] == 1


def test_matrix_market_pattern_values(tmp_path):
    path = tmp_path / "pattern.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 1\n"
        "1 2\n"
    )
    g = load_matrix_market(path)
    assert g.num_edges == 1


def test_matrix_market_rejects_non_square(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%MatrixMarket matrix coordinate integer general\n2 3 1\n1 2 1\n")
    with pytest.raises(ValueError):
        load_matrix_market(path)


def test_matrix_market_rejects_wrong_header(tmp_path):
    path = tmp_path / "bad2.mtx"
    path.write_text("not a matrix market file\n")
    with pytest.raises(ValueError):
        load_matrix_market(path)
