"""Round-trip tests for graph serialisation."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.io import (
    load_edge_list,
    load_edges_sharded,
    load_matrix_market,
    load_truth_file,
    save_edge_list,
    save_matrix_market,
    save_truth_file,
)


def test_edge_list_round_trip(tmp_path, planted_graph):
    path = tmp_path / "graph.tsv"
    save_edge_list(planted_graph, path)
    loaded = load_edge_list(path, num_vertices=planted_graph.num_vertices)
    assert loaded == planted_graph


def test_edge_list_zero_indexed_round_trip(tmp_path, tiny_graph):
    path = tmp_path / "graph0.tsv"
    save_edge_list(tiny_graph, path, one_indexed=False)
    loaded = load_edge_list(path, num_vertices=tiny_graph.num_vertices, one_indexed=False)
    assert loaded == tiny_graph


def test_edge_list_gzip_round_trip(tmp_path, tiny_graph):
    path = tmp_path / "graph.tsv.gz"
    save_edge_list(tiny_graph, path)
    loaded = load_edge_list(path, num_vertices=tiny_graph.num_vertices)
    assert loaded == tiny_graph


def test_edge_list_infers_vertex_count(tmp_path, tiny_graph):
    path = tmp_path / "graph.tsv"
    save_edge_list(tiny_graph, path)
    loaded = load_edge_list(path)
    assert loaded.num_vertices == tiny_graph.num_vertices


def test_edge_list_skips_comments(tmp_path):
    path = tmp_path / "commented.tsv"
    path.write_text("# header\n% other comment\n1\t2\n2\t3\t4\n")
    g = load_edge_list(path)
    assert g.num_vertices == 3
    assert g.num_edges == 5  # 1 + weight 4


def _interleave_shards(shards):
    """Reassemble the full edge arrays from round-robin shards, in file order."""
    total = sum(shard[0].shape[0] for shard in shards)
    size = len(shards)
    out = []
    for column in range(3):
        merged = np.empty(total, dtype=np.int64)
        for rank, shard in enumerate(shards):
            merged[rank::size] = shard[column]
        out.append(merged)
    return tuple(out)


def test_sharded_empty_file(tmp_path):
    path = tmp_path / "empty.tsv"
    path.write_text("")
    for rank in range(2):
        src, dst, weight = load_edges_sharded(path, rank=rank, size=2)
        assert src.shape == dst.shape == weight.shape == (0,)
        assert src.dtype == dst.dtype == weight.dtype == np.int64


def test_sharded_comments_only_file_is_empty(tmp_path):
    path = tmp_path / "comments.tsv"
    path.write_text("# header\n\n% more\n   \n")
    src, dst, weight = load_edges_sharded(path, rank=0, size=1)
    assert src.shape == (0,)


def test_sharded_file_shorter_than_size(tmp_path):
    """Fewer edges than ranks: low ranks get one edge each, the rest none."""
    path = tmp_path / "short.tsv"
    path.write_text("1\t2\n2\t3\n")
    shards = [load_edges_sharded(path, rank=r, size=4) for r in range(4)]
    assert [s[0].shape[0] for s in shards] == [1, 1, 0, 0]
    assert shards[0][0][0] == 0 and shards[0][1][0] == 1  # 1-indexed input shifted
    assert shards[1][0][0] == 1 and shards[1][1][0] == 2


def test_sharded_comment_and_blank_lines_do_not_consume_slots(tmp_path):
    """Round-robin dealing counts kept edges only, not raw file lines."""
    path = tmp_path / "commented.tsv"
    path.write_text("# header\n1\t2\n\n% note\n2\t3\n   \n3\t1\n# trailing\n")
    shard0 = load_edges_sharded(path, rank=0, size=2)
    shard1 = load_edges_sharded(path, rank=1, size=2)
    # Kept edges are (1,2), (2,3), (3,1): rank 0 gets edges 0 and 2.
    assert shard0[0].tolist() == [0, 2] and shard0[1].tolist() == [1, 0]
    assert shard1[0].tolist() == [1] and shard1[1].tolist() == [2]


@pytest.mark.parametrize("size", [1, 2, 4])
def test_sharded_union_matches_unsharded_load(tmp_path, planted_graph, size):
    path = tmp_path / "graph.tsv"
    save_edge_list(planted_graph, path)
    reference = load_edge_list(path, num_vertices=planted_graph.num_vertices)
    ref_src, ref_dst, ref_weight = reference.edge_arrays()

    shards = [load_edges_sharded(path, rank=r, size=size) for r in range(size)]
    assert sum(s[0].shape[0] for s in shards) == ref_src.shape[0]
    src, dst, weight = _interleave_shards(shards)
    # Interleaving the shards in rank order reproduces the unsharded load
    # exactly — order, endpoints, and weights.
    assert np.array_equal(src, ref_src)
    assert np.array_equal(dst, ref_dst)
    assert np.array_equal(weight, ref_weight)


def test_sharded_zero_indexed_and_weights(tmp_path):
    path = tmp_path / "weighted.tsv"
    path.write_text("0\t1\t5\n1\t2\t7\n")
    src, dst, weight = load_edges_sharded(path, rank=0, size=1, one_indexed=False)
    assert src.tolist() == [0, 1] and dst.tolist() == [1, 2] and weight.tolist() == [5, 7]


def test_sharded_rejects_bad_rank_and_size(tmp_path):
    path = tmp_path / "graph.tsv"
    path.write_text("1\t2\n")
    with pytest.raises(ValueError, match="size"):
        load_edges_sharded(path, rank=0, size=0)
    with pytest.raises(ValueError, match="rank"):
        load_edges_sharded(path, rank=2, size=2)
    with pytest.raises(ValueError, match="rank"):
        load_edges_sharded(path, rank=-1, size=2)


def test_truth_file_round_trip(tmp_path, planted_graph):
    path = tmp_path / "truth.tsv"
    save_truth_file(planted_graph.true_assignment, path)
    loaded = load_truth_file(path, planted_graph.num_vertices)
    assert np.array_equal(loaded, planted_graph.true_assignment)


def test_edge_list_with_truth(tmp_path, planted_graph):
    gpath = tmp_path / "graph.tsv"
    tpath = tmp_path / "truth.tsv"
    save_edge_list(planted_graph, gpath)
    save_truth_file(planted_graph.true_assignment, tpath)
    loaded = load_edge_list(gpath, num_vertices=planted_graph.num_vertices, truth_path=tpath)
    assert np.array_equal(loaded.true_assignment, planted_graph.true_assignment)


def test_matrix_market_round_trip(tmp_path, planted_graph):
    path = tmp_path / "graph.mtx"
    save_matrix_market(planted_graph, path)
    loaded = load_matrix_market(path)
    assert loaded == planted_graph


def test_matrix_market_symmetric_mirrors_edges(tmp_path):
    path = tmp_path / "sym.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate integer symmetric\n"
        "3 3 2\n"
        "2 1 1\n"
        "3 2 1\n"
    )
    g = load_matrix_market(path)
    assert g.num_edges == 4
    assert g.to_dense()[0, 1] == 1 and g.to_dense()[1, 0] == 1


def test_matrix_market_pattern_values(tmp_path):
    path = tmp_path / "pattern.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 1\n"
        "1 2\n"
    )
    g = load_matrix_market(path)
    assert g.num_edges == 1


def test_matrix_market_rejects_non_square(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%MatrixMarket matrix coordinate integer general\n2 3 1\n1 2 1\n")
    with pytest.raises(ValueError):
        load_matrix_market(path)


def test_matrix_market_rejects_wrong_header(tmp_path):
    path = tmp_path / "bad2.mtx"
    path.write_text("not a matrix market file\n")
    with pytest.raises(ValueError):
        load_matrix_market(path)
