"""Tests for the sparse block matrix (vector-of-hashmaps + transpose)."""

import numpy as np
import pytest

from repro.blockmodel.sparse_matrix import SparseBlockMatrix


def test_empty_matrix():
    m = SparseBlockMatrix(3)
    assert m.get(0, 0) == 0
    assert m.total() == 0
    assert m.nnz() == 0


def test_add_and_get():
    m = SparseBlockMatrix(3)
    m.add(0, 1, 5)
    m.add(0, 1, 2)
    assert m.get(0, 1) == 7
    assert m.get(1, 0) == 0


def test_add_keeps_transpose_in_sync():
    m = SparseBlockMatrix(4)
    m.add(2, 3, 4)
    assert m.col(3) == {2: 4}
    m.add(2, 3, -4)
    assert m.col(3) == {}
    m.check_consistent()


def test_negative_entry_rejected():
    m = SparseBlockMatrix(2)
    m.add(0, 1, 1)
    with pytest.raises(ValueError):
        m.add(0, 1, -2)


def test_set_and_remove():
    m = SparseBlockMatrix(2)
    m.set(0, 0, 3)
    assert m.get(0, 0) == 3
    m.set(0, 0, 0)
    assert m.get(0, 0) == 0
    assert m.nnz() == 0
    with pytest.raises(ValueError):
        m.set(0, 1, -1)


def test_row_and_col_sums():
    m = SparseBlockMatrix(3)
    m.add(0, 1, 2)
    m.add(0, 2, 3)
    m.add(1, 2, 4)
    assert m.row_sum(0) == 5
    assert m.col_sum(2) == 7
    assert m.row_sums().tolist() == [5, 4, 0]
    assert m.col_sums().tolist() == [0, 2, 7]
    assert m.total() == 9


def test_entries_iteration():
    m = SparseBlockMatrix(2)
    m.add(0, 1, 1)
    m.add(1, 1, 2)
    assert sorted(m.entries()) == [(0, 1, 1), (1, 1, 2)]


def test_dense_round_trip():
    dense = np.array([[0, 3], [1, 0]])
    m = SparseBlockMatrix.from_dense(dense)
    assert np.array_equal(m.to_dense(), dense)
    assert m == SparseBlockMatrix.from_dense(dense)


def test_from_dense_rejects_non_square():
    with pytest.raises(ValueError):
        SparseBlockMatrix.from_dense(np.zeros((2, 3)))


def test_copy_is_independent():
    m = SparseBlockMatrix(2)
    m.add(0, 1, 1)
    c = m.copy()
    c.add(0, 1, 5)
    assert m.get(0, 1) == 1
    assert c.get(0, 1) == 6


def test_check_consistent_detects_corruption():
    m = SparseBlockMatrix(2)
    m.add(0, 1, 1)
    m.rows[0][1] = 9  # corrupt the row view directly
    with pytest.raises(AssertionError):
        m.check_consistent()


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        SparseBlockMatrix(-1)


class TestMixedOperationConsistency:
    """check_consistent after interleaved add / set / copy sequences."""

    def test_mixed_add_set_sequences_keep_views_consistent(self):
        m = SparseBlockMatrix(4)
        m.add(0, 1, 3)
        m.set(1, 2, 5)
        m.add(0, 1, -3)   # entry drops back to zero and must vanish
        m.set(2, 0, 4)
        m.set(2, 0, 0)    # explicit zeroing must also vanish
        m.add(3, 3, 2)
        m.set(3, 3, 7)    # overwrite an existing entry
        m.check_consistent()
        assert m.get(0, 1) == 0
        assert 1 not in m.rows[0] and 0 not in m.cols[1]
        assert m.get(2, 0) == 0
        assert 0 not in m.rows[2] and 2 not in m.cols[0]
        assert m.get(3, 3) == 7
        assert m.nnz() == 2

    def test_copy_then_mutate_keeps_both_consistent(self):
        m = SparseBlockMatrix(3)
        m.add(0, 1, 2)
        m.add(1, 2, 4)
        c = m.copy()
        c.set(1, 2, 0)
        c.add(2, 0, 9)
        m.add(0, 1, -2)
        m.check_consistent()
        c.check_consistent()
        assert m.get(1, 2) == 4 and c.get(1, 2) == 0
        assert m.get(0, 1) == 0 and c.get(0, 1) == 2
        assert c.get(2, 0) == 9 and m.get(2, 0) == 0
        assert m != c

    def test_interleaved_operations_match_dense_reference(self):
        rng = np.random.default_rng(9)
        m = SparseBlockMatrix(5)
        dense = np.zeros((5, 5), dtype=np.int64)
        for _ in range(200):
            i, j = int(rng.integers(5)), int(rng.integers(5))
            if rng.random() < 0.5:
                delta = int(rng.integers(-2, 5))
                if dense[i, j] + delta < 0:
                    continue
                m.add(i, j, delta)
                dense[i, j] += delta
            else:
                value = int(rng.integers(0, 6))
                m.set(i, j, value)
                dense[i, j] = value
        m.check_consistent()
        assert np.array_equal(m.to_dense(), dense)
