"""Tests for the shared utilities (RNG registry, timers, logging)."""

import time

import numpy as np
import pytest

from repro.utils.log import get_logger
from repro.utils.rng import RngRegistry, derive_seed, spawn_rng
from repro.utils.timing import PhaseTimer, Timer


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(42, 1, 2) == derive_seed(42, 1, 2)

    def test_derive_seed_path_sensitive(self):
        assert derive_seed(42, 1, 2) != derive_seed(42, 2, 1)

    def test_derive_seed_none_returns_int(self):
        assert isinstance(derive_seed(None, 3), int)

    def test_spawn_rng_streams_independent(self):
        a = spawn_rng(7, 0).random(100)
        b = spawn_rng(7, 1).random(100)
        assert not np.allclose(a, b)

    def test_registry_caches_generators(self):
        reg = RngRegistry(1)
        assert reg.get("mcmc", 0) is reg.get("mcmc", 0)
        assert reg.get("mcmc", 0) is not reg.get("mcmc", 1)
        assert reg.get("mcmc", 0) is not reg.get("merge", 0)

    def test_registry_reproducible_across_instances(self):
        a = RngRegistry(5).get("x", 3).random(10)
        b = RngRegistry(5).get("x", 3).random(10)
        assert np.allclose(a, b)

    def test_registry_child_universe_differs(self):
        reg = RngRegistry(5)
        child_a = reg.child("rank", 0)
        child_b = reg.child("rank", 1)
        assert child_a.root_seed != child_b.root_seed
        assert not np.allclose(child_a.get("m").random(5), child_b.get("m").random(5))

    def test_seed_for_matches_generator(self):
        reg = RngRegistry(9)
        seed = reg.seed_for("phase", 2)
        assert np.allclose(np.random.default_rng(seed).random(5), reg.get("phase", 2).random(5))


class TestTimers:
    def test_timer_accumulates(self):
        t = Timer()
        with t.measure():
            time.sleep(0.01)
        first = t.elapsed
        with t.measure():
            time.sleep(0.01)
        assert t.elapsed > first > 0

    def test_timer_double_start_rejected(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()
        with pytest.raises(RuntimeError):
            t.stop()

    def test_phase_timer_buckets(self):
        timers = PhaseTimer()
        with timers.measure("mcmc"):
            time.sleep(0.005)
        timers.add("communication", 1.5)
        assert timers.elapsed("mcmc") > 0
        assert timers.elapsed("communication") == 1.5
        assert timers.elapsed("unknown") == 0.0
        assert timers.total() == pytest.approx(timers.elapsed("mcmc") + 1.5)
        assert set(timers.as_dict()) == {"mcmc", "communication"}

    def test_phase_timer_merge(self):
        a = PhaseTimer()
        a.add("mcmc", 1.0)
        b = PhaseTimer()
        b.add("mcmc", 2.0)
        b.add("merge", 0.5)
        a.merge(b)
        assert a.elapsed("mcmc") == 3.0
        assert a.elapsed("merge") == 0.5


class TestLogging:
    def test_get_logger_returns_named_logger(self):
        logger = get_logger("repro.test", level="INFO")
        assert logger.name == "repro.test"
        logger.info("message does not raise")
