"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.blockmodel.blockmodel import Blockmodel, resolve_merge_chain
from repro.blockmodel.deltas import delta_dl_for_merge, delta_dl_for_move
from repro.blockmodel.entropy import h_function
from repro.blockmodel.sparse_matrix import SparseBlockMatrix
from repro.evaluation.nmi import normalized_mutual_information, partition_entropy
from repro.graphs.graph import Graph
from repro.utils.rng import derive_seed


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw):
    """Random small directed graphs (possibly with self-loops and multi-edges)."""
    num_vertices = draw(st.integers(min_value=2, max_value=12))
    num_edges = draw(st.integers(min_value=1, max_value=40))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_vertices - 1),
                st.integers(min_value=0, max_value=num_vertices - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return Graph.from_edges(num_vertices, edges)


@st.composite
def graphs_with_assignments(draw):
    graph = draw(small_graphs())
    num_blocks = draw(st.integers(min_value=1, max_value=graph.num_vertices))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_blocks - 1),
            min_size=graph.num_vertices,
            max_size=graph.num_vertices,
        )
    )
    return graph, np.asarray(assignment), num_blocks


# ----------------------------------------------------------------------
# Sparse matrix invariants
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 9)), max_size=40))
@settings(max_examples=60, deadline=None)
def test_sparse_matrix_matches_dense_accumulation(entries):
    matrix = SparseBlockMatrix(6)
    dense = np.zeros((6, 6), dtype=np.int64)
    for i, j, w in entries:
        matrix.add(i, j, w)
        dense[i, j] += w
    assert np.array_equal(matrix.to_dense(), dense)
    matrix.check_consistent()
    assert matrix.total() == dense.sum()
    assert np.array_equal(matrix.row_sums(), dense.sum(axis=1))
    assert np.array_equal(matrix.col_sums(), dense.sum(axis=0))


# ----------------------------------------------------------------------
# Blockmodel invariants
# ----------------------------------------------------------------------
@given(graphs_with_assignments())
@settings(max_examples=40, deadline=None)
def test_blockmodel_edge_mass_conserved(data):
    graph, assignment, num_blocks = data
    bm = Blockmodel.from_assignment(graph, assignment, num_blocks=num_blocks)
    assert bm.matrix.total() == graph.num_edges
    assert bm.block_out_degrees.sum() == graph.num_edges
    assert bm.block_in_degrees.sum() == graph.num_edges
    assert bm.block_sizes.sum() == graph.num_vertices


@given(graphs_with_assignments(), st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40, deadline=None)
def test_vertex_move_preserves_invariants_and_matches_delta(data, vertex_pick, target_pick):
    graph, assignment, num_blocks = data
    bm = Blockmodel.from_assignment(graph, assignment, num_blocks=num_blocks)
    vertex = vertex_pick % graph.num_vertices
    target = target_pick % num_blocks
    predicted = delta_dl_for_move(bm, vertex, target).delta_dl
    before = bm.description_length()
    bm.move_vertex(vertex, target)
    bm.check_consistency()
    after = bm.description_length()
    assert abs((after - before) - predicted) < 1e-7
    assert bm.matrix.total() == graph.num_edges


@given(graphs_with_assignments(), st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_merge_delta_matches_rebuild(data, a_pick, b_pick):
    graph, assignment, num_blocks = data
    bm = Blockmodel.from_assignment(graph, assignment, num_blocks=num_blocks)
    block_a = a_pick % num_blocks
    block_b = b_pick % num_blocks
    if block_a == block_b:
        return
    # Compare the likelihood part only (random assignments may leave blocks
    # empty, in which case a relabelling rebuild would change the block count
    # by more than the single merge and the model term would not line up).
    predicted = delta_dl_for_merge(bm, block_a, block_b, include_model_term=False)
    target = np.arange(num_blocks)
    target[block_a] = block_b
    rebuilt = Blockmodel.from_assignment(graph, target[assignment], num_blocks=num_blocks)
    actual = (-rebuilt.log_likelihood()) - (-bm.log_likelihood())
    assert abs(predicted - actual) < 1e-7


@given(st.lists(st.integers(min_value=0, max_value=9), min_size=10, max_size=10))
@settings(max_examples=60, deadline=None)
def test_resolve_merge_chain_is_idempotent_fixpoint(targets):
    resolved = resolve_merge_chain(np.asarray(targets))
    # Every resolved target maps to itself (it is terminal).
    assert np.array_equal(resolve_merge_chain(resolved), resolved)
    for block in range(10):
        terminal = resolved[block]
        assert resolved[terminal] == terminal


# ----------------------------------------------------------------------
# Entropy / metric properties
# ----------------------------------------------------------------------
@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_h_function_nonnegative(x):
    assert h_function(x) >= 0.0


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200))
@settings(max_examples=80, deadline=None)
def test_nmi_self_comparison_is_one_and_bounded(labels):
    arr = np.asarray(labels)
    assert abs(normalized_mutual_information(arr, arr) - 1.0) < 1e-9
    assert partition_entropy(arr) >= 0.0


@given(
    st.lists(st.integers(min_value=0, max_value=4), min_size=5, max_size=100),
    st.lists(st.integers(min_value=0, max_value=4), min_size=5, max_size=100),
)
@settings(max_examples=80, deadline=None)
def test_nmi_symmetric_and_bounded(a, b):
    n = min(len(a), len(b))
    left = np.asarray(a[:n])
    right = np.asarray(b[:n])
    forward = normalized_mutual_information(left, right)
    backward = normalized_mutual_information(right, left)
    assert abs(forward - backward) < 1e-9
    assert 0.0 <= forward <= 1.0


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=100), st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_nmi_invariant_under_relabelling(labels, shift):
    arr = np.asarray(labels)
    # A cyclic shift of the label alphabet is a bijective relabelling, so the
    # partition is unchanged and NMI against the original must be exactly 1.
    relabelled = (arr + shift) % 6 + 100
    assert abs(normalized_mutual_information(arr, relabelled) - 1.0) < 1e-9


# ----------------------------------------------------------------------
# RNG determinism
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50))
@settings(max_examples=60, deadline=None)
def test_derive_seed_deterministic_and_path_dependent(seed, a, b):
    assert derive_seed(seed, a, b) == derive_seed(seed, a, b)
    if a != b:
        assert derive_seed(seed, a, b) != derive_seed(seed, b, a) or a == b
