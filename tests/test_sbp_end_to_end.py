"""End-to-end tests for the sequential SBP driver."""

import numpy as np
import pytest

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import MCMCVariant, SBPConfig
from repro.core.results import SBPResult
from repro.core.sbp import stochastic_block_partition
from repro.graphs.graph import Graph


class TestSequentialSBP:
    def test_recovers_planted_partition(self, planted_graph, fast_config):
        result = stochastic_block_partition(planted_graph, fast_config)
        assert result.nmi() > 0.9
        assert 3 <= result.num_communities <= 6
        result.blockmodel.check_consistency()

    def test_dl_not_worse_than_truth_by_much(self, planted_graph, fast_config):
        result = stochastic_block_partition(planted_graph, fast_config)
        truth_dl = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment, relabel=True).description_length()
        assert result.description_length <= truth_dl * 1.02

    def test_result_reproducible_with_seed(self, planted_graph):
        config = SBPConfig.fast(seed=123).with_overrides(max_mcmc_iterations=6)
        a = stochastic_block_partition(planted_graph, config)
        b = stochastic_block_partition(planted_graph, config)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.description_length == pytest.approx(b.description_length)

    def test_history_and_timers_recorded(self, planted_graph, fast_config):
        result = stochastic_block_partition(planted_graph, fast_config)
        assert len(result.history) >= 1
        assert result.history[0].num_blocks > result.history[-1].num_blocks or len(result.history) == 1
        assert result.runtime_seconds > 0
        assert "mcmc" in result.phase_seconds and "block_merge" in result.phase_seconds

    def test_history_disabled(self, planted_graph, fast_config):
        result = stochastic_block_partition(planted_graph, fast_config.with_overrides(track_history=False))
        assert result.history == []

    def test_metropolis_hastings_variant(self, planted_graph):
        config = SBPConfig.fast(seed=5).with_overrides(
            mcmc_variant=MCMCVariant.METROPOLIS_HASTINGS, max_mcmc_iterations=6
        )
        result = stochastic_block_partition(planted_graph, config)
        assert result.nmi() > 0.85

    def test_summary_contains_key_fields(self, planted_graph, fast_config):
        result = stochastic_block_partition(planted_graph, fast_config)
        summary = result.summary()
        for key in ("algorithm", "num_communities", "description_length", "dl_norm", "nmi"):
            assert key in summary

    def test_validate_mode_runs(self, planted_graph):
        config = SBPConfig.fast(seed=5).with_overrides(validate=True, max_mcmc_iterations=4)
        result = stochastic_block_partition(planted_graph, config)
        assert isinstance(result, SBPResult)

    def test_fine_tuning_from_good_partition_keeps_it(self, planted_graph, fast_config):
        initial = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment, relabel=True)
        result = stochastic_block_partition(planted_graph, fast_config, initial_blockmodel=initial)
        assert result.nmi() > 0.9
        assert result.num_communities >= 3

    def test_fine_tuning_from_oversplit_partition_merges_down(self, planted_graph, fast_config):
        oversplit = planted_graph.true_assignment * 3 + np.arange(planted_graph.num_vertices) % 3
        initial = Blockmodel.from_assignment(planted_graph, oversplit, relabel=True)
        result = stochastic_block_partition(planted_graph, fast_config, initial_blockmodel=initial)
        assert result.num_communities < initial.num_blocks
        assert result.nmi() > 0.85

    def test_initial_blockmodel_must_match_graph(self, planted_graph, tiny_graph, fast_config):
        initial = Blockmodel.from_graph(tiny_graph)
        with pytest.raises(ValueError):
            stochastic_block_partition(planted_graph, fast_config, initial_blockmodel=initial)

    def test_single_vertex_graph(self, fast_config):
        g = Graph.from_edges(1, [(0, 0)])
        result = stochastic_block_partition(g, fast_config)
        assert result.num_communities == 1

    def test_two_cliques_graph(self, tiny_graph, fast_config):
        result = stochastic_block_partition(tiny_graph, fast_config)
        assert result.num_communities <= 3
        # The two triangles must not be split across more than two groups each.
        assert result.nmi() >= 0.0

    def test_nmi_requires_ground_truth(self, fast_config):
        g = Graph.from_edges(8, [(i, (i + 1) % 8) for i in range(8)])
        result = stochastic_block_partition(g, fast_config)
        with pytest.raises(ValueError):
            result.nmi()
        assert result.dl_norm() > 0

    def test_algorithm_label(self, planted_graph, fast_config):
        result = stochastic_block_partition(planted_graph, fast_config, algorithm_label="custom")
        assert result.algorithm == "custom"
