"""Tests for vertex partitioning, subgraph extraction, and island analysis."""

import numpy as np
import pytest

from repro.graphs.graph import Graph
from repro.graphs.partition_ops import (
    contiguous_assignment,
    degree_balanced_assignment,
    extract_subgraph,
    island_fraction,
    island_vertices,
    partition_all,
    round_robin_assignment,
)


class TestAssignments:
    def test_round_robin_pattern(self):
        owner = round_robin_assignment(10, 4)
        assert owner.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_round_robin_single_part(self):
        assert set(round_robin_assignment(5, 1).tolist()) == {0}

    def test_round_robin_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            round_robin_assignment(5, 0)

    def test_contiguous_assignment_is_sorted(self):
        owner = contiguous_assignment(10, 3)
        assert np.all(np.diff(owner) >= 0)
        assert owner.min() == 0 and owner.max() == 2

    def test_degree_balanced_covers_all_parts(self, planted_graph):
        owner = degree_balanced_assignment(planted_graph, 4)
        assert set(owner.tolist()) == {0, 1, 2, 3}

    def test_degree_balanced_balances_counts(self, planted_graph):
        owner = degree_balanced_assignment(planted_graph, 8)
        counts = np.bincount(owner, minlength=8)
        assert counts.max() - counts.min() <= 2

    def test_degree_balanced_balances_degree_mass(self, planted_graph):
        """The 2n-chunk scheme should even out the per-rank degree sums."""
        owner = degree_balanced_assignment(planted_graph, 4)
        sums = np.array([planted_graph.degrees[owner == r].sum() for r in range(4)], dtype=float)
        assert sums.max() / sums.min() < 1.3

    def test_degree_balanced_more_parts_than_vertices(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        owner = degree_balanced_assignment(g, 8)
        assert owner.shape == (3,)
        assert owner.max() < 8

    def test_degree_balanced_rejects_zero_parts(self, planted_graph):
        with pytest.raises(ValueError):
            degree_balanced_assignment(planted_graph, 0)


class TestSubgraphExtraction:
    def test_extract_keeps_only_internal_edges(self, tiny_graph):
        owner = np.array([0, 0, 0, 1, 1, 1])
        part0 = extract_subgraph(tiny_graph, owner, 0)
        # Triangle A has 5 internal edges; the bridge (0, 3) is dropped.
        assert part0.subgraph.num_edges == 5
        assert part0.subgraph.num_vertices == 3

    def test_extract_preserves_ground_truth(self, tiny_graph):
        owner = np.array([0, 1, 0, 1, 0, 1])
        part1 = extract_subgraph(tiny_graph, owner, 1)
        expected = tiny_graph.true_assignment[part1.local_to_global]
        assert np.array_equal(part1.subgraph.true_assignment, expected)

    def test_local_global_mappings_are_inverse(self, planted_graph):
        owner = round_robin_assignment(planted_graph.num_vertices, 4)
        part = extract_subgraph(planted_graph, owner, 2)
        roundtrip = part.global_to_local[part.local_to_global]
        assert np.array_equal(roundtrip, np.arange(part.subgraph.num_vertices))

    def test_to_global_assignment_scatter(self, tiny_graph):
        owner = np.array([0, 0, 0, 1, 1, 1])
        part = extract_subgraph(tiny_graph, owner, 1)
        local = np.array([7, 8, 9])
        scattered = part.to_global_assignment(local, tiny_graph.num_vertices)
        assert scattered.tolist() == [-1, -1, -1, 7, 8, 9]

    def test_partition_all_covers_every_vertex(self, planted_graph):
        owner = round_robin_assignment(planted_graph.num_vertices, 3)
        parts = partition_all(planted_graph, owner)
        total = sum(p.subgraph.num_vertices for p in parts.values())
        assert total == planted_graph.num_vertices

    def test_subgraph_edges_never_exceed_parent(self, planted_graph):
        owner = round_robin_assignment(planted_graph.num_vertices, 4)
        parts = partition_all(planted_graph, owner)
        assert sum(p.subgraph.num_edges for p in parts.values()) <= planted_graph.num_edges

    def test_owner_shape_mismatch_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            extract_subgraph(tiny_graph, np.array([0, 1]), 0)


class TestIslandVertices:
    def test_no_islands_with_single_part(self, planted_graph):
        owner = np.zeros(planted_graph.num_vertices, dtype=np.int64)
        assert island_fraction(planted_graph, owner) == 0.0

    def test_bridge_vertex_becomes_island(self):
        # A path 0-1-2 split so that vertex 1 is alone in its part.
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        owner = np.array([0, 1, 0])
        islands = island_vertices(g, owner, 1)
        assert islands.tolist() == [1]

    def test_island_fraction_increases_with_parts(self, sparse_graph):
        fractions = [
            island_fraction(sparse_graph, round_robin_assignment(sparse_graph.num_vertices, p))
            for p in (2, 8, 32)
        ]
        assert fractions[0] <= fractions[1] <= fractions[2]

    def test_sparse_graphs_have_more_islands_than_dense(self, planted_graph, sparse_graph):
        dense_frac = island_fraction(planted_graph, round_robin_assignment(planted_graph.num_vertices, 8))
        sparse_frac = island_fraction(sparse_graph, round_robin_assignment(sparse_graph.num_vertices, 8))
        assert sparse_frac > dense_frac

    def test_island_count_matches_subgraph_degree_zero(self, sparse_graph):
        owner = round_robin_assignment(sparse_graph.num_vertices, 4)
        part = extract_subgraph(sparse_graph, owner, 0)
        assert part.num_island_vertices == island_vertices(sparse_graph, owner, 0).shape[0]

    def test_owner_shape_mismatch_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            island_vertices(tiny_graph, np.array([0]), 0)
