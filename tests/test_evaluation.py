"""Tests for the evaluation metrics (NMI, ARI, precision/recall, islands)."""

import numpy as np
import pytest

from repro.evaluation.islands import IslandStudyPoint, bin_island_study, island_study
from repro.evaluation.metrics import (
    adjusted_rand_index,
    compare_partitions,
    pairwise_precision_recall,
)
from repro.evaluation.nmi import (
    contingency_table,
    mutual_information,
    normalized_mutual_information,
    partition_entropy,
)


class TestContingencyAndEntropy:
    def test_contingency_table_counts(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 1])
        table = contingency_table(a, b)
        assert table.tolist() == [[0, 2], [1, 1]]

    def test_contingency_handles_label_gaps(self):
        a = np.array([10, 10, 99])
        b = np.array([5, 7, 7])
        assert contingency_table(a, b).shape == (2, 2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            contingency_table(np.array([0, 1]), np.array([0]))

    def test_entropy_uniform(self):
        labels = np.array([0, 1, 2, 3])
        assert partition_entropy(labels) == pytest.approx(np.log(4))

    def test_entropy_single_label_is_zero(self):
        assert partition_entropy(np.zeros(10, dtype=int)) == 0.0

    def test_entropy_empty(self):
        assert partition_entropy(np.array([], dtype=int)) == 0.0


class TestNMI:
    def test_identical_partitions_give_one(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_relabelling_does_not_change_nmi(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([5, 5, 9, 9, 7, 7])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions_give_low_nmi(self, rng):
        a = rng.integers(0, 5, 3000)
        b = rng.integers(0, 5, 3000)
        assert normalized_mutual_information(a, b) < 0.05

    def test_symmetry(self, rng):
        a = rng.integers(0, 4, 200)
        b = rng.integers(0, 6, 200)
        assert normalized_mutual_information(a, b) == pytest.approx(normalized_mutual_information(b, a))

    def test_trivial_vs_nontrivial_is_zero(self):
        a = np.zeros(10, dtype=int)
        b = np.arange(10)
        assert normalized_mutual_information(a, b) == 0.0

    def test_both_trivial_is_one(self):
        a = np.zeros(10, dtype=int)
        assert normalized_mutual_information(a, a) == 1.0

    def test_partial_overlap_between_zero_and_one(self):
        a = np.array([0] * 50 + [1] * 50)
        b = a.copy()
        b[:10] = 1  # corrupt 10 labels
        nmi = normalized_mutual_information(a, b)
        assert 0.2 < nmi < 1.0

    @pytest.mark.parametrize("norm", ["average", "sqrt", "min", "max"])
    def test_normalizations_bounded(self, rng, norm):
        a = rng.integers(0, 4, 500)
        b = a.copy()
        b[:100] = rng.integers(0, 4, 100)
        value = normalized_mutual_information(a, b, normalization=norm)
        assert 0.0 <= value <= 1.0

    def test_unknown_normalization_rejected(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.array([0, 1]), np.array([0, 1]), normalization="bogus")

    def test_mutual_information_nonnegative(self, rng):
        a = rng.integers(0, 3, 100)
        b = rng.integers(0, 3, 100)
        assert mutual_information(a, b) >= 0.0


class TestOtherMetrics:
    def test_ari_identical(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_ari_independent_near_zero(self, rng):
        a = rng.integers(0, 5, 2000)
        b = rng.integers(0, 5, 2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_precision_recall_perfect(self):
        labels = np.array([0, 0, 1, 1])
        precision, recall = pairwise_precision_recall(labels, labels)
        assert precision == 1.0 and recall == 1.0

    def test_overmerged_prediction_has_low_precision_high_recall(self):
        truth = np.array([0, 0, 1, 1])
        predicted = np.zeros(4, dtype=int)
        precision, recall = pairwise_precision_recall(truth, predicted)
        assert recall == 1.0
        assert precision < 0.5

    def test_oversplit_prediction_has_high_precision_low_recall(self):
        truth = np.zeros(4, dtype=int)
        predicted = np.array([0, 1, 2, 3])
        precision, recall = pairwise_precision_recall(truth, predicted)
        assert precision == 1.0
        assert recall == 0.0

    def test_compare_partitions_summary(self):
        truth = np.array([0, 0, 1, 1, 2, 2])
        predicted = np.array([0, 0, 1, 1, 1, 1])
        comparison = compare_partitions(truth, predicted)
        assert comparison.num_true_communities == 3
        assert comparison.num_predicted_communities == 2
        assert 0 < comparison.nmi < 1
        assert 0 <= comparison.f1 <= 1


class TestIslandStudy:
    def test_island_study_points(self, sparse_graph):
        points = island_study([sparse_graph], [2, 4], nmi_for=lambda g, r: 1.0 / r)
        assert len(points) == 2  # one point per (graph, rank count) pair
        assert all(0.0 <= p.island_fraction <= 1.0 for p in points)
        assert points[0].num_ranks == 2

    def test_bin_island_study_aggregates(self):
        points = [
            IslandStudyPoint("g", 2, 0.01, 0.9),
            IslandStudyPoint("g", 4, 0.02, 0.8),
            IslandStudyPoint("g", 8, 0.4, 0.1),
        ]
        rows = bin_island_study(points)
        assert sum(r["count"] for r in rows) == 3
        # Low-island bin should have higher NMI than the high-island bin.
        assert rows[0]["mean_nmi"] > rows[-1]["mean_nmi"]

    def test_bin_island_study_empty(self):
        assert bin_island_study([]) == []


class TestNMIEdgeCases:
    """Degenerate partitions: trivial (single-block) vs many-block labelings."""

    def test_single_block_vs_many_blocks_all_normalizations(self):
        trivial = np.zeros(12, dtype=int)
        many = np.arange(12)
        # One trivial partition shares no information with any other
        # labeling, whichever normalisation is used.
        for norm in ("average", "sqrt", "min", "max"):
            assert normalized_mutual_information(trivial, many, normalization=norm) == 0.0
            assert normalized_mutual_information(many, trivial, normalization=norm) == 0.0

    def test_min_max_normalizations_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        for norm in ("min", "max"):
            assert normalized_mutual_information(labels, labels, normalization=norm) == pytest.approx(1.0)

    def test_min_max_diverge_on_nested_partitions(self):
        # ``fine`` refines ``coarse``: MI equals H(coarse), so the "min"
        # normalisation saturates at 1 while "max" stays strictly below.
        coarse = np.array([0, 0, 0, 1, 1, 1])
        fine = np.array([0, 1, 1, 2, 2, 3])
        nmi_min = normalized_mutual_information(coarse, fine, normalization="min")
        nmi_max = normalized_mutual_information(coarse, fine, normalization="max")
        assert nmi_min == pytest.approx(1.0)
        assert nmi_max < nmi_min

    def test_both_trivial_partitions_are_identical(self):
        trivial = np.zeros(5, dtype=int)
        for norm in ("average", "sqrt", "min", "max"):
            assert normalized_mutual_information(trivial, trivial, normalization=norm) == 1.0

    def test_unknown_normalization_rejected(self):
        labels = np.array([0, 1])
        with pytest.raises(ValueError):
            normalized_mutual_information(labels, labels, normalization="geometric")
