"""Tests for the SBP building blocks: proposals, merges, MCMC, golden ratio."""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import MCMCVariant, SBPConfig
from repro.core.golden_ratio import GoldenRatioSearch
from repro.core.hybrid_mcmc import batch_gibbs_sweep, hybrid_sweep, split_by_degree
from repro.core.mcmc import SweepResult, make_sweep_fn, mcmc_phase, metropolis_hastings_sweep
from repro.graphs.graph import Graph
from repro.core.merges import MergeProposal, block_merge_phase, propose_merges, select_and_apply_merges
from repro.core.proposals import (
    acceptance_probability,
    evaluate_vertex_move,
    hastings_correction,
    propose_block_for_vertex,
)


class TestConfig:
    def test_defaults_valid(self):
        config = SBPConfig()
        assert config.beta == 3.0
        assert config.mcmc_variant == MCMCVariant.HYBRID

    def test_fast_preset(self):
        config = SBPConfig.fast(seed=1)
        assert config.seed == 1
        assert config.max_mcmc_iterations < SBPConfig().max_mcmc_iterations

    def test_with_overrides_and_seed(self):
        config = SBPConfig().with_overrides(beta=2.0).with_seed(99)
        assert config.beta == 2.0 and config.seed == 99

    @pytest.mark.parametrize("bad", [
        dict(block_reduction_rate=0.0),
        dict(block_reduction_rate=1.0),
        dict(merge_proposals_per_block=0),
        dict(max_mcmc_iterations=0),
        dict(mcmc_convergence_threshold=-1),
        dict(min_blocks=0),
        dict(mcmc_variant="bogus"),
        dict(hybrid_high_degree_fraction=1.5),
        dict(hybrid_batch_size=0),
        dict(dcsbp_combine_threshold=0),
        dict(beta=0),
    ])
    def test_invalid_configs_rejected(self, bad):
        with pytest.raises(ValueError):
            SBPConfig(**bad)


class TestProposals:
    def test_proposed_block_in_range(self, planted_graph, rng):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        for v in range(0, planted_graph.num_vertices, 9):
            proposal = propose_block_for_vertex(bm, v, rng)
            assert 0 <= proposal < bm.num_blocks

    def test_isolated_vertex_gets_uniform_proposal(self, rng):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(4, [(0, 1)])
        bm = Blockmodel.from_assignment(g, np.array([0, 0, 1, 1]))
        proposals = {propose_block_for_vertex(bm, 3, rng) for _ in range(30)}
        assert proposals.issubset({0, 1})

    def test_single_block_model_proposes_block_zero(self, planted_graph, rng):
        bm = Blockmodel.from_assignment(planted_graph, np.zeros(planted_graph.num_vertices, dtype=int))
        assert propose_block_for_vertex(bm, 0, rng) == 0

    def test_hastings_correction_positive(self, planted_graph, rng):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        for _ in range(20):
            v = int(rng.integers(planted_graph.num_vertices))
            target = int(rng.integers(bm.num_blocks))
            counts = bm.vertex_block_counts(v)
            assert hastings_correction(bm, counts, bm.block_of(v), target) > 0

    def test_hastings_correction_same_block_is_one(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        counts = bm.vertex_block_counts(0)
        assert hastings_correction(bm, counts, 0, 0) == 1.0

    def test_evaluate_move_carries_counts(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        evaluation = evaluate_vertex_move(bm, 3, (bm.block_of(3) + 1) % bm.num_blocks)
        assert evaluation.move.counts is not None
        assert evaluation.hastings > 0

    def test_acceptance_probability_bounds(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        evaluation = evaluate_vertex_move(bm, 0, (bm.block_of(0) + 1) % bm.num_blocks)
        p = acceptance_probability(evaluation, beta=3.0)
        assert 0.0 <= p <= 1.0

    def test_acceptance_probability_improving_move_is_one(self, planted_graph):
        # Corrupt one vertex, then moving it back to its true block must be accepted.
        assignment = planted_graph.true_assignment.copy()
        v = 5
        true_block = assignment[v]
        assignment[v] = (true_block + 1) % 4
        bm = Blockmodel.from_assignment(planted_graph, assignment, num_blocks=4)
        evaluation = evaluate_vertex_move(bm, v, int(true_block))
        assert evaluation.delta_dl < 0
        assert acceptance_probability(evaluation, beta=3.0) == pytest.approx(1.0)


class TestBlockMergePhase:
    def test_propose_merges_one_per_nonempty_block(self, planted_graph, rng, fast_config):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        proposals = propose_merges(bm, range(bm.num_blocks), fast_config, rng)
        assert len(proposals) == bm.num_blocks
        assert all(p.target != p.block for p in proposals)

    def test_propose_merges_skips_empty_blocks(self, planted_graph, rng, fast_config):
        assignment = planted_graph.true_assignment.copy()
        bm = Blockmodel.from_assignment(planted_graph, assignment, num_blocks=6)  # blocks 4, 5 empty
        proposals = propose_merges(bm, range(6), fast_config, rng)
        assert {p.block for p in proposals} == {0, 1, 2, 3}

    def test_propose_merges_subset_only(self, planted_graph, rng, fast_config):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        proposals = propose_merges(bm, [1, 3], fast_config, rng)
        assert {p.block for p in proposals} == {1, 3}

    def test_select_and_apply_respects_merge_count(self, planted_graph, rng, fast_config):
        bm = Blockmodel.from_graph(planted_graph, num_blocks=20)
        proposals = propose_merges(bm, range(20), fast_config, rng)
        merged = select_and_apply_merges(bm, proposals, num_merges=10)
        assert merged.num_blocks == 10
        merged.check_consistency()

    def test_select_and_apply_zero_merges_is_copy(self, planted_graph, rng, fast_config):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        merged = select_and_apply_merges(bm, [], num_merges=0)
        assert merged.num_blocks == bm.num_blocks
        assert merged is not bm

    def test_pointer_chasing_handles_chained_targets(self, planted_graph):
        bm = Blockmodel.from_graph(planted_graph, num_blocks=6)
        proposals = [
            MergeProposal(0, 1, -10.0),
            MergeProposal(1, 2, -9.0),
            MergeProposal(2, 0, -8.0),  # would form a cycle; must be skipped
            MergeProposal(3, 4, -7.0),
        ]
        merged = select_and_apply_merges(bm, proposals, num_merges=3)
        merged.check_consistency()
        assert merged.num_blocks == 3

    def test_block_merge_phase_halves_blocks(self, planted_graph, rng, fast_config):
        bm = Blockmodel.from_graph(planted_graph, num_blocks=16)
        merged = block_merge_phase(bm, num_merges=8, config=fast_config, rng=rng)
        assert merged.num_blocks == 8

    def test_merging_artificial_split_restores_truth_blocks(self, planted_graph, rng, fast_config):
        # Split each true block in two; one merge phase should mostly undo it.
        doubled = planted_graph.true_assignment * 2 + (np.arange(planted_graph.num_vertices) % 2)
        bm = Blockmodel.from_assignment(planted_graph, doubled, relabel=True)
        merged = block_merge_phase(bm, num_merges=4, config=fast_config, rng=rng)
        from repro.evaluation import normalized_mutual_information

        assert merged.num_blocks == bm.num_blocks - 4
        assert normalized_mutual_information(planted_graph.true_assignment, merged.assignment) > 0.8


class TestMCMC:
    def test_mh_sweep_reduces_dl_from_corrupted_start(self, planted_graph, rng, fast_config):
        assignment = planted_graph.true_assignment.copy()
        corrupt = rng.choice(planted_graph.num_vertices, size=30, replace=False)
        assignment[corrupt] = rng.integers(0, 4, size=30)
        bm = Blockmodel.from_assignment(planted_graph, assignment, num_blocks=4)
        before = bm.description_length()
        result = metropolis_hastings_sweep(bm, np.arange(planted_graph.num_vertices), fast_config, rng)
        assert bm.description_length() < before
        assert result.accepted_moves > 0
        assert len(result.moves) == result.accepted_moves
        bm.check_consistency()

    def test_sweep_delta_tracks_actual_dl_change_for_mh(self, planted_graph, rng, fast_config):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        before = bm.description_length()
        result = metropolis_hastings_sweep(bm, np.arange(planted_graph.num_vertices), fast_config, rng)
        after = bm.description_length()
        assert result.delta_dl == pytest.approx(after - before, abs=1e-6)

    def test_hybrid_sweep_keeps_state_consistent(self, hard_graph, rng, fast_config):
        bm = Blockmodel.from_graph(hard_graph, num_blocks=12)
        hybrid_sweep(bm, np.arange(hard_graph.num_vertices), fast_config, rng)
        bm.check_consistency()

    def test_batch_gibbs_sweep_keeps_state_consistent(self, hard_graph, rng, fast_config):
        bm = Blockmodel.from_graph(hard_graph, num_blocks=12)
        batch_gibbs_sweep(bm, np.arange(hard_graph.num_vertices), fast_config, rng)
        bm.check_consistency()

    def test_split_by_degree(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        vertices = np.arange(planted_graph.num_vertices)
        high, low = split_by_degree(bm, vertices, 0.25)
        assert high.size + low.size == vertices.size
        assert planted_graph.degrees[high].min() >= planted_graph.degrees[low].max() - 1

    def test_split_by_degree_extremes(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        vertices = np.arange(20)
        high, low = split_by_degree(bm, vertices, 0.0)
        assert high.size == 0 and low.size == 20
        high, low = split_by_degree(bm, vertices, 1.0)
        assert high.size == 20 and low.size == 0

    @pytest.mark.parametrize("variant", MCMCVariant.ALL)
    def test_mcmc_phase_converges_for_all_variants(self, planted_graph, rng, variant):
        config = SBPConfig.fast(seed=3).with_overrides(mcmc_variant=variant, max_mcmc_iterations=10)
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        start_dl = bm.description_length()
        result = mcmc_phase(bm, config, rng)
        assert result.sweeps <= 10
        assert result.description_length <= start_dl + 1e-6
        bm.check_consistency()

    def test_make_sweep_fn_dispatch(self):
        assert make_sweep_fn(SBPConfig(mcmc_variant=MCMCVariant.METROPOLIS_HASTINGS)) is metropolis_hastings_sweep
        assert make_sweep_fn(SBPConfig(mcmc_variant=MCMCVariant.HYBRID)) is hybrid_sweep
        assert make_sweep_fn(SBPConfig(mcmc_variant=MCMCVariant.BATCH_GIBBS)) is batch_gibbs_sweep

    def test_mcmc_phase_restricted_vertices_only_moves_those(self, planted_graph, rng, fast_config):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        frozen = np.arange(80, planted_graph.num_vertices)
        before = bm.assignment[frozen].copy()
        mcmc_phase(bm, fast_config, rng, vertices=np.arange(80))
        assert np.array_equal(bm.assignment[frozen], before)


class TestGoldenRatioSearch:
    def _entry(self, planted_graph, num_blocks, dl):
        bm = Blockmodel.from_graph(planted_graph, num_blocks=num_blocks)
        return bm, dl

    def test_exploration_keeps_halving(self, planted_graph):
        search = GoldenRatioSearch(reduction_rate=0.5)
        bm, dl = self._entry(planted_graph, 64, 1000.0)
        decision = search.update(bm, dl)
        assert not decision.done
        assert decision.target_blocks == 32
        assert decision.num_blocks_to_merge == 32

    def test_bracket_established_when_dl_increases(self, planted_graph):
        search = GoldenRatioSearch()
        search.update(*self._entry(planted_graph, 64, 1000.0))
        decision = search.update(*self._entry(planted_graph, 32, 1200.0))
        assert search.bracket_established
        assert not decision.done
        assert 32 < decision.target_blocks < 64

    def test_converges_to_best_entry(self, planted_graph):
        search = GoldenRatioSearch()
        search.update(*self._entry(planted_graph, 16, 500.0))
        search.update(*self._entry(planted_graph, 8, 400.0))
        search.update(*self._entry(planted_graph, 4, 450.0))
        # Bracket is (16, 8, 4); keep feeding until done.
        decision = search.update(*self._entry(planted_graph, 6, 420.0))
        for _ in range(10):
            if decision.done:
                break
            decision = search.update(*self._entry(planted_graph, decision.target_blocks, 430.0))
        assert decision.done
        assert search.best().description_length == 400.0

    def test_best_requires_an_update(self, planted_graph):
        search = GoldenRatioSearch()
        with pytest.raises(RuntimeError):
            search.best()

    def test_min_blocks_floor(self, planted_graph):
        search = GoldenRatioSearch(reduction_rate=0.5, min_blocks=4)
        decision = search.update(*self._entry(planted_graph, 8, 100.0))
        assert decision.target_blocks >= 4

    def test_invalid_reduction_rate(self):
        with pytest.raises(ValueError):
            GoldenRatioSearch(reduction_rate=1.0)

    def test_done_when_target_not_below_current(self, planted_graph):
        search = GoldenRatioSearch(reduction_rate=0.5, min_blocks=1)
        decision = search.update(*self._entry(planted_graph, 1, 50.0))
        assert decision.done


class TestProposalRegressions:
    def test_zero_weight_neighbors_fall_back_to_uniform(self):
        # Regression: a vertex whose neighbour weights sum to zero used to
        # reach ``rng.integers(0)``, which raises.  The weights are zeroed
        # behind the graph's back to simulate the degenerate state.
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        g._both.data[:] = 0
        bm = Blockmodel.from_graph(g)
        rng = np.random.default_rng(0)
        seen = {propose_block_for_vertex(bm, 1, rng) for _ in range(64)}
        assert seen <= set(range(bm.num_blocks))
        assert len(seen) > 1  # uniform fallback actually explores blocks

    def test_tiny_hastings_rejects_despite_huge_exponent(self):
        # Regression: ``exponent > 50`` used to short-circuit to "accept"
        # even when the Hastings factor was effectively zero.  In log space
        # the two factors are combined before any cutoff is applied.
        evaluation = SimpleNamespace(delta_dl=-100.0, hastings=1e-300)
        p = acceptance_probability(evaluation, beta=3.0)
        assert p < 1e-100  # -beta·ΔDL = 300, log(hastings) ≈ -690.8
        assert p == pytest.approx(math.exp(300.0 + math.log(1e-300)))

    def test_zero_hastings_rejects_outright(self):
        evaluation = SimpleNamespace(delta_dl=-100.0, hastings=0.0)
        assert acceptance_probability(evaluation, beta=3.0) == 0.0

    def test_extreme_exponent_saturates_without_overflow(self):
        evaluation = SimpleNamespace(delta_dl=-1e6, hastings=2.0)
        assert acceptance_probability(evaluation, beta=3.0) == 1.0
        evaluation = SimpleNamespace(delta_dl=1e6, hastings=0.5)
        assert acceptance_probability(evaluation, beta=3.0) == 0.0


class TestMCMCConvergenceCheck:
    def test_convergence_compares_against_exact_dl(self, planted_graph):
        # A sweep that mutates nothing but reports a large stale ΔDL.  With
        # the old drift-accumulated right-hand side (current_dl += ΔDL) the
        # threshold would inflate every sweep and the phase would stop after
        # two sweeps; against the exact (unchanging) DL it must run out the
        # iteration budget.
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        stale_delta = 3.0 * abs(bm.description_length())
        config = SBPConfig(seed=0, max_mcmc_iterations=6, mcmc_convergence_threshold=0.5)

        def stale_sweep(model, vertices, cfg, rng):
            return SweepResult(accepted_moves=0, proposed_moves=0, delta_dl=stale_delta)

        phase = mcmc_phase(bm, config, np.random.default_rng(0), sweep_fn=stale_sweep)
        assert phase.sweeps == config.max_mcmc_iterations
        assert phase.description_length == pytest.approx(bm.description_length())

    def test_reported_dl_is_exact(self, planted_graph, fast_config):
        bm = Blockmodel.from_graph(planted_graph, num_blocks=12)
        phase = mcmc_phase(bm, fast_config, np.random.default_rng(1))
        assert phase.description_length == pytest.approx(bm.description_length())
