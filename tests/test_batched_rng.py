"""Bit-exactness tests for :class:`repro.utils.rng.BatchedDrawRNG`.

The batched merge-proposal walks replace per-call ``Generator`` draws with
bulk ``random_raw`` prefetches plus a re-implementation of NumPy's
word-to-value maps (53-bit doubles, buffered 32-bit Lemire, 64-bit Lemire).
These tests pin that emulation against the real generator across mixed call
sequences, and verify the state hand-back (``sync``) leaves the wrapped
generator exactly where sequential consumption would have.
"""

import numpy as np
import pytest

from repro.utils.rng import BatchedDrawRNG


def _mixed_sequence(rng, steps, seed):
    """Draw a deterministic mixed random/integers sequence, return values."""
    plan = np.random.default_rng(seed)  # independent: only plans the calls
    out = []
    for _ in range(steps):
        kind = int(plan.integers(5))
        if kind == 0:
            out.append(rng.random())
        elif kind == 1:
            out.append(int(rng.integers(0, int(plan.integers(1, 50)))))
        elif kind == 2:
            out.append(int(rng.integers(1, int(plan.integers(2, 100)))))
        elif kind == 3:
            out.append(int(rng.integers(0, int(plan.integers(2**20, 2**33)))))
        else:
            out.append(int(rng.integers(0, int(plan.integers(2**40, 2**62)))))
    return out


class TestEmulationExactness:
    @pytest.mark.parametrize("seed", [0, 1, 7, 1234, 987654321])
    def test_mixed_sequence_matches_generator(self, seed):
        control = np.random.default_rng(seed)
        wrapped = BatchedDrawRNG.wrap(np.random.default_rng(seed), prefetch=64)
        assert isinstance(wrapped, BatchedDrawRNG)
        expected = _mixed_sequence(control, 400, seed=99)
        actual = _mixed_sequence(wrapped, 400, seed=99)
        assert actual == expected

    def test_single_argument_integers_form(self):
        control = np.random.default_rng(5)
        wrapped = BatchedDrawRNG.wrap(np.random.default_rng(5))
        for _ in range(50):
            assert wrapped.integers(17) == int(control.integers(17))

    def test_degenerate_range_consumes_no_words(self):
        wrapped = BatchedDrawRNG.wrap(np.random.default_rng(0))
        assert wrapped.integers(3, 4) == 3  # single-value range
        assert wrapped._consumed == 0

    @pytest.mark.parametrize("bound", [2**32 - 1, 2**32, 2**32 + 1])
    def test_32_bit_range_boundaries_match_generator(self, bound):
        """NumPy switches algorithms around a span of exactly 2^32; the
        emulation must track each branch, including the raw-word case."""
        control = np.random.default_rng(13)
        wrapped = BatchedDrawRNG.wrap(np.random.default_rng(13))
        for _ in range(40):
            assert wrapped.integers(0, bound) == int(control.integers(0, bound))
        # The stream position must agree afterwards too.
        wrapped.sync()

    def test_starts_mid_stream_with_buffered_half_word(self):
        """Wrapping a generator whose uint32 buffer is non-empty must pick
        the buffered half-word up, exactly like the generator itself."""
        control = np.random.default_rng(11)
        subject = np.random.default_rng(11)
        # One small-bound draw leaves a buffered half-word behind.
        assert int(control.integers(0, 7)) == int(subject.integers(0, 7))
        assert subject.bit_generator.state["has_uint32"] == 1
        wrapped = BatchedDrawRNG.wrap(subject)
        expected = _mixed_sequence(control, 100, seed=3)
        actual = _mixed_sequence(wrapped, 100, seed=3)
        assert actual == expected


class TestStateHandBack:
    @pytest.mark.parametrize("steps", [0, 1, 37, 250])
    def test_sync_positions_generator_exactly(self, steps):
        control = np.random.default_rng(7)
        subject = np.random.default_rng(7)
        _mixed_sequence(control, steps, seed=42)
        wrapped = BatchedDrawRNG.wrap(subject, prefetch=32)
        _mixed_sequence(wrapped, steps, seed=42)
        wrapped.sync()
        # Post-sync, the *generator itself* must continue the stream.
        follow_control = _mixed_sequence(control, 60, seed=8)
        follow_subject = _mixed_sequence(subject, 60, seed=8)
        assert follow_subject == follow_control

    def test_sync_is_idempotent(self):
        subject = np.random.default_rng(1)
        wrapped = BatchedDrawRNG.wrap(subject)
        wrapped.random()
        wrapped.sync()
        state = subject.bit_generator.state
        wrapped.sync()
        assert subject.bit_generator.state == state

    def test_context_manager_syncs(self):
        control = np.random.default_rng(3)
        subject = np.random.default_rng(3)
        control.random()
        with BatchedDrawRNG.wrap(subject) as wrapped:
            wrapped.random()
        assert subject.random() == control.random()

    def test_repeated_wrap_sessions_interleave_with_direct_draws(self):
        control = np.random.default_rng(21)
        subject = np.random.default_rng(21)
        for session in range(4):
            expected = _mixed_sequence(control, 30, seed=session)
            with BatchedDrawRNG.wrap(subject) as wrapped:
                actual = _mixed_sequence(wrapped, 30, seed=session)
            assert actual == expected
            # Direct generator draws between wrap sessions.
            assert subject.random() == control.random()
            assert int(subject.integers(0, 9)) == int(control.integers(0, 9))


class TestFallback:
    def test_wrap_returns_generator_without_advance(self):
        generator = np.random.Generator(np.random.MT19937(0))
        assert BatchedDrawRNG.wrap(generator) is generator

    def test_wrap_passes_through_non_generators(self):
        wrapped = BatchedDrawRNG.wrap(np.random.default_rng(0))
        assert BatchedDrawRNG.wrap(wrapped) is wrapped
