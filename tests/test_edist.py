"""Tests for EDiSt, the paper's exact distributed SBP algorithm."""

import numpy as np
import pytest

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import SBPConfig
from repro.core.edist import distributed_block_merge, distributed_mcmc_phase, edist, owned_blocks
from repro.core.sbp import stochastic_block_partition
from repro.graphs.partition_ops import degree_balanced_assignment
from repro.mpi.launcher import run_distributed


class TestOwnership:
    def test_owned_blocks_partition_all_blocks(self):
        all_owned = [owned_blocks(20, r, 4) for r in range(4)]
        combined = sorted(int(b) for owned in all_owned for b in owned)
        assert combined == list(range(20))

    def test_owned_blocks_disjoint(self):
        a = set(owned_blocks(17, 1, 4).tolist())
        b = set(owned_blocks(17, 2, 4).tolist())
        assert a.isdisjoint(b)

    def test_more_ranks_than_blocks(self):
        assert owned_blocks(3, 5, 8).size == 0


class TestDistributedPhases:
    def test_distributed_block_merge_replicas_stay_identical(self, planted_graph, fast_config):
        def program(comm):
            rng = np.random.default_rng(100 + comm.rank)
            bm = Blockmodel.from_graph(planted_graph, num_blocks=32)
            merged = distributed_block_merge(comm, bm, 16, fast_config, rng)
            return merged.assignment

        result = run_distributed(4, program)
        for assignment in result.results[1:]:
            assert np.array_equal(assignment, result.results[0])

    def test_distributed_block_merge_reduces_blocks(self, planted_graph, fast_config):
        def program(comm):
            rng = np.random.default_rng(100 + comm.rank)
            bm = Blockmodel.from_graph(planted_graph, num_blocks=32)
            return distributed_block_merge(comm, bm, 16, fast_config, rng).num_blocks

        result = run_distributed(4, program)
        assert result.results == [16, 16, 16, 16]

    def test_distributed_mcmc_replicas_stay_identical(self, planted_graph, fast_config):
        owner = degree_balanced_assignment(planted_graph, 3)

        def program(comm):
            rng = np.random.default_rng(7 + comm.rank)
            bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
            bm, dl, sweeps, accepted = distributed_mcmc_phase(comm, bm, fast_config, rng, owner)
            bm.check_consistency()
            return bm.assignment, dl

        result = run_distributed(3, program)
        reference_assignment, reference_dl = result.results[0]
        for assignment, dl in result.results[1:]:
            assert np.array_equal(assignment, reference_assignment)
            assert dl == pytest.approx(reference_dl)

    def test_distributed_mcmc_improves_corrupted_partition(self, planted_graph, fast_config, rng):
        owner = degree_balanced_assignment(planted_graph, 2)
        corrupted = planted_graph.true_assignment.copy()
        idx = rng.choice(planted_graph.num_vertices, size=40, replace=False)
        corrupted[idx] = rng.integers(0, 4, size=40)
        start_dl = Blockmodel.from_assignment(planted_graph, corrupted, num_blocks=4).description_length()

        def program(comm):
            local_rng = np.random.default_rng(11 + comm.rank)
            bm = Blockmodel.from_assignment(planted_graph, corrupted, num_blocks=4)
            _, dl, _, accepted = distributed_mcmc_phase(comm, bm, fast_config, local_rng, owner)
            return dl, accepted

        result = run_distributed(2, program)
        dl, accepted = result.results[0]
        assert dl < start_dl
        assert accepted > 0


class TestEDiStEndToEnd:
    def test_single_rank_matches_sequential_quality(self, planted_graph, fast_config):
        sequential = stochastic_block_partition(planted_graph, fast_config)
        distributed = edist(planted_graph, 1, fast_config)
        assert distributed.nmi() >= sequential.nmi() - 0.1

    @pytest.mark.parametrize("num_ranks", [2, 4, 8])
    def test_accuracy_maintained_across_rank_counts(self, planted_graph, fast_config, num_ranks):
        result = edist(planted_graph, num_ranks, fast_config)
        assert result.nmi() > 0.85
        assert result.algorithm == "edist"
        assert result.num_ranks == num_ranks

    def test_more_ranks_than_informative_vertices_still_works(self, tiny_graph, fast_config):
        result = edist(tiny_graph, 4, fast_config)
        assert result.assignment.shape == (tiny_graph.num_vertices,)

    def test_history_and_comm_stats_recorded(self, planted_graph, fast_config):
        result = edist(planted_graph, 2, fast_config)
        assert len(result.history) >= 1
        assert result.comm_stats is not None
        assert result.comm_stats.calls.get("allgather", 0) > 0
        assert len(result.metadata["per_rank_phase_seconds"]) == 2

    def test_validate_mode_checks_replica_consistency(self, planted_graph):
        config = SBPConfig.fast(seed=3).with_overrides(validate=True, max_mcmc_iterations=4)
        result = edist(planted_graph, 2, config)
        assert result.nmi() > 0.7

    def test_edist_handles_sparse_graph_without_islands(self, sparse_graph, fast_config):
        # EDiSt duplicates the data, so there are no island vertices by construction:
        # it should behave like the sequential algorithm regardless of rank count.
        sequential = stochastic_block_partition(sparse_graph, fast_config)
        distributed = edist(sparse_graph, 8, fast_config)
        assert abs(distributed.dl_norm() - sequential.dl_norm()) < 0.1
