"""Unit tests for the directed graph container."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.num_distinct_edges() == 2

    def test_parallel_edges_aggregate_into_weights(self):
        g = Graph.from_edges(2, [(0, 1), (0, 1), (0, 1)])
        assert g.num_edges == 3
        assert g.num_distinct_edges() == 1
        assert g.out_weights(0).tolist() == [3]

    def test_explicit_weights(self):
        g = Graph.from_edges(2, [(0, 1)], weights=[5])
        assert g.num_edges == 5
        assert g.out_degree(0) == 5
        assert g.in_degree(1) == 5

    def test_from_adjacency_round_trip(self):
        mat = np.array([[0, 2, 0], [1, 0, 0], [0, 3, 1]])
        g = Graph.from_adjacency(mat)
        assert np.array_equal(g.to_dense(), mat)

    def test_empty_graph(self):
        g = Graph.empty(4)
        assert g.num_edges == 0
        assert g.isolated_vertices().tolist() == [0, 1, 2, 3]
        assert g.average_degree == 0.0

    def test_zero_vertex_graph(self):
        g = Graph.empty(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_vertex_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 5)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 1)], weights=[-1])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 1)], weights=[1, 2])

    def test_bad_truth_length_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(0, 1)], true_assignment=np.array([0, 1]))

    def test_non_square_adjacency_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_adjacency(np.zeros((2, 3)))


class TestNeighborhoods:
    def test_out_and_in_neighbors(self, tiny_graph):
        assert set(tiny_graph.out_neighbors(0).tolist()) == {1, 3}
        assert set(tiny_graph.in_neighbors(0).tolist()) == {1, 2}

    def test_combined_neighbors_cover_both_directions(self, tiny_graph):
        combined = set(tiny_graph.neighbors(0).tolist())
        assert combined == {1, 2, 3}

    def test_degrees_are_consistent_with_edges(self, tiny_graph):
        assert tiny_graph.out_degrees.sum() == tiny_graph.num_edges
        assert tiny_graph.in_degrees.sum() == tiny_graph.num_edges
        assert np.array_equal(tiny_graph.degrees, tiny_graph.out_degrees + tiny_graph.in_degrees)

    def test_degree_accessors_match_arrays(self, tiny_graph):
        for v in range(tiny_graph.num_vertices):
            assert tiny_graph.out_degree(v) == tiny_graph.out_degrees[v]
            assert tiny_graph.in_degree(v) == tiny_graph.in_degrees[v]
            assert tiny_graph.degree(v) == tiny_graph.degrees[v]

    def test_self_loop_counts_in_both_degrees(self):
        g = Graph.from_edges(2, [(0, 0), (0, 1)])
        assert g.out_degree(0) == 2
        assert g.in_degree(0) == 1


class TestEdgeViews:
    def test_edges_iterator_matches_arrays(self, planted_graph):
        from_iter = sorted(planted_graph.edges())
        src, dst, w = planted_graph.edge_arrays()
        from_arrays = sorted(zip(src.tolist(), dst.tolist(), w.tolist()))
        assert from_iter == from_arrays

    def test_edge_weight_total_matches_num_edges(self, planted_graph):
        _, _, w = planted_graph.edge_arrays()
        assert int(w.sum()) == planted_graph.num_edges

    def test_density_in_unit_interval(self, planted_graph):
        assert 0.0 < planted_graph.density < 1.0

    def test_to_networkx(self, tiny_graph):
        nxg = tiny_graph.to_networkx()
        assert nxg.number_of_nodes() == tiny_graph.num_vertices
        assert nxg.number_of_edges() == tiny_graph.num_distinct_edges()

    def test_equality_and_hash(self, tiny_graph):
        same = Graph.from_edges(
            tiny_graph.num_vertices,
            np.column_stack(tiny_graph.edge_arrays()[:2]),
            weights=tiny_graph.edge_arrays()[2],
        )
        assert same == tiny_graph
        assert tiny_graph != Graph.empty(tiny_graph.num_vertices)
        assert isinstance(hash(tiny_graph), int)
