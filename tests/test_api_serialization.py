"""Serialization round-trips: configs (presets/overrides) and full results."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import partition
from repro.core.config import (
    SBPConfig,
    available_presets,
    config_preset,
    register_config_preset,
)
from repro.core.results import IterationRecord, SBPResult
from repro.graphs.io import graph_from_dict, graph_to_dict
from repro.mpi.stats import CommStats


class TestConfigRoundTrip:
    @pytest.mark.parametrize("preset", ["paper", "fast"])
    def test_presets_round_trip(self, preset):
        config = config_preset(preset)
        assert SBPConfig.from_dict(config.to_dict()) == config

    def test_overridden_config_round_trips(self):
        config = SBPConfig.fast(seed=77).with_overrides(
            matrix_backend="csr",
            mcmc_variant="batch_gibbs",
            beta=2.5,
            dcsbp_merge_candidates=6,
            track_history=False,
        )
        assert SBPConfig.from_dict(config.to_dict()) == config

    def test_round_trip_survives_json(self):
        config = SBPConfig.fast(seed=3)
        rebuilt = SBPConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config

    def test_from_dict_rejects_unknown_keys(self):
        data = SBPConfig().to_dict()
        data["betaa"] = 1.0
        with pytest.raises(ValueError, match="betaa"):
            SBPConfig.from_dict(data)

    def test_from_dict_validates_values(self):
        data = SBPConfig().to_dict()
        data["mcmc_variant"] = "nope"
        with pytest.raises(ValueError, match="metropolis_hastings"):
            SBPConfig.from_dict(data)

    def test_custom_preset_registration(self):
        register_config_preset("test-heavy", lambda: SBPConfig(max_mcmc_iterations=50))
        try:
            assert "test-heavy" in available_presets()
            assert config_preset("test-heavy").max_mcmc_iterations == 50
            assert SBPConfig.from_preset("test-heavy", seed=1).seed == 1
        finally:
            from repro.core import config as config_module

            config_module._CONFIG_PRESETS.pop("test-heavy")

    def test_bad_preset_factory_rejected_at_registration(self):
        with pytest.raises(TypeError):
            register_config_preset("broken", lambda: "not a config")

    def test_from_preset_applies_overrides(self):
        config = SBPConfig.from_preset("fast", seed=9, matrix_backend="csr")
        assert config.matrix_backend == "csr"
        assert config.seed == 9


class TestGraphRoundTrip:
    def test_graph_round_trips_exactly(self, planted_graph):
        rebuilt = graph_from_dict(graph_to_dict(planted_graph))
        assert rebuilt == planted_graph
        assert rebuilt.name == planted_graph.name
        assert np.array_equal(rebuilt.true_assignment, planted_graph.true_assignment)

    def test_graph_without_truth(self, planted_graph):
        data = graph_to_dict(planted_graph)
        del data["true_assignment"]
        rebuilt = graph_from_dict(data)
        assert rebuilt.true_assignment is None
        assert rebuilt == planted_graph


class TestResultRoundTrip:
    @pytest.fixture(scope="class")
    def sequential_result(self, planted_graph, fast_config):
        return partition(planted_graph, strategy="sequential", config=fast_config)

    @pytest.fixture(scope="class")
    def edist_result(self, planted_graph, fast_config):
        return partition(planted_graph, strategy="edist", config=fast_config, num_ranks=2)

    def _assert_bit_identical(self, original: SBPResult, reloaded: SBPResult) -> None:
        assert reloaded.description_length == original.description_length
        assert np.array_equal(reloaded.assignment, original.assignment)
        assert reloaded.num_communities == original.num_communities
        assert reloaded.nmi() == original.nmi()
        assert reloaded.dl_norm() == original.dl_norm()
        assert reloaded.algorithm == original.algorithm
        assert reloaded.num_ranks == original.num_ranks
        assert reloaded.runtime_seconds == original.runtime_seconds
        assert reloaded.phase_seconds == original.phase_seconds
        assert len(reloaded.history) == len(original.history)
        for a, b in zip(original.history, reloaded.history):
            assert b.iteration == a.iteration
            assert b.num_blocks == a.num_blocks
            assert b.description_length == a.description_length
            assert b.mcmc_sweeps == a.mcmc_sweeps
            assert b.accepted_moves == a.accepted_moves
            assert b.phase_seconds == a.phase_seconds
        if original.comm_stats is None:
            assert reloaded.comm_stats is None
        else:
            assert reloaded.comm_stats.rank == original.comm_stats.rank
            assert reloaded.comm_stats.calls == original.comm_stats.calls
            assert reloaded.comm_stats.bytes_sent == original.comm_stats.bytes_sent
            assert reloaded.comm_stats.bytes_received == original.comm_stats.bytes_received

    def test_sequential_result_round_trips(self, sequential_result, tmp_path):
        path = sequential_result.save(tmp_path / "sequential.json")
        self._assert_bit_identical(sequential_result, SBPResult.load(path))

    def test_edist_result_round_trips_with_comm_stats(self, edist_result, tmp_path):
        assert edist_result.comm_stats is not None
        path = edist_result.save(tmp_path / "edist.json")
        self._assert_bit_identical(edist_result, SBPResult.load(path))

    def test_dcsbp_result_round_trips(self, planted_graph, fast_config, tmp_path):
        result = partition(planted_graph, strategy="dcsbp", config=fast_config, num_ranks=2)
        path = result.save(tmp_path / "dcsbp.json")
        self._assert_bit_identical(result, SBPResult.load(path))

    def test_double_round_trip_is_stable(self, sequential_result, tmp_path):
        first = SBPResult.load(sequential_result.save(tmp_path / "a.json"))
        second = SBPResult.load(first.save(tmp_path / "b.json"))
        self._assert_bit_identical(first, second)
        assert (tmp_path / "a.json").read_text() == (tmp_path / "b.json").read_text()

    def test_without_graph_requires_explicit_graph(self, sequential_result, planted_graph, tmp_path):
        path = sequential_result.save(tmp_path / "slim.json", include_graph=False)
        with pytest.raises(ValueError, match="include_graph"):
            SBPResult.load(path)
        reloaded = SBPResult.load(path, graph=planted_graph)
        self._assert_bit_identical(sequential_result, reloaded)

    def test_slim_file_is_smaller(self, sequential_result, tmp_path):
        full = sequential_result.save(tmp_path / "full.json")
        slim = sequential_result.save(tmp_path / "slim.json", include_graph=False)
        assert slim.stat().st_size < full.stat().st_size

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="format"):
            SBPResult.load(path)

    def test_metadata_survives(self, sequential_result, tmp_path):
        reloaded = SBPResult.load(sequential_result.save(tmp_path / "meta.json"))
        assert reloaded.metadata["cycles"] == sequential_result.metadata["cycles"]


class TestIterationRecordAndCommStats:
    def test_iteration_record_round_trip(self):
        record = IterationRecord(
            iteration=3,
            num_blocks=17,
            description_length=12345.6789012345,
            mcmc_sweeps=9,
            accepted_moves=411,
            phase_seconds={"mcmc": 0.125, "block_merge": 0.0625},
        )
        rebuilt = IterationRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert rebuilt == record

    def test_comm_stats_round_trip(self):
        stats = CommStats(rank=2, record_events=True)
        stats.record("allgather", sent=100, received=700)
        stats.record("bcast", sent=8, received=8)
        stats.record("allgather", sent=50, received=350)
        rebuilt = CommStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt.rank == stats.rank
        assert rebuilt.calls == stats.calls
        assert rebuilt.bytes_sent == stats.bytes_sent
        assert rebuilt.bytes_received == stats.bytes_received
        assert rebuilt.events == stats.events
