"""Run-lifecycle hooks: observer events, cancellation, timeouts, RunHandle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Partitioner, partition
from repro.core.context import (
    CycleEvent,
    MCMCSweepEvent,
    MergePhaseEvent,
    RunCancelled,
    RunContext,
    RunObserver,
)

STRATEGIES = ["sequential", "dcsbp", "edist"]


class CountingObserver(RunObserver):
    """Counts every event; optionally cancels after N cycles."""

    def __init__(self, cancel_after_cycles=None):
        self.cycle_events = []
        self.merge_events = []
        self.sweep_events = []
        self.cancel_after_cycles = cancel_after_cycles

    def on_cycle(self, event):
        self.cycle_events.append(event)
        if self.cancel_after_cycles is not None and len(self.cycle_events) >= self.cancel_after_cycles:
            event.context.cancel()

    def on_merge_phase(self, event):
        self.merge_events.append(event)

    def on_mcmc_sweep(self, event):
        self.sweep_events.append(event)


def run_strategy(strategy, graph, config, observers=(), timeout=None):
    num_ranks = 1 if strategy == "sequential" else 2
    return partition(
        graph, strategy=strategy, config=config, num_ranks=num_ranks,
        observers=observers, timeout=timeout,
    )


class TestObserverEvents:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_event_counts_match_history(self, planted_graph, fast_config, strategy):
        observer = CountingObserver()
        result = run_strategy(strategy, planted_graph, fast_config, observers=[observer])
        # One on_cycle per history record …
        assert len(observer.cycle_events) == len(result.history)
        # … whose payloads mirror the records exactly.
        for event, record in zip(observer.cycle_events, result.history):
            assert event.cycle == record.iteration
            assert event.num_blocks == record.num_blocks
            assert event.description_length == record.description_length
            assert event.mcmc_sweeps == record.mcmc_sweeps
            assert event.accepted_moves == record.accepted_moves
        # One on_mcmc_sweep per sweep recorded in the history.
        assert len(observer.sweep_events) == sum(r.mcmc_sweeps for r in result.history)
        # One on_merge_phase per cycle that ran a block-merge phase (every
        # history record except a warm-start record at iteration 0).
        assert len(observer.merge_events) == sum(1 for r in result.history if r.iteration >= 1)

    def test_event_types_and_payloads(self, planted_graph, fast_config):
        observer = CountingObserver()
        run_strategy("sequential", planted_graph, fast_config, observers=[observer])
        assert all(isinstance(e, CycleEvent) for e in observer.cycle_events)
        assert all(isinstance(e, MergePhaseEvent) for e in observer.merge_events)
        assert all(isinstance(e, MCMCSweepEvent) for e in observer.sweep_events)
        for event in observer.merge_events:
            assert event.num_blocks_after <= event.num_blocks_before
            assert event.num_merges_requested >= 1
        # The golden-ratio search annotates cycle events with its state.
        assert observer.cycle_events[0].search_state is not None
        assert "target_blocks" in observer.cycle_events[0].search_state

    def test_multiple_observers_all_notified(self, planted_graph, fast_config):
        first, second = CountingObserver(), CountingObserver()
        run_strategy("sequential", planted_graph, fast_config, observers=[first, second])
        assert len(first.cycle_events) == len(second.cycle_events) > 0

    def test_observers_do_not_change_results(self, planted_graph, fast_config):
        silent = run_strategy("edist", planted_graph, fast_config)
        observed = run_strategy("edist", planted_graph, fast_config, observers=[CountingObserver()])
        assert np.array_equal(silent.assignment, observed.assignment)
        assert silent.description_length == observed.description_length


class TestCancellation:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_cancel_after_n_cycles_yields_partial_result(self, planted_graph, fast_config, strategy):
        # DC-SBP's observable history is the root's fine-tuning stage, which
        # converges in very few cycles on this graph — cancel at the first.
        cancel_after = 1 if strategy == "dcsbp" else 2
        observer = CountingObserver(cancel_after_cycles=cancel_after)
        result = run_strategy(strategy, planted_graph, fast_config, observers=[observer])
        # The run stopped early, for the reason we injected …
        assert result.metadata.get("stopped") == "cancelled"
        assert len(observer.cycle_events) == cancel_after
        # … and still produced a well-formed result: full assignment over the
        # graph, exact DL, and a history matching the observed events.
        assert result.assignment.shape == (planted_graph.num_vertices,)
        assert np.isfinite(result.description_length)
        assert result.num_communities >= 1
        assert len(result.history) == len(observer.cycle_events)

    def test_cancelled_sequential_run_is_prefix_of_full_run(self, planted_graph, fast_config):
        full = run_strategy("sequential", planted_graph, fast_config)
        observer = CountingObserver(cancel_after_cycles=2)
        partial = run_strategy("sequential", planted_graph, fast_config, observers=[observer])
        assert [r.description_length for r in partial.history] == [
            r.description_length for r in full.history[:2]
        ]

    def test_partial_result_serializes(self, planted_graph, fast_config, tmp_path):
        from repro.core.results import SBPResult

        observer = CountingObserver(cancel_after_cycles=2)
        partial = run_strategy("edist", planted_graph, fast_config, observers=[observer])
        reloaded = SBPResult.load(partial.save(tmp_path / "partial.json"))
        assert reloaded.metadata["stopped"] == "cancelled"
        assert reloaded.description_length == partial.description_length

    def test_cancel_pending_handle_is_terminal_immediately(self, planted_graph, fast_config):
        # Regression: cancel() on a never-started handle used to leave it
        # "pending" forever; a scheduler holding the handle could never
        # observe a terminal state without calling run() itself.
        handle = Partitioner("sequential", fast_config).submit(planted_graph)
        handle.cancel()
        assert handle.status == "cancelled"
        assert handle.done
        # result() lazily materialises the well-formed degenerate result
        # without disturbing the terminal state.
        result = handle.result()
        assert handle.status == "cancelled"
        assert result.metadata.get("stopped") == "cancelled"
        assert len(result.history) == 0

    def test_external_cancel_before_run(self, planted_graph, fast_config):
        handle = Partitioner("sequential", fast_config).submit(planted_graph)
        handle.cancel()
        result = handle.run()
        assert handle.status == "cancelled"
        # Nothing ran, but the result is still well-formed (the degenerate
        # one-block-per-vertex state).
        assert result.assignment.shape == (planted_graph.num_vertices,)
        assert result.metadata.get("stopped") == "cancelled"
        assert len(result.history) == 0


class TestTimeout:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_zero_timeout_still_returns_wellformed_result(self, planted_graph, fast_config, strategy):
        result = run_strategy(strategy, planted_graph, fast_config, timeout=0.0)
        assert result.metadata.get("stopped") == "timeout"
        assert result.assignment.shape == (planted_graph.num_vertices,)
        assert np.isfinite(result.description_length)

    def test_timeout_armed_at_first_check_not_at_construction(self):
        # A handle can sit pending without consuming its wall-clock budget:
        # the deadline arms at the first should_stop() call (run start).
        import time

        ctx = RunContext(timeout=0.2)
        time.sleep(0.25)
        assert not ctx.should_stop()  # budget starts now, not at __init__
        assert ctx.stop_reason is None

    def test_generous_timeout_does_not_interfere(self, planted_graph, fast_config):
        unlimited = run_strategy("sequential", planted_graph, fast_config)
        bounded = run_strategy("sequential", planted_graph, fast_config, timeout=3600.0)
        assert bounded.metadata.get("stopped") is None
        assert np.array_equal(unlimited.assignment, bounded.assignment)
        assert unlimited.description_length == bounded.description_length


class TestRunHandle:
    def test_status_transitions(self, planted_graph, fast_config):
        handle = Partitioner("sequential", fast_config).submit(planted_graph)
        assert handle.status == "pending"
        handle.run()
        assert handle.status == "completed"

    def test_cancel_from_observer_sets_cancelled_status(self, planted_graph, fast_config):
        observer = CountingObserver(cancel_after_cycles=1)
        handle = Partitioner("sequential", fast_config).submit(
            planted_graph, observers=[observer]
        )
        result = handle.run()
        assert handle.status == "cancelled"
        assert result.metadata["stopped"] == "cancelled"

    def test_timeout_sets_timeout_status(self, planted_graph, fast_config):
        handle = Partitioner("edist", fast_config, num_ranks=2).submit(
            planted_graph, timeout=0.0
        )
        handle.run()
        assert handle.status == "timeout"

    def test_custom_cancel_reason_maps_to_cancelled_state(self, planted_graph, fast_config):
        class BudgetObserver(RunObserver):
            def on_cycle(self, event):
                event.context.cancel("budget-exceeded")

        handle = Partitioner("sequential", fast_config).submit(
            planted_graph, observers=[BudgetObserver()]
        )
        result = handle.run()
        assert handle.status == "cancelled"
        assert handle.done
        assert handle.context.stop_reason == "budget-exceeded"
        assert result.metadata["stopped"] == "budget-exceeded"
        # Idempotent: a second run() returns the stored partial result.
        assert handle.run() is result

    def test_edist_sweep_events_report_global_proposals(self, planted_graph, fast_config):
        observer = CountingObserver()
        run_strategy("edist", planted_graph, fast_config, observers=[observer])
        for event in observer.sweep_events:
            assert event.accepted_moves <= event.proposed_moves

    def test_add_observer_before_run(self, planted_graph, fast_config):
        observer = CountingObserver()
        handle = Partitioner("sequential", fast_config).submit(planted_graph)
        handle.add_observer(observer)
        handle.run()
        assert len(observer.cycle_events) > 0

    def test_failed_run_reraises(self, planted_graph, fast_config):
        class Exploding(RunObserver):
            def on_cycle(self, event):
                raise RuntimeError("boom")

        handle = Partitioner("sequential", fast_config).submit(
            planted_graph, observers=[Exploding()]
        )
        with pytest.raises(RuntimeError):
            handle.run()
        assert handle.status == "failed"
        with pytest.raises(RuntimeError):
            handle.result()


class TestRunContextPrimitives:
    def test_silent_view_shares_stop_state(self):
        root = RunContext()
        view = root.silent()
        view.cancel()
        assert root.should_stop()
        assert root.stop_reason == "cancelled"

    def test_silent_view_emits_nothing(self):
        observer = CountingObserver()
        root = RunContext(observers=[observer])
        root.silent().emit_cycle(1, 10, 1.0, 1, 1)
        assert observer.cycle_events == []
        assert root.event_counts["cycle"] == 0

    def test_first_stop_reason_wins(self):
        ctx = RunContext()
        ctx.cancel()
        ctx.cancel(reason="other")
        assert ctx.stop_reason == "cancelled"

    def test_raise_if_stopped(self):
        ctx = RunContext()
        ctx.raise_if_stopped()  # no-op while running
        ctx.cancel()
        with pytest.raises(RunCancelled):
            ctx.raise_if_stopped()

    def test_event_counts_tracked(self, planted_graph, fast_config):
        ctx = RunContext()
        partition(planted_graph, config=fast_config, run_context=ctx)
        assert ctx.event_counts["cycle"] > 0
        assert ctx.event_counts["mcmc_sweep"] >= ctx.event_counts["cycle"]
