"""The perf-regression gate: verdict semantics and the CLI entry point.

Synthetic registries + baselines exercise every verdict: pass on unchanged
and faster runs, fail (naming the experiment) on slowed runs and on gated
experiments that never ran, and record-and-warn — without failing — when a
run has no committed baseline yet.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.registry import RunRecord, append_run, evaluate_gate, load_baselines, refresh_baselines
from repro.registry.gate import BASELINE_FORMAT, DEFAULT_TOLERANCE, GATED_EXPERIMENTS

REPO_ROOT = Path(__file__).resolve().parent.parent
GATE_CLI = REPO_ROOT / "scripts" / "regression_gate.py"


def record(experiment: str, wall_seconds: float, mode: str = "smoke", **overrides) -> RunRecord:
    base = dict(
        experiment=experiment,
        mode=mode,
        wall_seconds=wall_seconds,
        git_rev="deadbeef",
        git_dirty=False,
        hostname="testhost",
    )
    base.update(overrides)
    return RunRecord(**base)


def write_baselines(path: Path, entries: dict, tolerance: float = DEFAULT_TOLERANCE) -> Path:
    path.write_text(
        json.dumps(
            {
                "format": BASELINE_FORMAT,
                "version": 1,
                "tolerance": tolerance,
                "mode": "smoke",
                "experiments": {
                    name: {"wall_seconds": wall} for name, wall in entries.items()
                },
            }
        )
    )
    return path


@pytest.fixture()
def registry(tmp_path):
    directory = tmp_path / "registry"
    directory.mkdir()
    return directory


# ----------------------------------------------------------------------
# Verdict semantics
# ----------------------------------------------------------------------
def test_unchanged_run_passes(registry, tmp_path):
    append_run(record("backend_throughput", 1.0), registry)
    baselines = write_baselines(tmp_path / "baselines.json", {"backend_throughput": 1.0})
    report = evaluate_gate(["backend_throughput"], baselines, registry)
    assert not report.failed
    assert report.checks[0].status == "ok"
    assert report.checks[0].ratio == 1.0


def test_faster_run_passes(registry, tmp_path):
    append_run(record("backend_throughput", 0.5), registry)
    baselines = write_baselines(tmp_path / "baselines.json", {"backend_throughput": 1.0})
    report = evaluate_gate(["backend_throughput"], baselines, registry)
    assert not report.failed


def test_slower_run_fails_naming_the_experiment(registry, tmp_path):
    append_run(record("merge_throughput", 2.0), registry)
    baselines = write_baselines(tmp_path / "baselines.json", {"merge_throughput": 1.0})
    report = evaluate_gate(["merge_throughput"], baselines, registry)
    assert report.failed
    check = report.checks[0]
    assert check.status == "regression"
    assert "merge_throughput" in check.message
    assert "regressed" in check.message


def test_missing_experiment_fails_naming_it(registry, tmp_path):
    baselines = write_baselines(tmp_path / "baselines.json", {"fig4_strong_scaling": 1.0})
    report = evaluate_gate(["fig4_strong_scaling"], baselines, registry)
    assert report.failed
    check = report.checks[0]
    assert check.status == "missing_run"
    assert "fig4_strong_scaling" in check.message
    assert "no 'smoke'-mode run" in check.message


def test_no_baseline_records_and_warns_without_failing(registry, tmp_path):
    append_run(record("sparse_backend_scaling", 3.0), registry)
    baselines = write_baselines(tmp_path / "baselines.json", {"backend_throughput": 1.0})
    report = evaluate_gate(["sparse_backend_scaling"], baselines, registry)
    assert not report.failed
    check = report.checks[0]
    assert check.status == "no_baseline"
    assert check.observed_wall_seconds == 3.0
    assert "refresh" in check.message
    # A completely absent baselines file behaves the same way.
    report = evaluate_gate(["sparse_backend_scaling"], tmp_path / "nope.json", registry)
    assert not report.failed and report.checks[0].status == "no_baseline"


def test_wrong_mode_run_does_not_satisfy_the_gate(registry, tmp_path):
    append_run(record("backend_throughput", 1.0, mode="quick"), registry)
    baselines = write_baselines(tmp_path / "baselines.json", {"backend_throughput": 1.0})
    report = evaluate_gate(["backend_throughput"], baselines, registry)
    assert report.failed and report.checks[0].status == "missing_run"


def test_gate_uses_latest_run_not_best(registry, tmp_path):
    append_run(record("backend_throughput", 1.0), registry)
    append_run(record("backend_throughput", 5.0), registry)
    baselines = write_baselines(tmp_path / "baselines.json", {"backend_throughput": 1.0})
    assert evaluate_gate(["backend_throughput"], baselines, registry).failed


def test_tolerance_knob(registry, tmp_path):
    append_run(record("backend_throughput", 1.1), registry)
    baselines = write_baselines(tmp_path / "baselines.json", {"backend_throughput": 1.0})
    assert not evaluate_gate(["backend_throughput"], baselines, registry, tolerance=0.25).failed
    assert evaluate_gate(["backend_throughput"], baselines, registry, tolerance=0.05).failed


def test_simulated_slowdown_trips_an_otherwise_passing_gate(registry, tmp_path):
    append_run(record("backend_throughput", 1.0), registry)
    baselines = write_baselines(tmp_path / "baselines.json", {"backend_throughput": 1.0})
    assert not evaluate_gate(["backend_throughput"], baselines, registry).failed
    report = evaluate_gate(["backend_throughput"], baselines, registry, slowdown=2.0)
    assert report.failed and report.checks[0].status == "regression"


def test_multiple_experiments_report_individually(registry, tmp_path):
    append_run(record("backend_throughput", 1.0), registry)
    append_run(record("merge_throughput", 9.0), registry)
    baselines = write_baselines(
        tmp_path / "baselines.json", {"backend_throughput": 1.0, "merge_throughput": 1.0}
    )
    report = evaluate_gate(["backend_throughput", "merge_throughput"], baselines, registry)
    statuses = {c.experiment: c.status for c in report.checks}
    assert statuses == {"backend_throughput": "ok", "merge_throughput": "regression"}
    assert [c.experiment for c in report.failures] == ["merge_throughput"]


# ----------------------------------------------------------------------
# Baselines file handling
# ----------------------------------------------------------------------
def test_load_baselines_rejects_arbitrary_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"experiments": {}}')
    with pytest.raises(ValueError, match="format marker"):
        load_baselines(path)


def test_load_baselines_names_bad_entry_field(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(
        json.dumps({"format": BASELINE_FORMAT, "experiments": {"x": {"wall_seconds": -1}}})
    )
    with pytest.raises(ValueError, match="'x' field 'wall_seconds'"):
        load_baselines(path)


def test_refresh_baselines_round_trip(registry, tmp_path):
    append_run(record("backend_throughput", 1.5), registry)
    path = tmp_path / "baselines.json"
    data = refresh_baselines(path, ["backend_throughput"], registry)
    assert data["experiments"]["backend_throughput"]["wall_seconds"] == 1.5
    loaded = load_baselines(path)  # must validate as a baselines file
    assert loaded["experiments"]["backend_throughput"]["git_rev"] == "deadbeef"
    assert not evaluate_gate(["backend_throughput"], path, registry).failed


def test_refresh_baselines_preserves_other_entries_and_tolerance(registry, tmp_path):
    path = write_baselines(tmp_path / "baselines.json", {"merge_throughput": 7.0}, tolerance=0.4)
    append_run(record("backend_throughput", 1.5), registry)
    data = refresh_baselines(path, ["backend_throughput"], registry)
    assert data["experiments"]["merge_throughput"]["wall_seconds"] == 7.0
    assert data["tolerance"] == 0.4


def test_refresh_baselines_requires_a_recorded_run(registry, tmp_path):
    with pytest.raises(ValueError, match="'backend_throughput'"):
        refresh_baselines(tmp_path / "baselines.json", ["backend_throughput"], registry)


# ----------------------------------------------------------------------
# CLI end-to-end (exit codes are what CI consumes)
# ----------------------------------------------------------------------
def run_cli(*args, registry_dir: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ, REPRO_REGISTRY_DIR=str(registry_dir))
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(GATE_CLI), *args],
        capture_output=True, text=True, cwd=REPO_ROOT, env=env, timeout=120,
    )


def test_cli_exit_codes_and_self_test(registry, tmp_path):
    append_run(record("backend_throughput", 1.0), registry)
    baselines = write_baselines(tmp_path / "baselines.json", {"backend_throughput": 1.0})
    args = ("--experiments", "backend_throughput", "--baselines", str(baselines))

    ok = run_cli(*args, registry_dir=registry)
    assert ok.returncode == 0, ok.stdout + ok.stderr
    assert "gate passed" in ok.stdout

    slowed = run_cli(*args, "--simulate-slowdown", "2.0", registry_dir=registry)
    assert slowed.returncode == 1, slowed.stdout + slowed.stderr
    assert "backend_throughput" in slowed.stdout and "FAIL" in slowed.stdout

    advisory = run_cli(*args, "--simulate-slowdown", "2.0", "--advisory", registry_dir=registry)
    assert advisory.returncode == 0, advisory.stdout + advisory.stderr
    assert "advisory" in advisory.stdout


def test_cli_refresh_then_gate(registry, tmp_path):
    append_run(record("backend_throughput", 2.5), registry)
    baselines = tmp_path / "fresh-baselines.json"
    args = ("--experiments", "backend_throughput", "--baselines", str(baselines))

    refreshed = run_cli(*args, "--refresh-baselines", registry_dir=registry)
    assert refreshed.returncode == 0, refreshed.stdout + refreshed.stderr
    assert baselines.exists()

    gated = run_cli(*args, "--history", registry_dir=registry)
    assert gated.returncode == 0, gated.stdout + gated.stderr
    assert "history backend_throughput" in gated.stdout

    missing = run_cli(
        "--experiments", "never_ran", "--baselines", str(baselines), registry_dir=registry
    )
    assert missing.returncode == 1
    assert "never_ran" in missing.stdout


def test_default_gated_experiments_are_the_four_from_the_issue():
    assert GATED_EXPERIMENTS == (
        "backend_throughput",
        "merge_throughput",
        "sparse_backend_scaling",
        "fig4_strong_scaling",
    )
