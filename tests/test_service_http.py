"""The HTTP/JSON API, exercised over a live server on an ephemeral port."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import numpy as np
import pytest

from repro.api import partition
from repro.core.context import RunContext
from repro.core.results import SBPResult
from repro.graphs.io import graph_to_dict
from repro.service import JobExecutor, PartitionService

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def call(url, method="GET", body=None, raw=None):
    data = raw if raw is not None else (None if body is None else json.dumps(body).encode())
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture()
def service():
    with PartitionService(max_workers=2, record_runs=False) as svc:
        yield svc


EDGES_BODY = {
    "graph": {
        "edges": [[0, 1], [1, 2], [2, 0], [3, 4], [4, 5], [5, 3], [0, 3]],
        "name": "two-triangles",
    },
    "preset": "fast",
}


class TestRoutingAndErrors:
    def test_healthz(self, service):
        assert call(service.base_url + "/healthz") == (200, {"status": "ok"})

    def test_unknown_route_404(self, service):
        status, payload = call(service.base_url + "/nope")
        assert status == 404
        assert payload["error"]["status"] == 404

    def test_unknown_job_404_on_get_result_delete(self, service):
        for suffix, method in (("/jobs/ghost", "GET"),
                               ("/jobs/ghost/result", "GET"),
                               ("/jobs/ghost", "DELETE")):
            status, payload = call(service.base_url + suffix, method)
            assert status == 404
            assert "ghost" in payload["error"]["message"]

    def test_invalid_json_body_400(self, service):
        status, payload = call(service.base_url + "/jobs", "POST", raw=b"{not json")
        assert status == 400
        assert payload["error"]["field"] == "body"

    def test_empty_body_400(self, service):
        status, payload = call(service.base_url + "/jobs", "POST", raw=b"")
        assert status == 400
        assert payload["error"]["field"] == "body"

    @pytest.mark.parametrize("mutate, field", [
        (lambda b: b.pop("graph"), "graph"),
        (lambda b: b.update(priority="high"), "priority"),
        (lambda b: b.update(strategy="quantum"), "strategy"),
        (lambda b: b.update(preset="warp"), "preset"),
        (lambda b: b.update(config={"x": 1}, preset=None) or b.pop("preset"), "config"),
        (lambda b: b.update(timeout=-3), "timeout"),
        (lambda b: b.update(num_ranks=0), "num_ranks"),
        (lambda b: b.update(job_id=""), "job_id"),
        (lambda b: b.update(frobnicate=1), "frobnicate"),
        (lambda b: b.__setitem__("graph", {"edges": [[0, "a"]]}), "graph.edges"),
        (lambda b: b.__setitem__("graph", {"edges": [[0, 1]], "num_vertices": 1}),
         "graph.num_vertices"),
        (lambda b: b.__setitem__("graph", {"generator": "tesseract"}), "graph.generator"),
        (lambda b: b.__setitem__("graph", {"generator": "challenge", "graph_id": "1m-easy"}),
         "graph.graph_id"),
        (lambda b: b.__setitem__("graph", {"generator": "dcsbm", "num_vertices": -5,
                                           "num_communities": 2}), "graph.num_vertices"),
        (lambda b: b.update(overrides={"no_such_knob": 1}), "overrides"),
    ])
    def test_bad_bodies_name_the_offending_field(self, service, mutate, field):
        body = json.loads(json.dumps(EDGES_BODY))
        mutate(body)
        status, payload = call(service.base_url + "/jobs", "POST", body)
        assert status == 400, payload
        assert payload["error"]["field"] == field
        assert field.split(".")[-1] in payload["error"]["message"]

    def test_config_and_preset_conflict(self, service):
        body = dict(EDGES_BODY, config={"seed": 1})
        status, payload = call(service.base_url + "/jobs", "POST", body)
        assert status == 400
        assert payload["error"]["field"] == "config"
        assert "either" in payload["error"]["message"]

    def test_duplicate_job_id_409(self, service):
        body = dict(EDGES_BODY, job_id="dup")
        status, _ = call(service.base_url + "/jobs", "POST", body)
        assert status == 201
        status, payload = call(service.base_url + "/jobs", "POST", body)
        assert status == 409
        assert "dup" in payload["error"]["message"]

    def test_result_before_terminal_409(self):
        release = threading.Event()

        class Gated:
            name = "gated"

            def run(self, graph, config, *, num_ranks=1, run_context=None):
                release.wait(timeout=30)
                return SimpleNamespace(runtime_seconds=0.0, phase_seconds={})

        executor = JobExecutor(max_workers=1, record_runs=False)
        with PartitionService(executor=executor) as svc:
            graph = _tiny_graph()
            job = executor.submit(graph, strategy=Gated(), job_id="inflight")
            status, payload = call(svc.base_url + "/jobs/inflight/result")
            assert status == 409
            assert "inflight" in payload["error"]["message"]
            release.set()
            executor.wait("inflight", timeout=30)
        executor.shutdown()


def _tiny_graph():
    from repro.graphs.graph import Graph

    edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)]
    return Graph.from_edges(6, edges, name="tiny-http")


class TestLifecycleOverHTTP:
    def test_submit_list_status_cancel(self, service):
        base = service.base_url
        status, job = call(base + "/jobs", "POST", dict(EDGES_BODY, job_id="alpha"))
        assert status == 201
        assert job["job_id"] == "alpha"
        assert job["state"] in ("queued", "running")
        assert job["preset"] == "fast"

        status, listing = call(base + "/jobs")
        assert status == 200
        assert [j["job_id"] for j in listing["jobs"]] == ["alpha"]

        status, view = call(base + "/jobs/alpha")
        assert status == 200
        assert "progress" in view and 0.0 <= view["progress"]["progress"] <= 1.0

    def test_delete_cancels_midrun_job(self):
        started = threading.Event()

        class Cooperative:
            name = "cooperative"

            def run(self, graph, config, *, num_ranks=1, run_context=None):
                context = run_context or RunContext()
                started.set()
                while not context.should_stop():
                    time.sleep(0.005)
                return SimpleNamespace(runtime_seconds=0.0, phase_seconds={},
                                       metadata={"stopped": context.stop_reason})

        executor = JobExecutor(max_workers=1, record_runs=False)
        with PartitionService(executor=executor) as svc:
            executor.submit(_tiny_graph(), strategy=Cooperative(), job_id="spinner")
            assert started.wait(timeout=10)
            status, payload = call(svc.base_url + "/jobs/spinner", "DELETE")
            assert status == 200
            finished = executor.wait("spinner", timeout=30)
            assert finished.state == "cancelled"
            status, view = call(svc.base_url + "/jobs/spinner")
            assert view["state"] == "cancelled"
        executor.shutdown()

    def test_delete_queued_job_cancels_before_it_runs(self):
        release = threading.Event()
        log = []

        class Gated:
            name = "gated"

            def __init__(self, tag):
                self.tag = tag

            def run(self, graph, config, *, num_ranks=1, run_context=None):
                log.append(self.tag)
                release.wait(timeout=30)
                return SimpleNamespace(runtime_seconds=0.0, phase_seconds={})

        executor = JobExecutor(max_workers=1, record_runs=False)
        with PartitionService(executor=executor) as svc:
            executor.submit(_tiny_graph(), strategy=Gated("blocker"), job_id="blocker")
            time.sleep(0.1)
            executor.submit(_tiny_graph(), strategy=Gated("victim"), job_id="victim")
            status, payload = call(svc.base_url + "/jobs/victim", "DELETE")
            assert status == 200
            assert payload["state"] == "cancelled"
            release.set()
            executor.wait("blocker", timeout=30)
        executor.shutdown()
        assert log == ["blocker"]

    def test_metrics_consistent_with_job_listing(self, service):
        base = service.base_url
        for i in range(3):
            status, _ = call(base + "/jobs", "POST", dict(EDGES_BODY, job_id=f"m{i}"))
            assert status == 201
        for i in range(3):
            service.executor.wait(f"m{i}", timeout=60)
        status, metrics = call(base + "/metrics")
        assert status == 200
        status, listing = call(base + "/jobs")
        by_state = {}
        for job in listing["jobs"]:
            by_state[job["state"]] = by_state.get(job["state"], 0) + 1
        assert metrics["jobs_total"] == len(listing["jobs"]) == 3
        for state, count in by_state.items():
            assert metrics["states"][state] == count
        assert metrics["finished"] == 3
        assert metrics["latency_seconds"]["count"] == 3.0
        assert metrics["latency_seconds"]["p50"] <= metrics["latency_seconds"]["p99"]
        assert metrics["max_workers"] == 2


class TestEndToEndAcceptance:
    def test_served_result_is_bit_identical_to_direct_run(self, hard_graph, fast_config):
        """The PR's acceptance bar: POST a persisted graph + explicit config,
        watch progress increase monotonically with finite ETAs, then fetch a
        result bit-identical (float-hex DL, assignment, history) to a direct
        ``partition()`` with the same config/seed."""
        direct = partition(hard_graph, strategy="sequential", config=fast_config)

        with PartitionService(max_workers=1, record_runs=False) as svc:
            base = svc.base_url
            status, job = call(base + "/jobs", "POST", {
                "job_id": "acceptance",
                "graph": graph_to_dict(hard_graph),
                "config": fast_config.to_dict(),
            })
            assert status == 201, job

            fractions = []
            while True:
                status, view = call(base + "/jobs/acceptance")
                assert status == 200
                progress = view["progress"]
                fractions.append(progress["progress"])
                if progress["eta_seconds"] is not None:
                    assert np.isfinite(progress["eta_seconds"])
                if view["state"] not in ("queued", "running"):
                    break
                time.sleep(0.02)

            assert view["state"] == "succeeded"
            # Monotonically non-decreasing, ending at exactly 1.0.
            assert fractions == sorted(fractions)
            assert fractions[-1] == 1.0

            status, payload = call(base + "/jobs/acceptance/result")
            assert status == 200
            served = SBPResult.from_dict(payload)

        assert served.description_length == direct.description_length
        assert float.fromhex(payload["description_length_hex"]) == direct.description_length
        assert np.array_equal(served.assignment, direct.assignment)
        assert len(served.history) == len(direct.history)
        for ours, theirs in zip(served.history, direct.history):
            assert ours.description_length == theirs.description_length
            assert ours.num_blocks == theirs.num_blocks

    def test_result_without_graph_payload(self, service):
        base = service.base_url
        status, _ = call(base + "/jobs", "POST", dict(EDGES_BODY, job_id="slim"))
        assert status == 201
        service.executor.wait("slim", timeout=60)
        status, payload = call(base + "/jobs/slim/result?include_graph=0")
        assert status == 200
        assert payload["graph_included"] is False
        # Reload against the original graph still round-trips.
        graph = _tiny_graph()
        result = SBPResult.from_dict(payload, graph=graph)
        assert result.assignment.shape == (graph.num_vertices,)
