"""Fixtures for the cross-backend differential suite.

Two small seeded SBM graphs with different regimes: ``diff_graph_a`` is
dense and easy (communities recovered exactly), ``diff_graph_b`` is sparser
with min-degree 1, which exercises island vertices, zero-degree blocks and
the uniform-fallback proposal paths.  Run this suite alone with
``scripts/verify.sh --differential``.
"""

from __future__ import annotations

import pytest

from repro.core.config import SBPConfig
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph
from repro.graphs.graph import Graph


@pytest.fixture(scope="session")
def diff_graph_a() -> Graph:
    spec = DCSBMSpec(
        num_vertices=120,
        num_communities=3,
        degree_spec=DegreeSequenceSpec(exponent=3.0, min_degree=4, max_degree=20, duplicate=True),
        intra_inter_ratio=3.5,
        block_size_alpha=5.0,
        name="diff-a-120",
    )
    return generate_dcsbm_graph(spec, seed=7)


@pytest.fixture(scope="session")
def diff_graph_b() -> Graph:
    spec = DCSBMSpec(
        num_vertices=150,
        num_communities=4,
        degree_spec=DegreeSequenceSpec(exponent=2.3, min_degree=1, max_degree=25, duplicate=True),
        intra_inter_ratio=3.5,
        block_size_alpha=4.0,
        name="diff-b-150",
    )
    return generate_dcsbm_graph(spec, seed=31)


@pytest.fixture(scope="session")
def diff_config() -> SBPConfig:
    return SBPConfig.fast(seed=11)
