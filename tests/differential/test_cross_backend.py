"""Full-pipeline differential tests: dict vs csr through every algorithm.

The acceptance criterion of the backend work: under a fixed seed the two
storage backends must produce bit-identical partitions and description
lengths through sequential SBP, DC-SBP and EDiSt (threaded communicator),
with the per-cycle history — each entry a phase-boundary observation —
identical as well.
"""

import pytest

from repro.core.config import MCMCVariant
from repro.testing.differential import (
    assert_results_identical,
    run_backend_pair,
    run_dcsbp,
    run_edist,
    run_sequential,
)


class TestSequential:
    @pytest.mark.parametrize("variant", MCMCVariant.ALL)
    def test_bit_identical_for_every_mcmc_variant(self, diff_graph_a, diff_config, variant):
        config = diff_config.with_overrides(mcmc_variant=variant)
        reference, candidate = run_backend_pair(run_sequential, diff_graph_a, config)
        assert_results_identical(reference, candidate)

    def test_bit_identical_on_sparse_graph(self, diff_graph_b, diff_config):
        reference, candidate = run_backend_pair(run_sequential, diff_graph_b, diff_config)
        assert_results_identical(reference, candidate)


class TestDCSBP:
    @pytest.mark.parametrize("num_ranks", [1, 2])
    def test_bit_identical(self, diff_graph_a, diff_config, num_ranks):
        reference, candidate = run_backend_pair(
            run_dcsbp, diff_graph_a, diff_config, num_ranks=num_ranks
        )
        assert_results_identical(reference, candidate)

    def test_bit_identical_with_candidate_sampling(self, diff_graph_b, diff_config):
        # The combine step's rng.choice candidate sampling must consume the
        # stream identically on both backends.
        config = diff_config.with_overrides(dcsbp_merge_candidates=3)
        reference, candidate = run_backend_pair(run_dcsbp, diff_graph_b, config, num_ranks=2)
        assert_results_identical(reference, candidate)


class TestEDiSt:
    @pytest.mark.parametrize("num_ranks", [2, 3])
    def test_bit_identical(self, diff_graph_a, diff_config, num_ranks):
        config = diff_config.with_overrides(validate=True)  # replica-divergence check on
        reference, candidate = run_backend_pair(
            run_edist, diff_graph_a, config, num_ranks=num_ranks
        )
        assert_results_identical(reference, candidate)

    def test_bit_identical_on_sparse_graph(self, diff_graph_b, diff_config):
        reference, candidate = run_backend_pair(run_edist, diff_graph_b, diff_config, num_ranks=2)
        assert_results_identical(reference, candidate)
