"""Full-pipeline differential tests: all registered backends, pairwise.

The acceptance criterion of the backend work: under a fixed seed the
``"dict"`` reference, the dense vectorized ``"csr"`` backend and the
true-sparse ``"sparse_csr"`` backend must produce bit-identical partitions
and description lengths through sequential SBP, DC-SBP and EDiSt (threaded
communicator), with the per-cycle history — each entry a phase-boundary
observation — identical as well.  Every candidate backend is compared
against the common reference, which implies pairwise identity across the
whole set.
"""

import pytest

from repro.core.config import MCMCVariant
from repro.testing.differential import (
    ALL_BACKENDS,
    CANDIDATE_BACKENDS,
    assert_all_results_identical,
    run_backends,
    run_dcsbp,
    run_edist,
    run_sequential,
)


class TestSequential:
    @pytest.mark.parametrize("variant", MCMCVariant.ALL)
    def test_bit_identical_for_every_mcmc_variant(self, diff_graph_a, diff_config, variant):
        config = diff_config.with_overrides(mcmc_variant=variant)
        results = run_backends(run_sequential, diff_graph_a, config)
        assert set(results) == set(ALL_BACKENDS)
        assert_all_results_identical(results)

    def test_bit_identical_on_sparse_graph(self, diff_graph_b, diff_config):
        results = run_backends(run_sequential, diff_graph_b, diff_config)
        assert_all_results_identical(results)

    @pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
    def test_result_reports_requested_backend(self, diff_graph_a, diff_config, backend):
        config = diff_config.with_overrides(matrix_backend=backend)
        result = run_sequential(diff_graph_a, config)
        assert result.blockmodel.matrix_backend == backend


class TestDCSBP:
    @pytest.mark.parametrize("num_ranks", [1, 2])
    def test_bit_identical(self, diff_graph_a, diff_config, num_ranks):
        results = run_backends(run_dcsbp, diff_graph_a, diff_config, num_ranks=num_ranks)
        assert_all_results_identical(results)

    def test_bit_identical_with_candidate_sampling(self, diff_graph_b, diff_config):
        # The combine step's rng.choice candidate sampling must consume the
        # stream identically on every backend.
        config = diff_config.with_overrides(dcsbp_merge_candidates=3)
        results = run_backends(run_dcsbp, diff_graph_b, config, num_ranks=2)
        assert_all_results_identical(results)


class TestEDiSt:
    @pytest.mark.parametrize("num_ranks", [2, 3])
    def test_bit_identical(self, diff_graph_a, diff_config, num_ranks):
        config = diff_config.with_overrides(validate=True)  # replica-divergence check on
        results = run_backends(run_edist, diff_graph_a, config, num_ranks=num_ranks)
        assert_all_results_identical(results)

    def test_bit_identical_on_sparse_graph(self, diff_graph_b, diff_config):
        results = run_backends(run_edist, diff_graph_b, diff_config, num_ranks=2)
        assert_all_results_identical(results)
