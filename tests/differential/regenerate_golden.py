"""Regenerate the golden-file regression partitions.

Run from the repository root after an *intentional* behaviour change::

    PYTHONPATH=src python tests/differential/regenerate_golden.py

The script runs the same graphs/config as ``tests/differential/conftest.py``
on both backends, verifies they agree, and rewrites ``golden/*.json``.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import diff_config, diff_graph_a, diff_graph_b  # noqa: E402,F401

from repro.testing.differential import (  # noqa: E402
    REFERENCE_BACKEND,
    assert_all_results_identical,
    golden_record,
    run_backends,
    run_sequential,
)


def main() -> None:
    golden_dir = Path(__file__).parent / "golden"
    golden_dir.mkdir(exist_ok=True)
    config = diff_config.__wrapped__()
    graphs = {
        "sbm-a": diff_graph_a.__wrapped__(),
        "sbm-b": diff_graph_b.__wrapped__(),
    }
    for name, graph in graphs.items():
        results = run_backends(run_sequential, graph, config)
        assert_all_results_identical(results)
        record = golden_record(results[REFERENCE_BACKEND])
        path = golden_dir / f"{name}.json"
        path.write_text(json.dumps(record, indent=1) + "\n")
        reference = results[REFERENCE_BACKEND]
        print(f"wrote {path} (B={record['num_blocks']}, DL={reference.description_length:.3f})")


if __name__ == "__main__":
    main()
