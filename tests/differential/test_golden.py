"""Golden-file regression partitions for two small SBM graphs.

Every registered backend must reproduce the committed partition exactly —
block count, assignment, and description length (stored as ``float.hex``
and compared bitwise).  This pins the whole pipeline (proposal streams,
merge selections, MCMC acceptance, golden-ratio bracketing) against
unintended drift; the golden files were recorded before the ``sparse_csr``
backend existed, so passing them is also the proof that the new backend
changed nothing.

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python tests/differential/regenerate_golden.py
"""

import json
from pathlib import Path

import pytest

from repro.testing.differential import (
    ALL_BACKENDS,
    golden_record,
    run_backends,
    run_sequential,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: golden-file stem -> conftest graph fixture name
CASES = {"sbm-a": "diff_graph_a", "sbm-b": "diff_graph_b"}


@pytest.mark.parametrize("name", sorted(CASES))
def test_every_backend_matches_golden_partition(name, request, diff_config):
    graph = request.getfixturevalue(CASES[name])
    golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    results = run_backends(run_sequential, graph, diff_config, backends=ALL_BACKENDS)
    for backend, result in results.items():
        record = golden_record(result)
        assert record["num_blocks"] == golden["num_blocks"], f"{backend}: block count drifted"
        assert record["description_length_hex"] == golden["description_length_hex"], (
            f"{backend}: description length drifted "
            f"({record['description_length_hex']} != {golden['description_length_hex']})"
        )
        assert record["assignment"] == golden["assignment"], f"{backend}: partition drifted"
