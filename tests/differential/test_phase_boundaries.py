"""Phase-boundary differential tests: merge selections and kernels, bitwise.

Where ``test_cross_backend`` checks whole pipelines, these tests pin down
*where* equivalence holds: the raw merge proposals (including their ΔDL
floats, compared bitwise), every block-merge and MCMC boundary of a traced
run, and the batched merge kernel against its per-proposal reference — for
every candidate backend against the ``"dict"`` reference.
"""

import numpy as np
import pytest

from repro.blockmodel.blockmodel import Blockmodel
from repro.blockmodel.deltas import delta_dl_for_merge, delta_dl_for_merges
from repro.core.merges import propose_merges
from repro.testing.differential import (
    CANDIDATE_BACKENDS,
    assert_traces_identical,
    trace_phases,
)


class TestPhaseTraces:
    @pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
    def test_traces_identical_dense_graph(self, diff_graph_a, diff_config, backend):
        reference = trace_phases(diff_graph_a, diff_config.with_overrides(matrix_backend="dict"))
        candidate = trace_phases(diff_graph_a, diff_config.with_overrides(matrix_backend=backend))
        assert reference.snapshots, "trace must cover at least one cycle"
        assert_traces_identical(reference, candidate)

    @pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
    def test_traces_identical_sparse_graph(self, diff_graph_b, diff_config, backend):
        reference = trace_phases(diff_graph_b, diff_config.with_overrides(matrix_backend="dict"))
        candidate = trace_phases(diff_graph_b, diff_config.with_overrides(matrix_backend=backend))
        assert_traces_identical(reference, candidate)


class TestMergeSelections:
    @pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
    def test_proposals_identical_for_block_subsets(self, diff_graph_a, diff_config, backend):
        """EDiSt ranks propose for owned subsets; all backends must agree."""
        bm_dict = Blockmodel.from_graph(diff_graph_a, num_blocks=24, matrix_backend="dict")
        bm_cand = Blockmodel.from_graph(diff_graph_a, num_blocks=24, matrix_backend=backend)
        for rank, size in ((0, 3), (1, 3), (2, 3)):
            owned = range(rank, 24, size)
            p_dict = propose_merges(bm_dict, owned, diff_config, np.random.default_rng(rank))
            p_cand = propose_merges(bm_cand, owned, diff_config, np.random.default_rng(rank))
            # MergeProposal is a frozen dataclass: == compares (block, target,
            # delta_dl) exactly, i.e. the ΔDL floats bitwise.
            assert p_dict == p_cand

    @pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
    def test_batched_kernel_matches_scalar_bitwise(self, diff_graph_b, backend):
        bm_dict = Blockmodel.from_graph(diff_graph_b, num_blocks=20, matrix_backend="dict")
        bm_cand = Blockmodel.from_graph(diff_graph_b, num_blocks=20, matrix_backend=backend)
        rng = np.random.default_rng(9)
        from_blocks = rng.integers(0, 20, size=200)
        to_blocks = rng.integers(0, 20, size=200)
        batch = delta_dl_for_merges(bm_cand, from_blocks, to_blocks)
        batch_model = delta_dl_for_merges(bm_cand, from_blocks, to_blocks, include_model_term=True)
        for k in range(200):
            r, s = int(from_blocks[k]), int(to_blocks[k])
            scalar_dict = delta_dl_for_merge(bm_dict, r, s)
            scalar_cand = delta_dl_for_merge(bm_cand, r, s)
            assert batch[k] == scalar_dict == scalar_cand
            assert batch_model[k] == delta_dl_for_merge(bm_dict, r, s, include_model_term=True)

    def test_batched_kernel_requires_batched_backend(self, diff_graph_a):
        bm = Blockmodel.from_graph(diff_graph_a, num_blocks=4, matrix_backend="dict")
        with pytest.raises(TypeError):
            delta_dl_for_merges(bm, np.array([0]), np.array([1]))

    @pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
    def test_batched_kernel_self_merge_is_zero(self, diff_graph_a, backend):
        bm = Blockmodel.from_graph(diff_graph_a, num_blocks=6, matrix_backend=backend)
        deltas = delta_dl_for_merges(bm, np.array([2, 1, 3]), np.array([2, 1, 0]))
        assert deltas[0] == 0.0 and deltas[1] == 0.0
        assert deltas[2] == delta_dl_for_merge(bm, 3, 0)

    @pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
    def test_batched_kernel_empty_batch(self, diff_graph_a, backend):
        bm = Blockmodel.from_graph(diff_graph_a, num_blocks=6, matrix_backend=backend)
        assert delta_dl_for_merges(bm, np.empty(0, np.int64), np.empty(0, np.int64)).shape == (0,)


class TestBackendPlumbing:
    @pytest.mark.parametrize("backend", CANDIDATE_BACKENDS)
    def test_backend_survives_clone_paths(self, diff_graph_a, backend):
        """matrix_backend must survive copy / merges / rebuild round-trips —
        the clone paths the golden-ratio search restarts run through."""
        bm = Blockmodel.from_graph(diff_graph_a, num_blocks=12, matrix_backend=backend)
        assert bm.copy().matrix_backend == backend
        merge_target = np.arange(12)
        merge_target[11] = 0
        assert bm.apply_block_merges(merge_target).matrix_backend == backend
        clone = bm.copy()
        clone.refresh_derived_state()
        assert clone.matrix_backend == backend
        # check_consistency rebuilds internally with the model's own backend.
        clone.check_consistency()
