"""Full-pipeline differential tests: threaded vs multiprocess transports.

The acceptance criterion of the transport work: where the simulated MPI
ranks physically run must be a pure placement decision.  Under a fixed seed
EDiSt and DC-SBP must produce bit-identical partitions, description
lengths and per-cycle histories on the ``"threads"`` and ``"processes"``
transports, at 2 and 4 ranks — including runs that are cancelled mid-flight
by an observer, which exercises the lifecycle bridge (observer events and
stop decisions crossing the process boundary) at full fidelity.
"""

import pytest

from repro.core.context import RunContext, RunObserver
from repro.testing.differential import (
    ALL_TRANSPORTS,
    assert_all_transports_identical,
    run_dcsbp,
    run_edist,
    run_transports,
)


class TestEDiSt:
    @pytest.mark.parametrize("num_ranks", [2, 4], ids=lambda n: f"ranks{n}")
    def test_bit_identical(self, diff_graph_a, diff_config, num_ranks):
        results = run_transports(run_edist, diff_graph_a, diff_config, num_ranks=num_ranks)
        assert set(results) == set(ALL_TRANSPORTS)
        assert_all_transports_identical(results)

    def test_bit_identical_on_sparse_graph(self, diff_graph_b, diff_config):
        results = run_transports(run_edist, diff_graph_b, diff_config, num_ranks=2)
        assert_all_transports_identical(results)


class TestDCSBP:
    @pytest.mark.parametrize("num_ranks", [2, 4], ids=lambda n: f"ranks{n}")
    def test_bit_identical(self, diff_graph_a, diff_config, num_ranks):
        results = run_transports(run_dcsbp, diff_graph_a, diff_config, num_ranks=num_ranks)
        assert_all_transports_identical(results)


class _CancelAfterCycles(RunObserver):
    """Counts cycle events and cancels the run at the N-th."""

    def __init__(self, cancel_after: int) -> None:
        self.cancel_after = cancel_after
        self.cycle_events = 0

    def on_cycle(self, event) -> None:
        self.cycle_events += 1
        if self.cycle_events >= self.cancel_after:
            event.context.cancel()


class TestCancellationMidRun:
    """Observer-triggered cancellation must land at the same phase boundary.

    Events are emitted synchronously (for ``"processes"``, as round-trips
    through the lifecycle bridge) and stop decisions are rank-0 broadcasts,
    so a cancel injected at the N-th cycle event must stop both transports
    at exactly the same boundary with identical partial results.
    """

    @pytest.mark.parametrize("runner,cancel_after", [(run_edist, 2), (run_dcsbp, 1)])
    def test_same_boundary_and_identical_partial_results(
        self, diff_graph_a, diff_config, runner, cancel_after
    ):
        results = {}
        observers = {}
        for transport in ALL_TRANSPORTS:
            observer = _CancelAfterCycles(cancel_after)
            context = RunContext(observers=[observer])
            results[transport] = runner(
                diff_graph_a,
                diff_config.with_overrides(transport=transport),
                num_ranks=2,
                run_context=context,
            )
            observers[transport] = observer
            assert context.stop_reason == "cancelled"
        for transport, result in results.items():
            assert result.metadata.get("stopped") == "cancelled", transport
            assert observers[transport].cycle_events == cancel_after, transport
        assert_all_transports_identical(results)
