"""Old→new API boundary: the facade must be bit-identical to the legacy paths.

The acceptance bar for the ``repro.api`` redesign: under fixed seeds,
``partition(graph, strategy=s)`` reproduces the legacy entry points exactly
(assignments, description lengths, full history) for every strategy and
every registered storage backend, and the deprecated top-level shims route
through the facade without perturbing results.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.api import Partitioner, partition
from repro.core.dcsbp import divide_and_conquer_sbp
from repro.core.edist import edist
from repro.core.reference import reference_dcsbp
from repro.core.sbp import stochastic_block_partition
from repro.testing.differential import ALL_BACKENDS, assert_results_identical

#: (strategy name, legacy callable, needs ranks)
CASES = [
    ("sequential", lambda g, c: stochastic_block_partition(g, c), 1),
    ("dcsbp", lambda g, c: divide_and_conquer_sbp(g, 2, c), 2),
    ("edist", lambda g, c: edist(g, 2, c), 2),
    ("reference_dcsbp", lambda g, c: reference_dcsbp(g, 2, c), 2),
]


@pytest.mark.parametrize("strategy,legacy,num_ranks", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_facade_matches_legacy_entry_point(
    diff_graph_a, diff_config, strategy, legacy, num_ranks, backend
):
    config = diff_config.with_overrides(matrix_backend=backend)
    via_legacy = legacy(diff_graph_a, config)
    via_facade = partition(diff_graph_a, strategy=strategy, config=config, num_ranks=num_ranks)
    assert_results_identical(via_legacy, via_facade)


@pytest.mark.parametrize("strategy,legacy,num_ranks", CASES[:3], ids=[c[0] for c in CASES[:3]])
def test_facade_matches_legacy_on_sparse_graph(
    diff_graph_b, diff_config, strategy, legacy, num_ranks
):
    via_legacy = legacy(diff_graph_b, diff_config)
    via_facade = partition(diff_graph_b, strategy=strategy, config=diff_config, num_ranks=num_ranks)
    assert_results_identical(via_legacy, via_facade)


def test_deprecated_shims_match_facade(diff_graph_a, diff_config):
    """The top-level shims warn but produce bit-identical results."""
    shim_cases = [
        (lambda: repro.stochastic_block_partition(diff_graph_a, diff_config), "sequential", 1),
        (lambda: repro.divide_and_conquer_sbp(diff_graph_a, 2, diff_config), "dcsbp", 2),
        (lambda: repro.edist(diff_graph_a, 2, diff_config), "edist", 2),
    ]
    for shim, strategy, num_ranks in shim_cases:
        with pytest.warns(DeprecationWarning):
            via_shim = shim()
        via_facade = partition(
            diff_graph_a, strategy=strategy, config=diff_config, num_ranks=num_ranks
        )
        assert_results_identical(via_shim, via_facade)


def test_partitioner_and_handle_match_partition(diff_graph_a, diff_config):
    """Every dispatch route through the facade lands on the same result."""
    direct = partition(diff_graph_a, strategy="edist", config=diff_config, num_ranks=2)
    partitioner = Partitioner("edist", diff_config, num_ranks=2)
    via_run = partitioner.run(diff_graph_a)
    via_handle = partitioner.submit(diff_graph_a).result()
    assert_results_identical(direct, via_run)
    assert_results_identical(direct, via_handle)


def test_lifecycle_plumbing_does_not_perturb_legacy_results(diff_graph_a, diff_config):
    """A context with observers attached must not change the trajectory."""
    from repro.core.context import RunContext, RunObserver

    class Recording(RunObserver):
        def __init__(self):
            self.events = 0

        def on_cycle(self, event):
            self.events += 1

        def on_mcmc_sweep(self, event):
            self.events += 1

    observer = Recording()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        bare = stochastic_block_partition(diff_graph_a, diff_config)
    observed = partition(
        diff_graph_a, strategy="sequential", config=diff_config, observers=[observer]
    )
    assert observer.events > 0
    assert_results_identical(bare, observed)
    assert np.array_equal(bare.assignment, observed.assignment)
