"""Tests for the experiment harness: settings, runtime model, tables, experiments."""

import numpy as np
import pytest

from repro.core.dcsbp import divide_and_conquer_sbp
from repro.core.edist import edist
from repro.core.sbp import stochastic_block_partition
from repro.harness.experiments import (
    PAPER_BASELINE_NMI,
    run_algorithm,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.harness.runtime_model import RuntimeModelParams, modeled_runtime, speedup_series
from repro.harness.settings import ExperimentSettings
from repro.harness.tables import format_table, rows_to_csv, save_rows


class TestSettings:
    def test_quick_preset_defaults(self):
        settings = ExperimentSettings.quick()
        assert settings.mode == "quick"
        assert 1 in settings.rank_counts

    def test_full_preset_covers_all_sweep_graphs(self):
        settings = ExperimentSettings.full()
        assert len(settings.sweep_graph_ids) == 16
        assert max(settings.rank_counts) == 64

    def test_smoke_preset_is_tiny(self):
        settings = ExperimentSettings.smoke()
        assert settings.sweep_scale < ExperimentSettings.quick().sweep_scale

    def test_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MODE", "full")
        assert ExperimentSettings.from_environment().mode == "full"
        monkeypatch.setenv("REPRO_BENCH_MODE", "smoke")
        assert ExperimentSettings.from_environment().mode == "smoke"
        monkeypatch.delenv("REPRO_BENCH_MODE")
        assert ExperimentSettings.from_environment().mode == "quick"


class TestRuntimeModel:
    def test_sequential_model_matches_compute_phases(self, planted_graph, fast_config):
        result = stochastic_block_partition(planted_graph, fast_config)
        modeled = modeled_runtime(result)
        assert 0 < modeled <= result.runtime_seconds * 1.2

    def test_edist_model_shrinks_with_more_ranks(self, planted_graph, fast_config):
        one = edist(planted_graph, 1, fast_config)
        four = edist(planted_graph, 4, fast_config)
        assert modeled_runtime(four) < modeled_runtime(one) * 1.1

    def test_dcsbp_model_charges_serial_finetune(self, planted_graph, fast_config):
        result = divide_and_conquer_sbp(planted_graph, 4, fast_config)
        params = RuntimeModelParams()
        modeled = modeled_runtime(result, params)
        serial = result.phase_seconds.get("combine", 0.0) + result.phase_seconds.get("finetune", 0.0)
        assert modeled >= serial

    def test_intra_node_speedup_reduces_model(self, planted_graph, fast_config):
        result = stochastic_block_partition(planted_graph, fast_config)
        slow = modeled_runtime(result, RuntimeModelParams(intra_node_speedup=1.0))
        fast = modeled_runtime(result, RuntimeModelParams(intra_node_speedup=8.0))
        assert fast < slow

    def test_speedup_series_structure(self, planted_graph, fast_config):
        results = [edist(planted_graph, r, fast_config) for r in (1, 2)]
        rows = speedup_series(results, params=RuntimeModelParams(tasks_per_node=2))
        assert len(rows) == 2
        assert rows[0]["speedup_vs_baseline"] == pytest.approx(1.0)
        assert rows[1]["num_nodes"] == 1
        assert speedup_series([]) == []


class TestTables:
    def test_format_table_alignment_and_title(self):
        rows = [{"graph": "TTT33", "nmi": 0.95}, {"graph": "FFF150", "nmi": 0.5}]
        text = format_table(rows, title="Table VII")
        assert "Table VII" in text
        assert "TTT33" in text and "FFF150" in text
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_rows_to_csv_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = rows_to_csv(rows, tmp_path / "out.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert len(content) == 3

    def test_rows_to_csv_empty(self, tmp_path):
        path = rows_to_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""

    def test_save_rows_writes_csv_and_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        save_rows([{"x": 1}], "table_test")
        assert (tmp_path / "results" / "table_test.csv").exists()
        assert (tmp_path / "results" / "table_test.json").exists()


class TestExperiments:
    @pytest.fixture(scope="class")
    def smoke(self):
        return ExperimentSettings.smoke()

    def test_run_algorithm_dispatch(self, planted_graph, fast_config):
        assert run_algorithm("sbp", planted_graph, 1, fast_config).algorithm == "sbp"
        assert run_algorithm("edist", planted_graph, 2, fast_config).algorithm == "edist"
        assert run_algorithm("dcsbp", planted_graph, 2, fast_config).algorithm == "dcsbp"
        with pytest.raises(ValueError):
            run_algorithm("bogus", planted_graph, 2, fast_config)

    def test_single_rank_distributed_falls_back_to_sequential(self, planted_graph, fast_config):
        result = run_algorithm("dcsbp", planted_graph, 1, fast_config)
        assert result.algorithm == "sbp"

    def test_paper_reference_values_cover_all_sweep_graphs(self):
        assert len(PAPER_BASELINE_NMI) == 16

    def test_dataset_tables_report_paper_and_generated_columns(self, smoke):
        table2 = run_table2(smoke)
        assert len(table2) == 6
        assert {"paper_vertices", "generated_vertices"} <= set(table2[0])

        table3 = run_table3(smoke)
        assert len(table3) == 16
        assert any(row["graph"] == "FFF150" for row in table3)

        table4 = run_table4(smoke)
        assert {row["graph"] for row in table4} == {"1M", "2M", "4M"}

        table5 = run_table5(smoke)
        assert len(table5) == 5
        assert all(row["standin_vertices"] > 0 for row in table5)
