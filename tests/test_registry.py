"""The experiment run registry: RunRecord schema + JSONL store.

Covers the satellite requirements of the registry PR: to_dict/from_dict
identity (hand-written cases plus an optional-skip hypothesis property, the
``tests/test_backend_properties.py`` convention), rejection of unknown and
missing fields with errors that *name* the field, and JSONL append/read-back
across interleaved writers.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.config import SBPConfig
from repro.registry import (
    SCHEMA_VERSION,
    RunRecord,
    append_run,
    collect_provenance,
    config_fingerprint,
    latest_run,
    read_runs,
    run_path,
    summarize,
)


def make_record(**overrides) -> RunRecord:
    base = dict(
        experiment="backend_throughput",
        mode="smoke",
        wall_seconds=1.25,
        config=SBPConfig.fast(seed=7).to_dict(),
        preset="fast",
        seed=7,
        strategy="sequential",
        backend="csr",
        transport="threads",
        git_rev="deadbeef",
        git_dirty=False,
        hostname="testhost",
        phase_seconds={"block_merge": 0.5, "mcmc": 0.25},
        peak_rss_mb=128.5,
    )
    base.update(overrides)
    return RunRecord(**base)


# ----------------------------------------------------------------------
# Schema round-trip
# ----------------------------------------------------------------------
def test_to_dict_from_dict_identity():
    record = make_record()
    assert RunRecord.from_dict(record.to_dict()) == record


def test_to_dict_identity_with_optional_fields_none():
    record = make_record(preset=None, seed=None, strategy=None, backend=None, transport=None)
    assert RunRecord.from_dict(record.to_dict()) == record


def test_to_dict_is_json_serialisable():
    record = make_record()
    line = json.dumps(record.to_dict(), sort_keys=True)
    assert RunRecord.from_dict(json.loads(line)) == record


def test_to_dict_emits_every_field_and_schema_version():
    data = make_record().to_dict()
    assert data["schema_version"] == SCHEMA_VERSION
    # from_dict requires the full schema, so to_dict must emit it.
    assert RunRecord.from_dict(data) is not None


def test_to_dict_copies_are_independent():
    record = make_record()
    data = record.to_dict()
    data["config"]["seed"] = 999
    data["phase_seconds"]["mcmc"] = 99.0
    assert record.config["seed"] == 7
    assert record.phase_seconds["mcmc"] == 0.25


def test_default_timestamp_and_provenance_are_valid():
    # A record built the way bench_utils builds them must pass the schema.
    record = RunRecord(
        experiment="x", mode="quick", wall_seconds=0.1, **collect_provenance()
    )
    assert RunRecord.from_dict(record.to_dict()) == record


# ----------------------------------------------------------------------
# Rejection: unknown / missing fields, named in the error
# ----------------------------------------------------------------------
def test_from_dict_rejects_unknown_field_naming_it():
    data = make_record().to_dict()
    data["throughput"] = 3.0
    with pytest.raises(ValueError, match=r"unknown RunRecord field\(s\) \['throughput'\]"):
        RunRecord.from_dict(data)


def test_from_dict_rejects_missing_field_naming_it():
    data = make_record().to_dict()
    del data["git_rev"]
    with pytest.raises(ValueError, match=r"missing RunRecord field\(s\) \['git_rev'\]"):
        RunRecord.from_dict(data)


def test_from_dict_rejects_newer_schema_naming_the_field():
    data = make_record().to_dict()
    data["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema_version"):
        RunRecord.from_dict(data)


def test_from_dict_rejects_non_dict():
    with pytest.raises(ValueError, match="expects a dict"):
        RunRecord.from_dict([1, 2, 3])


@pytest.mark.parametrize(
    "overrides, field_name",
    [
        ({"experiment": ""}, "experiment"),
        ({"experiment": "a/b"}, "experiment"),
        ({"experiment": 7}, "experiment"),
        ({"mode": ""}, "mode"),
        ({"timestamp": "yesterday-ish"}, "timestamp"),
        ({"config": ["not", "a", "dict"]}, "config"),
        ({"preset": ""}, "preset"),
        ({"seed": "abc"}, "seed"),
        ({"strategy": 3}, "strategy"),
        ({"backend": ""}, "backend"),
        ({"transport": 1.5}, "transport"),
        ({"git_rev": ""}, "git_rev"),
        ({"git_dirty": "yes"}, "git_dirty"),
        ({"hostname": ""}, "hostname"),
        ({"phase_seconds": {"mcmc": -1.0}}, "phase_seconds"),
        ({"phase_seconds": {"": 1.0}}, "phase_seconds"),
        ({"phase_seconds": {"mcmc": float("nan")}}, "phase_seconds"),
        ({"peak_rss_mb": -1.0}, "peak_rss_mb"),
        ({"peak_rss_mb": float("inf")}, "peak_rss_mb"),
        ({"wall_seconds": 0.0}, "wall_seconds"),
        ({"wall_seconds": -2.0}, "wall_seconds"),
        ({"wall_seconds": "fast"}, "wall_seconds"),
        ({"schema_version": 0}, "schema_version"),
    ],
)
def test_validation_errors_name_the_field(overrides, field_name):
    with pytest.raises(ValueError, match=field_name):
        make_record(**overrides)


# ----------------------------------------------------------------------
# JSONL store: append / read-back / interleaved writers
# ----------------------------------------------------------------------
def test_append_and_read_back_preserves_order_and_content(tmp_path):
    records = [make_record(seed=i, wall_seconds=1.0 + i) for i in range(5)]
    for record in records:
        append_run(record, tmp_path)
    assert read_runs("backend_throughput", tmp_path) == records


def test_read_runs_missing_file_is_empty(tmp_path):
    assert read_runs("never_ran", tmp_path) == []
    assert latest_run("never_ran", tmp_path) is None


def test_read_runs_mode_filter_and_latest(tmp_path):
    append_run(make_record(mode="quick", wall_seconds=9.0), tmp_path)
    append_run(make_record(mode="smoke", wall_seconds=1.0), tmp_path)
    append_run(make_record(mode="smoke", wall_seconds=2.0), tmp_path)
    smoke = read_runs("backend_throughput", tmp_path, mode="smoke")
    assert [r.wall_seconds for r in smoke] == [1.0, 2.0]
    assert latest_run("backend_throughput", tmp_path, mode="smoke").wall_seconds == 2.0
    assert latest_run("backend_throughput", tmp_path, mode="quick").wall_seconds == 9.0


def test_read_runs_names_file_and_line_on_corruption(tmp_path):
    append_run(make_record(), tmp_path)
    path = run_path("backend_throughput", tmp_path)
    with open(path, "a") as fh:
        fh.write('{"not": "a run record"}\n')
    with pytest.raises(ValueError, match=rf"{path.name}:2"):
        read_runs("backend_throughput", tmp_path)


def test_append_interleaved_writers_round_trip(tmp_path):
    """Two writers alternating appends: the file carries both histories whole."""
    writer_a = [make_record(hostname="writer-a", seed=i, wall_seconds=1.0 + i) for i in range(4)]
    writer_b = [make_record(hostname="writer-b", seed=i, wall_seconds=2.0 + i) for i in range(4)]
    for a, b in zip(writer_a, writer_b):
        append_run(a, tmp_path)
        append_run(b, tmp_path)
    loaded = read_runs("backend_throughput", tmp_path)
    assert loaded[0::2] == writer_a
    assert loaded[1::2] == writer_b


def test_append_concurrent_threads_never_tear_lines(tmp_path):
    """Threaded writers: every line must parse and every record survive."""
    num_writers, per_writer = 4, 25

    def write(writer: int) -> None:
        for i in range(per_writer):
            append_run(make_record(hostname=f"w{writer}", seed=writer * per_writer + i), tmp_path)

    threads = [threading.Thread(target=write, args=(w,)) for w in range(num_writers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    loaded = read_runs("backend_throughput", tmp_path)  # raises on any torn line
    assert len(loaded) == num_writers * per_writer
    assert {r.seed for r in loaded} == set(range(num_writers * per_writer))


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def test_summarize_groups_by_comparable_config(tmp_path):
    for wall in (1.0, 3.0, 2.0):
        append_run(make_record(backend="csr", wall_seconds=wall), tmp_path)
    append_run(make_record(backend="sparse_csr", wall_seconds=10.0), tmp_path)
    rows = summarize("backend_throughput", tmp_path)
    assert len(rows) == 2
    csr = next(r for r in rows if r["backend"] == "csr")
    assert csr["runs"] == 3
    assert csr["wall_seconds_median"] == 2.0
    assert csr["wall_seconds_min"] == 1.0
    assert csr["wall_seconds_latest"] == 2.0
    sparse = next(r for r in rows if r["backend"] == "sparse_csr")
    assert sparse["runs"] == 1


def test_fingerprint_ignores_seed_and_provenance_but_not_config():
    base = make_record()
    assert config_fingerprint(base) == config_fingerprint(
        make_record(seed=999, git_rev="other", hostname="elsewhere", wall_seconds=42.0)
    )
    assert config_fingerprint(base) != config_fingerprint(make_record(backend="dict"))
    assert config_fingerprint(base) != config_fingerprint(make_record(mode="full"))


# ----------------------------------------------------------------------
# Property-based round-trip (hypothesis optional, like test_backend_properties)
# ----------------------------------------------------------------------
try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional dependency
    HAVE_HYPOTHESIS = False

if HAVE_HYPOTHESIS:
    _names = st.from_regex(r"[A-Za-z0-9][A-Za-z0-9._-]{0,20}", fullmatch=True)
    _opt_names = st.none() | st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)
    _walls = st.floats(min_value=1e-9, max_value=1e6, allow_nan=False, allow_infinity=False)
    _nonneg = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
    _config_values = st.none() | st.booleans() | st.integers(-10, 10) | _opt_names

    @given(
        experiment=_names,
        mode=st.sampled_from(["smoke", "quick", "full"]),
        wall_seconds=_walls,
        config=st.dictionaries(st.from_regex(r"[a-z_]{1,12}", fullmatch=True), _config_values, max_size=6),
        preset=_opt_names,
        seed=st.none() | st.integers(-(2**31), 2**31),
        strategy=_opt_names,
        backend=_opt_names,
        transport=_opt_names,
        git_dirty=st.booleans(),
        phase_seconds=st.dictionaries(st.from_regex(r"[a-z_]{1,12}", fullmatch=True), _nonneg, max_size=5),
        peak_rss_mb=_nonneg,
    )
    @settings(max_examples=80, deadline=None)
    def test_round_trip_identity_property(
        experiment, mode, wall_seconds, config, preset, seed, strategy,
        backend, transport, git_dirty, phase_seconds, peak_rss_mb,
    ):
        record = RunRecord(
            experiment=experiment,
            mode=mode,
            wall_seconds=wall_seconds,
            config=config,
            preset=preset,
            seed=seed,
            strategy=strategy,
            backend=backend,
            transport=transport,
            git_rev="deadbeef",
            git_dirty=git_dirty,
            hostname="host",
            phase_seconds=phase_seconds,
            peak_rss_mb=peak_rss_mb,
        )
        # Identity through to_dict AND through an actual JSON line.
        assert RunRecord.from_dict(record.to_dict()) == record
        assert RunRecord.from_dict(json.loads(json.dumps(record.to_dict()))) == record

else:  # pragma: no cover

    @pytest.mark.skip(reason="hypothesis not installed")
    def test_round_trip_identity_property():
        pass
