"""Tests for the divide-and-conquer distributed baseline (DC-SBP)."""

import numpy as np
import pytest

from repro.core.config import SBPConfig
from repro.core.dcsbp import PartialResult, divide_and_conquer_sbp, merge_partial_pair
from repro.core.reference import reference_dcsbp
from repro.evaluation import normalized_mutual_information


class TestPartialResult:
    def test_num_communities(self):
        partial = PartialResult(np.array([3, 5, 9]), np.array([0, 1, 1]))
        assert partial.num_communities == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PartialResult(np.array([0, 1]), np.array([0]))


class TestMergePartialPair:
    def test_merges_matching_communities(self, planted_graph, fast_config):
        truth = planted_graph.true_assignment
        half = planted_graph.num_vertices // 2
        first = PartialResult(np.arange(half), truth[:half])
        second = PartialResult(np.arange(half, planted_graph.num_vertices), truth[half:])
        merged = merge_partial_pair(planted_graph, first, second, fast_config)
        assert merged.vertices.shape[0] == planted_graph.num_vertices
        # The merged labelling should align with the planted truth.
        full = np.zeros(planted_graph.num_vertices, dtype=np.int64)
        full[merged.vertices] = merged.assignment
        assert normalized_mutual_information(truth, full) > 0.9
        assert merged.num_communities <= first.num_communities + second.num_communities

    def test_second_communities_absorbed_into_first(self, planted_graph, fast_config):
        truth = planted_graph.true_assignment
        half = planted_graph.num_vertices // 2
        first = PartialResult(np.arange(half), truth[:half])
        second = PartialResult(np.arange(half, planted_graph.num_vertices), truth[half:])
        merged = merge_partial_pair(planted_graph, first, second, fast_config)
        assert merged.num_communities <= first.num_communities

    def test_candidate_subsampling(self, planted_graph, rng):
        config = SBPConfig.fast(seed=1).with_overrides(dcsbp_merge_candidates=2)
        truth = planted_graph.true_assignment
        half = planted_graph.num_vertices // 2
        first = PartialResult(np.arange(half), truth[:half])
        second = PartialResult(np.arange(half, planted_graph.num_vertices), truth[half:])
        merged = merge_partial_pair(planted_graph, first, second, config, rng)
        assert merged.vertices.shape[0] == planted_graph.num_vertices


class TestDCSBPEndToEnd:
    def test_single_rank_equals_sequential_quality(self, planted_graph, fast_config):
        result = divide_and_conquer_sbp(planted_graph, 1, fast_config)
        assert result.nmi() > 0.9
        assert result.num_ranks == 1

    def test_two_ranks_retains_accuracy_on_dense_graph(self, planted_graph, fast_config):
        result = divide_and_conquer_sbp(planted_graph, 2, fast_config)
        assert result.nmi() > 0.7
        assert result.algorithm == "dcsbp"
        assert result.metadata["island_fraction"] < 0.1

    def test_many_ranks_degrade_accuracy(self, planted_graph, fast_config):
        few = divide_and_conquer_sbp(planted_graph, 2, fast_config)
        many = divide_and_conquer_sbp(planted_graph, 16, fast_config)
        assert many.nmi() <= few.nmi() + 0.05

    def test_sparse_graph_has_many_islands(self, sparse_graph, fast_config):
        result = divide_and_conquer_sbp(sparse_graph, 8, fast_config)
        assert result.metadata["island_fraction"] > 0.2

    def test_phase_timings_include_combine_and_finetune(self, planted_graph, fast_config):
        result = divide_and_conquer_sbp(planted_graph, 4, fast_config)
        assert "subgraph_sbp" in result.phase_seconds
        assert "combine" in result.phase_seconds
        assert "finetune" in result.phase_seconds
        assert len(result.metadata["per_rank_phase_seconds"]) == 4

    def test_assignment_covers_every_vertex(self, planted_graph, fast_config):
        result = divide_and_conquer_sbp(planted_graph, 4, fast_config)
        assert result.assignment.shape == (planted_graph.num_vertices,)
        assert result.assignment.min() >= 0

    def test_comm_stats_present(self, planted_graph, fast_config):
        result = divide_and_conquer_sbp(planted_graph, 4, fast_config)
        assert result.comm_stats is not None
        assert result.comm_stats.total_calls > 0

    def test_reference_dcsbp_label_and_quality(self, planted_graph, fast_config):
        result = reference_dcsbp(planted_graph, 2, fast_config)
        assert result.algorithm == "reference-dcsbp"
        assert result.nmi() > 0.5
