"""Tests for the scipy-free true-sparse (CSR/COO) blockmodel backend.

Covers the :class:`SparseCSRBlockMatrix` storage class (delta-buffer
semantics, compaction, clone independence, zero-weight rows), the batched
kernels running on it, and the headline capability: block counts beyond the
dense backend's ``MAX_DENSE_BLOCKS`` ceiling, including a full partition
run that the dense backend cannot even construct.
"""

import tracemalloc

import numpy as np
import pytest

from repro.api import partition
from repro.blockmodel.blockmodel import Blockmodel
from repro.blockmodel.csr_matrix import CSRBlockMatrix, MAX_DENSE_BLOCKS
from repro.blockmodel.deltas import delta_dl_for_move, delta_dl_for_moves
from repro.blockmodel.sparse_csr_matrix import SparseCSRBlockMatrix
from repro.blockmodel.sparse_matrix import SparseBlockMatrix
from repro.core.config import SBPConfig
from repro.core.proposals import hastings_correction, hastings_corrections
from repro.core.sbp import stochastic_block_partition
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def equiv_graph() -> Graph:
    """The seeded 200-vertex SBM graph used by the backend equivalence tests."""
    spec = DCSBMSpec(
        num_vertices=200,
        num_communities=4,
        degree_spec=DegreeSequenceSpec(exponent=3.0, min_degree=5, max_degree=25, duplicate=True),
        intra_inter_ratio=3.5,
        block_size_alpha=5.0,
        name="equiv-200",
    )
    return generate_dcsbm_graph(spec, seed=42)


def _ring_graph(num_vertices: int) -> Graph:
    """A directed ring: O(V) edges, so huge block counts stay cheap."""
    edges = [(v, (v + 1) % num_vertices) for v in range(num_vertices)]
    return Graph.from_edges(num_vertices, edges, name=f"ring-{num_vertices}")


class TestSparseCSRBlockMatrix:
    def test_scalar_api_matches_dict_backend(self):
        rng = np.random.default_rng(0)
        dense = rng.integers(0, 5, size=(6, 6))
        sparse = SparseCSRBlockMatrix.from_dense(dense)
        ref = SparseBlockMatrix.from_dense(dense)
        assert sparse.total() == ref.total()
        assert sparse.nnz() == ref.nnz()
        for i in range(6):
            assert sparse.row(i) == ref.row(i)
            assert sparse.col(i) == ref.col(i)
            assert sparse.row_sum(i) == ref.row_sum(i)
            assert sparse.col_sum(i) == ref.col_sum(i)
        assert np.array_equal(sparse.row_sums(), ref.row_sums())
        assert np.array_equal(sparse.col_sums(), ref.col_sums())
        assert sorted(sparse.entries()) == sorted(ref.entries())
        sparse.check_consistent()

    def test_cross_backend_equality(self):
        dense = np.array([[0, 2], [3, 1]])
        sparse = SparseCSRBlockMatrix.from_dense(dense)
        ref = SparseBlockMatrix.from_dense(dense)
        csr = CSRBlockMatrix.from_dense(dense)
        assert sparse == ref and ref == sparse
        assert sparse == csr and csr == sparse
        sparse.add(0, 0, 1)
        assert sparse != ref
        assert sparse != csr

    def test_nonzero_arrays_ordering_matches_other_backends(self):
        rng = np.random.default_rng(8)
        dense = rng.integers(0, 3, size=(9, 9))
        sparse = SparseCSRBlockMatrix.from_dense(dense)
        for other in (SparseBlockMatrix.from_dense(dense), CSRBlockMatrix.from_dense(dense)):
            i1, j1, v1 = sparse.nonzero_arrays()
            i2, j2, v2 = other.nonzero_arrays()
            assert np.array_equal(i1, i2) and np.array_equal(j1, j2) and np.array_equal(v1, v2)

    def test_delta_buffer_reads_before_compaction(self):
        m = SparseCSRBlockMatrix(4)
        m.add(0, 1, 4)
        m.add(1, 2, 7)
        m.add(0, 1, -4)  # entry returns to zero inside the buffer
        assert m.get(0, 1) == 0
        assert m.get(1, 2) == 7
        assert m.row(0) == {}
        assert m.row(1) == {2: 7}
        assert m.col(2) == {1: 7}
        assert m.row_sum(1) == 7 and m.col_sum(2) == 7
        cols, vals = m.row_entries(1)
        assert cols.tolist() == [2] and vals.tolist() == [7]
        m.check_consistent()

    def test_explicit_compaction_is_a_logical_noop(self):
        rng = np.random.default_rng(3)
        m = SparseCSRBlockMatrix(8)
        ref = SparseBlockMatrix(8)
        for _ in range(40):
            i, j, d = int(rng.integers(8)), int(rng.integers(8)), int(rng.integers(0, 4))
            m.add(i, j, d)
            ref.add(i, j, d)
        before = m.to_dense()
        m.compact()
        assert np.array_equal(m.to_dense(), before)
        assert m == ref
        m.check_consistent()

    def test_auto_compaction_mid_sweep_preserves_state(self):
        """Mutations past the buffer threshold trigger compaction invisibly."""
        m = SparseCSRBlockMatrix(40)
        ref = SparseBlockMatrix(40)
        rng = np.random.default_rng(5)
        compacted_at_least_once = False
        for step in range(500):
            i, j, d = int(rng.integers(40)), int(rng.integers(40)), int(rng.integers(1, 3))
            m.add(i, j, d)
            ref.add(i, j, d)
            if m._delta_count == 0 and step > 0:
                compacted_at_least_once = True
            if step % 97 == 0:
                assert m == ref  # reads mid-sweep see base + buffer merged
        assert compacted_at_least_once, "buffer never auto-compacted"
        m.check_consistent()
        assert m == ref

    def test_clone_then_mutate_independence(self):
        m = SparseCSRBlockMatrix(4)
        m.add(0, 1, 3)
        m.add(2, 3, 5)
        clone = m.copy()
        clone.add(0, 1, 4)
        clone.add(2, 3, -5)  # drop an entry on the clone only
        assert m.get(0, 1) == 3 and m.get(2, 3) == 5
        assert clone.get(0, 1) == 7 and clone.get(2, 3) == 0
        m.check_consistent()
        clone.check_consistent()
        # Mutating the original must not leak into the clone either.
        m.add(1, 1, 9)
        assert clone.get(1, 1) == 0

    def test_add_rejects_negative_total(self):
        m = SparseCSRBlockMatrix(2)
        m.add(0, 1, 2)
        with pytest.raises(ValueError):
            m.add(0, 1, -3)
        assert m.get(0, 1) == 2
        m.check_consistent()

    def test_add_many_rejects_negative_without_partial_application(self):
        m = SparseCSRBlockMatrix(2)
        m.add(0, 1, 2)
        with pytest.raises(ValueError):
            m.add_many(np.array([1, 0]), np.array([0, 1]), np.array([1, -5]))
        assert m.get(0, 1) == 2
        assert m.get(1, 0) == 0
        m.check_consistent()

    def test_out_of_range_reads_raise_instead_of_aliasing(self):
        """An out-of-range column must not alias onto another entry through
        the flattened row·B + col key."""
        m = SparseCSRBlockMatrix(2)
        m.add(1, 0, 7)
        m.compact()
        with pytest.raises(IndexError):
            m.get(0, 2)
        with pytest.raises(IndexError):
            m.get_many(np.array([0]), np.array([2]))
        with pytest.raises(IndexError):
            m.get_many(np.array([-1]), np.array([0]))

    def test_get_many_merges_buffered_deltas(self):
        m = SparseCSRBlockMatrix(4)
        m.add_many(np.array([0, 1, 0, 3]), np.array([1, 2, 1, 0]), np.array([2, 5, 3, 1]))
        assert m.get(0, 1) == 5  # duplicates accumulate
        gathered = m.get_many(np.array([0, 1, 0, 3, 2]), np.array([1, 2, 1, 0, 2]))
        assert gathered.tolist() == [5, 5, 5, 1, 0]
        m.compact()
        gathered2 = m.get_many(np.array([0, 1, 0, 3, 2]), np.array([1, 2, 1, 0, 2]))
        assert gathered2.tolist() == [5, 5, 5, 1, 0]

    def test_zero_weight_rows_after_merges(self, equiv_graph):
        """Merging every vertex out of a block leaves a structurally empty
        row/column whose views and marginals must all read as empty."""
        bm = Blockmodel.from_graph(equiv_graph, num_blocks=6, matrix_backend="sparse_csr")
        merge_target = np.arange(6)
        merge_target[5] = 0  # fold block 5 into block 0
        merged = bm.apply_block_merges(merge_target)
        assert merged.num_blocks == 5  # relabelled: the empty block is gone
        # Emptying a row in place (without relabelling) via moves:
        bm2 = Blockmodel.from_graph(equiv_graph, num_blocks=6, matrix_backend="sparse_csr")
        victims = np.flatnonzero(bm2.assignment == 5)
        for v in victims.tolist():
            bm2.move_vertex(int(v), 0)
        assert bm2.block_sizes[5] == 0
        assert bm2.matrix.row_sum(5) == 0 and bm2.matrix.col_sum(5) == 0
        assert bm2.matrix.row(5) == {} and bm2.matrix.col(5) == {}
        cols, vals = bm2.matrix.row_entries(5)
        assert cols.size == 0 and vals.size == 0
        bm2.matrix.compact()
        cols, vals = bm2.matrix.row_entries(5)
        assert cols.size == 0 and vals.size == 0
        bm2.check_consistency()

    def test_check_consistent_detects_corruption(self):
        m = SparseCSRBlockMatrix.from_dense(np.array([[0, 2], [1, 0]]))
        m.data[0] = 9  # corrupt behind the cached sums
        with pytest.raises(AssertionError):
            m.check_consistent()


class TestBeyondDenseLimit:
    def test_dense_backend_rejects_and_names_registry(self):
        """The dense over-limit error must point at the backend registry."""
        with pytest.raises(ValueError) as excinfo:
            CSRBlockMatrix(MAX_DENSE_BLOCKS + 1)
        message = str(excinfo.value)
        for backend in ("'dict'", "'csr'", "'sparse_csr'"):
            assert backend in message

    def test_sparse_accepts_block_counts_beyond_dense_limit(self):
        graph = _ring_graph(MAX_DENSE_BLOCKS + 8)
        with pytest.raises(ValueError):
            Blockmodel.from_graph(graph, matrix_backend="csr")
        bm = Blockmodel.from_graph(graph, matrix_backend="sparse_csr")
        assert bm.num_blocks == MAX_DENSE_BLOCKS + 8
        assert bm.matrix.total() == graph.num_edges
        assert bm.matrix_backend == "sparse_csr"

    def test_partition_run_beyond_dense_limit(self):
        """Acceptance: a partition run completes on a graph whose block count
        exceeds MAX_DENSE_BLOCKS, in far less memory than a dense B×B array
        (which would need ~8.7 GB here) would allow."""
        num_vertices = MAX_DENSE_BLOCKS + 232
        graph = _ring_graph(num_vertices)
        config = SBPConfig(
            matrix_backend="sparse_csr",
            merge_proposals_per_block=1,
            max_mcmc_iterations=1,
            mcmc_convergence_threshold=0.5,
            min_blocks=MAX_DENSE_BLOCKS,
            mcmc_variant="batch_gibbs",
            seed=3,
        )
        tracemalloc.start()
        try:
            result = partition(graph, strategy="sequential", config=config)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert result.blockmodel.matrix_backend == "sparse_csr"
        assert result.blockmodel.num_blocks >= 1
        assert len(result.history) >= 1
        dense_bytes = num_vertices * num_vertices * 8
        assert peak < dense_bytes / 8, (
            f"peak traced memory {peak / 1e6:.0f} MB is within 8x of a dense "
            f"B×B allocation — the run must not densify the block matrix"
        )


class TestBatchedKernelsOnSparse:
    def test_delta_dl_for_moves_matches_scalar(self, equiv_graph):
        bm_sparse = Blockmodel.from_graph(equiv_graph, num_blocks=12, matrix_backend="sparse_csr")
        bm_dict = Blockmodel.from_graph(equiv_graph, num_blocks=12, matrix_backend="dict")
        rng = np.random.default_rng(3)
        vertices = rng.integers(0, equiv_graph.num_vertices, size=80)
        targets = rng.integers(0, 12, size=80)
        batch = delta_dl_for_moves(bm_sparse, vertices, targets)
        for k, (v, t) in enumerate(zip(vertices.tolist(), targets.tolist())):
            scalar = delta_dl_for_move(bm_dict, v, t)
            assert batch.delta_dl[k] == pytest.approx(scalar.delta_dl, abs=1e-9)

    def test_hastings_corrections_match_scalar(self, equiv_graph):
        bm_sparse = Blockmodel.from_graph(equiv_graph, num_blocks=12, matrix_backend="sparse_csr")
        bm_dict = Blockmodel.from_graph(equiv_graph, num_blocks=12, matrix_backend="dict")
        rng = np.random.default_rng(4)
        vertices = rng.integers(0, equiv_graph.num_vertices, size=80)
        targets = rng.integers(0, 12, size=80)
        batch = delta_dl_for_moves(bm_sparse, vertices, targets)
        corrections = hastings_corrections(bm_sparse, batch)
        for k, (v, t) in enumerate(zip(vertices.tolist(), targets.tolist())):
            move = delta_dl_for_move(bm_dict, v, t)
            if move.from_block == move.to_block:
                assert corrections[k] == 1.0
                continue
            scalar = hastings_correction(bm_dict, move.counts, move.from_block, move.to_block)
            assert corrections[k] == pytest.approx(scalar, abs=1e-9)

    def test_kernels_see_buffered_mutations(self, equiv_graph):
        """The batched kernels must read through the COO delta buffer: moving
        vertices (buffered writes) then scoring must match a compacted clone."""
        bm = Blockmodel.from_graph(equiv_graph, num_blocks=10, matrix_backend="sparse_csr")
        rng = np.random.default_rng(6)
        for _ in range(10):
            bm.move_vertex(int(rng.integers(equiv_graph.num_vertices)), int(rng.integers(10)))
        compacted = bm.copy()  # copy() compacts
        assert compacted.matrix._delta_count == 0
        vertices = rng.integers(0, equiv_graph.num_vertices, size=40)
        targets = rng.integers(0, 10, size=40)
        live = delta_dl_for_moves(bm, vertices, targets)
        clean = delta_dl_for_moves(compacted, vertices, targets)
        assert np.array_equal(live.delta_dl, clean.delta_dl)


class TestSparseBackendEquivalence:
    @pytest.mark.parametrize("variant", ["metropolis_hastings", "batch_gibbs", "hybrid"])
    def test_identical_partitions_and_dl(self, equiv_graph, variant):
        config = SBPConfig.fast(seed=7).with_overrides(mcmc_variant=variant)
        result_dict = stochastic_block_partition(
            equiv_graph, config.with_overrides(matrix_backend="dict")
        )
        result_sparse = stochastic_block_partition(
            equiv_graph, config.with_overrides(matrix_backend="sparse_csr")
        )
        assert np.array_equal(
            result_dict.blockmodel.assignment, result_sparse.blockmodel.assignment
        )
        assert result_sparse.description_length == result_dict.description_length
        assert result_sparse.blockmodel.matrix_backend == "sparse_csr"

    def test_large_graph_preset_selects_sparse_backend(self):
        config = SBPConfig.from_preset("large_graph")
        assert config.matrix_backend == "sparse_csr"
