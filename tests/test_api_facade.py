"""The unified public API: registry, facade dispatch, config resolution, shims."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.api import (
    Partitioner,
    Strategy,
    available_strategies,
    get_strategy,
    partition,
    register_strategy,
    resolve_config,
    unregister_strategy,
)
from repro.core.config import MCMCVariant, MatrixBackend, SBPConfig
from repro.core.sbp import stochastic_block_partition


class TestRegistry:
    def test_builtin_strategies_registered(self):
        assert available_strategies() == ["dcsbp", "edist", "reference_dcsbp", "sequential"]

    def test_aliases_resolve_to_canonical(self):
        assert get_strategy("sbp") is get_strategy("sequential")
        assert get_strategy("reference-dcsbp") is get_strategy("reference_dcsbp")

    def test_strategy_instances_satisfy_protocol(self):
        for name in available_strategies():
            assert isinstance(get_strategy(name), Strategy)

    def test_unknown_strategy_lists_registry_keys(self):
        with pytest.raises(ValueError) as excinfo:
            get_strategy("does-not-exist")
        message = str(excinfo.value)
        for name in available_strategies():
            assert name in message

    def test_strategy_instance_passthrough(self):
        strategy = get_strategy("sequential")
        assert get_strategy(strategy) is strategy

    def test_non_string_non_strategy_rejected(self):
        with pytest.raises(TypeError):
            get_strategy(42)

    def test_register_custom_strategy(self, planted_graph, fast_config):
        @register_strategy("always-three", aliases=("a3",))
        class AlwaysThree:
            name = "always-three"

            def run(self, graph, config, *, num_ranks=1, run_context=None):
                return stochastic_block_partition(graph, config, run_context=run_context)

        try:
            assert "always-three" in available_strategies()
            result = partition(planted_graph, strategy="a3", config=fast_config)
            assert result.num_communities >= 1
        finally:
            unregister_strategy("always-three")
        assert "always-three" not in available_strategies()
        with pytest.raises(ValueError):
            get_strategy("a3")

    def test_register_rejects_runless_objects(self):
        with pytest.raises(TypeError):
            register_strategy("broken")(object())


class TestConfigResolution:
    def test_none_is_paper_defaults(self):
        assert resolve_config(None) == SBPConfig()

    def test_preset_names(self):
        assert resolve_config("paper") == SBPConfig()
        assert resolve_config("fast") == SBPConfig.fast()

    def test_dict_round_trip(self, fast_config):
        assert resolve_config(fast_config.to_dict()) == fast_config

    def test_overrides_apply_last(self):
        config = resolve_config("fast", seed=1234, matrix_backend="csr")
        assert config.seed == 1234
        assert config.matrix_backend == "csr"
        assert config.max_mcmc_iterations == SBPConfig.fast().max_mcmc_iterations

    def test_unknown_preset_lists_presets(self):
        with pytest.raises(ValueError, match="fast"):
            resolve_config("warp-speed")

    def test_unknown_override_field_lists_fields(self):
        with pytest.raises(ValueError, match="matrix_backend"):
            resolve_config("fast", not_a_field=1)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_config(3.14)


class TestConfigValidationMessages:
    """Bad registry names must fail at construction, listing the valid keys."""

    def test_bad_mcmc_variant_lists_variants(self):
        with pytest.raises(ValueError) as excinfo:
            SBPConfig(mcmc_variant="gibbs-sampler-3000")
        message = str(excinfo.value)
        for variant in MCMCVariant.ALL:
            assert variant in message

    def test_bad_matrix_backend_lists_backends(self):
        with pytest.raises(ValueError) as excinfo:
            SBPConfig(matrix_backend="quantum")
        message = str(excinfo.value)
        for backend in MatrixBackend.ALL:
            assert backend in message

    def test_bad_strategy_fails_before_any_work(self, planted_graph):
        with pytest.raises(ValueError, match="available strategies"):
            partition(planted_graph, strategy="edist2")


class TestPartitionFacade:
    def test_default_strategy_is_sequential(self, planted_graph, fast_config):
        result = partition(planted_graph, config=fast_config)
        assert result.algorithm == "sbp"
        assert result.nmi() > 0.9

    @pytest.mark.parametrize("strategy", ["dcsbp", "edist"])
    def test_distributed_strategies_take_ranks(self, planted_graph, fast_config, strategy):
        result = partition(planted_graph, strategy=strategy, config=fast_config, num_ranks=2)
        assert result.num_ranks == 2
        assert result.algorithm == strategy

    def test_sequential_rejects_multiple_ranks(self, planted_graph, fast_config):
        with pytest.raises(ValueError, match="num_ranks"):
            partition(planted_graph, strategy="sequential", config=fast_config, num_ranks=4)

    def test_seed_override_reproducible(self, planted_graph):
        a = partition(planted_graph, config="fast", seed=99)
        b = partition(planted_graph, config="fast", seed=99)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.description_length == b.description_length

    def test_run_context_exclusive_with_observers(self, planted_graph, fast_config):
        from repro.core.context import RunContext, RunObserver

        with pytest.raises(ValueError, match="not both"):
            partition(
                planted_graph,
                config=fast_config,
                run_context=RunContext(),
                observers=[RunObserver()],
            )


class TestPartitioner:
    def test_run_matches_partition(self, planted_graph, fast_config):
        direct = partition(planted_graph, strategy="sequential", config=fast_config)
        via_partitioner = Partitioner("sequential", fast_config).run(planted_graph)
        assert np.array_equal(direct.assignment, via_partitioner.assignment)
        assert direct.description_length == via_partitioner.description_length

    def test_submit_returns_pending_handle(self, planted_graph, fast_config):
        handle = Partitioner("sequential", fast_config).submit(planted_graph)
        assert handle.status == "pending"
        assert not handle.done
        result = handle.result()
        assert handle.status == "completed"
        assert handle.done
        # Idempotent: a second call returns the same object.
        assert handle.result() is result

    def test_with_overrides_copies(self, fast_config):
        base = Partitioner("edist", fast_config, num_ranks=4)
        derived = base.with_overrides(seed=5)
        assert derived.num_ranks == 4
        assert derived.strategy is base.strategy
        assert derived.config.seed == 5
        assert base.config.seed == fast_config.seed


class TestDeprecatedShims:
    """The legacy entry points keep working but warn."""

    def test_stochastic_block_partition_warns_and_matches(self, planted_graph, fast_config):
        with pytest.warns(DeprecationWarning, match="partition"):
            legacy = repro.stochastic_block_partition(planted_graph, fast_config)
        modern = partition(planted_graph, strategy="sequential", config=fast_config)
        assert np.array_equal(legacy.assignment, modern.assignment)
        assert legacy.description_length == modern.description_length

    def test_divide_and_conquer_sbp_warns_and_matches(self, planted_graph, fast_config):
        with pytest.warns(DeprecationWarning, match="partition"):
            legacy = repro.divide_and_conquer_sbp(planted_graph, 2, fast_config)
        modern = partition(planted_graph, strategy="dcsbp", config=fast_config, num_ranks=2)
        assert np.array_equal(legacy.assignment, modern.assignment)
        assert legacy.description_length == modern.description_length

    def test_edist_warns_and_matches(self, planted_graph, fast_config):
        with pytest.warns(DeprecationWarning, match="partition"):
            legacy = repro.edist(planted_graph, 2, fast_config)
        modern = partition(planted_graph, strategy="edist", config=fast_config, num_ranks=2)
        assert np.array_equal(legacy.assignment, modern.assignment)
        assert legacy.description_length == modern.description_length

    def test_core_module_entry_points_do_not_warn(self, planted_graph, fast_config):
        # Internal callers (and this test-suite) import the drivers from
        # repro.core.*; only the top-level shims are deprecated.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            stochastic_block_partition(planted_graph, fast_config)


class TestHarnessDispatch:
    def test_run_algorithm_goes_through_registry(self, planted_graph, fast_config):
        from repro.harness.experiments import run_algorithm

        result = run_algorithm("sbp", planted_graph, 1, fast_config)
        assert result.algorithm == "sbp"
        with pytest.raises(ValueError, match="available strategies"):
            run_algorithm("not-an-algorithm", planted_graph, 1, fast_config)

    def test_run_algorithm_rank1_distributed_uses_sequential(self, planted_graph, fast_config):
        from repro.harness.experiments import run_algorithm

        result = run_algorithm("edist", planted_graph, 1, fast_config)
        assert result.num_ranks == 1
        assert result.algorithm == "sbp"
