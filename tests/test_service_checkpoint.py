"""Checkpointing: periodic atomic snapshots and kill-and-warm-resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Partitioner, partition
from repro.core.context import RunObserver
from repro.core.results import SBPResult
from repro.service import (
    CheckpointWriter,
    JobExecutor,
    JobState,
    WarmStartSequential,
    load_checkpoint,
    resume_strategy,
)


class CancelAfter(RunObserver):
    """Simulates a crash: stop the run after N agglomerative cycles."""

    def __init__(self, cycles: int):
        self.cycles = cycles
        self.seen = 0

    def on_cycle(self, event):
        self.seen += 1
        if self.seen >= self.cycles:
            event.context.cancel()


class TestCheckpointWriter:
    def test_cadence_validated(self, tmp_path):
        with pytest.raises(ValueError, match="cadence"):
            CheckpointWriter(tmp_path / "c.json", every=0)

    def test_writes_every_n_cycles(self, planted_graph, fast_config, tmp_path):
        path = tmp_path / "run.checkpoint.json"
        writer = CheckpointWriter(path, every=2)
        result = partition(planted_graph, config=fast_config, observers=[writer])
        cycles = sum(1 for r in result.history if r.iteration >= 1)
        assert writer.written == cycles // 2
        assert writer.skipped == 0
        assert writer.last_cycle == (cycles // 2) * 2
        assert path.exists()
        # Atomic replace never leaves a temp file behind.
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_checkpoint_is_a_wellformed_partial_result(self, planted_graph, fast_config, tmp_path):
        path = tmp_path / "run.checkpoint.json"
        partition(planted_graph, config=fast_config,
                  observers=[CheckpointWriter(path, every=1)])
        snapshot = load_checkpoint(path)
        assert snapshot.metadata["checkpoint"] is True
        assert snapshot.metadata["checkpoint_cycle"] >= 1
        assert snapshot.assignment.shape == (planted_graph.num_vertices,)
        assert np.isfinite(snapshot.description_length)
        # The embedded graph makes the file self-contained.
        assert snapshot.graph.num_vertices == planted_graph.num_vertices

    def test_round_trip_is_bit_exact(self, planted_graph, fast_config, tmp_path):
        path = tmp_path / "run.checkpoint.json"
        writer = CheckpointWriter(path, every=2)
        partition(planted_graph, config=fast_config, observers=[writer])
        first = load_checkpoint(path)
        second = SBPResult.load(path)
        assert first.description_length == second.description_length
        assert np.array_equal(first.assignment, second.assignment)

    def test_plain_result_rejected_as_checkpoint(self, planted_graph, fast_config, tmp_path):
        path = tmp_path / "plain.json"
        partition(planted_graph, config=fast_config).save(path)
        with pytest.raises(ValueError, match="not a checkpoint"):
            load_checkpoint(path)

    def test_event_without_blockmodel_is_counted_not_fatal(self, tmp_path):
        from repro.core.context import RunContext

        writer = CheckpointWriter(tmp_path / "c.json", every=1)
        context = RunContext(observers=[writer])
        context.emit_cycle(1, 10, 100.0, 1, 1)  # no blockmodel attached
        assert writer.skipped == 1
        assert writer.written == 0


class TestWarmResume:
    def test_kill_and_warm_resume_round_trip(self, planted_graph, fast_config, tmp_path):
        path = tmp_path / "killed.checkpoint.json"
        # "Crash" three cycles in, with a checkpoint from cycle 2 on disk.
        killed = partition(
            planted_graph, config=fast_config,
            observers=[CheckpointWriter(path, every=2), CancelAfter(3)],
        )
        assert killed.metadata["stopped"] == "cancelled"
        snapshot = load_checkpoint(path)
        assert snapshot.metadata["checkpoint_cycle"] == 2

        # Resume warm: the search restarts from the snapshot's granularity,
        # not from one-block-per-vertex, and runs to convergence.
        strategy = resume_strategy(path)
        handle = Partitioner(strategy, fast_config).submit(planted_graph)
        resumed = handle.run()
        assert handle.status == "completed"
        assert resumed.metadata["resumed_from_cycle"] == 2
        assert resumed.algorithm == "sbp-resumed"
        first_cycle_blocks = resumed.history[0].num_blocks
        assert first_cycle_blocks <= snapshot.num_communities
        # Finishing the search beats the mid-run snapshot it started from.
        assert resumed.description_length < snapshot.description_length

    def test_resume_through_executor(self, planted_graph, fast_config, tmp_path):
        path = tmp_path / "job.checkpoint.json"
        partition(planted_graph, config=fast_config,
                  observers=[CheckpointWriter(path, every=2), CancelAfter(3)])
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            job = executor.resume(path, config=fast_config)
            finished = executor.wait(job.job_id, timeout=120)
        assert finished.state == JobState.SUCCEEDED
        assert finished.resumed_from == str(path)
        assert finished.strategy == "sequential-warm"
        assert finished.result.metadata["resumed_from_cycle"] == 2

    def test_executor_writes_checkpoints_for_jobs(self, planted_graph, fast_config, tmp_path):
        with JobExecutor(max_workers=1, record_runs=False,
                         checkpoint_dir=tmp_path) as executor:
            job = executor.submit(planted_graph, config=fast_config,
                                  job_id="ckpt-job", checkpoint_every=1)
            executor.wait("ckpt-job", timeout=120)
        assert job.checkpoint_path == str(tmp_path / "ckpt-job.checkpoint.json")
        snapshot = load_checkpoint(job.checkpoint_path)
        assert snapshot.metadata["checkpoint"] is True

    def test_warm_start_rejects_multiple_ranks(self, planted_graph, fast_config, tmp_path):
        path = tmp_path / "c.json"
        partition(planted_graph, config=fast_config,
                  observers=[CheckpointWriter(path, every=1)])
        strategy = WarmStartSequential(load_checkpoint(path))
        with pytest.raises(ValueError, match="num_ranks"):
            strategy.run(planted_graph, fast_config, num_ranks=2)
