"""The serving layer's job model and executor: state machine, scheduling,
cancellation, timeouts, progress/ETA, and registry recording."""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.config import SBPConfig
from repro.core.context import RunContext
from repro.registry import read_runs
from repro.service import (
    SERVICE_EXPERIMENT,
    Job,
    JobExecutor,
    JobState,
    ProgressTracker,
    percentile,
    service_metrics,
)


def make_job(**overrides) -> Job:
    defaults = dict(job_id="j1", graph=SimpleNamespace(name="g", num_vertices=4, num_edges=3),
                    config=SBPConfig())
    defaults.update(overrides)
    return Job(**defaults)


# ----------------------------------------------------------------------
# State machine
# ----------------------------------------------------------------------
class TestJobStateMachine:
    def test_happy_path_stamps_timestamps(self):
        job = make_job()
        assert job.state == JobState.QUEUED and job.started_at is None
        job.advance(JobState.RUNNING)
        assert job.started_at is not None and job.finished_at is None
        job.advance(JobState.SUCCEEDED)
        assert job.finished_at is not None
        assert job.done
        assert job.latency_seconds >= 0.0

    def test_queue_time_cancellation_edge(self):
        job = make_job()
        job.advance(JobState.CANCELLED)
        assert job.done and job.started_at is None

    @pytest.mark.parametrize("terminal", JobState.TERMINAL)
    def test_terminal_states_absorb(self, terminal):
        job = make_job()
        if terminal != JobState.CANCELLED:
            job.advance(JobState.RUNNING)
        job.advance(terminal)
        for target in JobState.ALL:
            with pytest.raises(ValueError):
                job.advance(target)

    def test_illegal_transition_names_both_states(self):
        job = make_job()
        with pytest.raises(ValueError) as err:
            job.advance(JobState.SUCCEEDED)  # skipping "running"
        message = str(err.value)
        assert "'queued'" in message and "'succeeded'" in message
        assert "legal targets" in message

    def test_unknown_state_rejected_with_options(self):
        job = make_job()
        with pytest.raises(ValueError) as err:
            job.advance("paused")
        assert "'paused'" in str(err.value)
        assert "queued" in str(err.value)

    def test_construction_validation_names_fields(self):
        with pytest.raises(ValueError, match="job_id"):
            make_job(job_id="")
        with pytest.raises(ValueError, match="num_ranks"):
            make_job(num_ranks=0)
        with pytest.raises(ValueError, match="timeout"):
            make_job(timeout=-1.0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            make_job(checkpoint_every=-2)

    def test_to_dict_is_json_ready_status_view(self):
        import json

        job = make_job(priority=3, preset="fast")
        view = job.to_dict()
        json.dumps(view)
        assert view["state"] == "queued"
        assert view["priority"] == 3
        assert view["preset"] == "fast"
        assert "result" not in view


# ----------------------------------------------------------------------
# Scheduling: fake strategies exercising the pool without real SBP runs
# ----------------------------------------------------------------------
class GatedStrategy:
    """Blocks until released; records start order and peak concurrency."""

    name = "gated"

    def __init__(self, release: threading.Event, log: list, lock: threading.Lock,
                 counters: dict, tag: str):
        self.release = release
        self.log = log
        self.lock = lock
        self.counters = counters
        self.tag = tag

    def run(self, graph, config, *, num_ranks=1, run_context=None):
        with self.lock:
            self.log.append(self.tag)
            self.counters["running"] = self.counters.get("running", 0) + 1
            self.counters["peak"] = max(self.counters.get("peak", 0), self.counters["running"])
        assert self.release.wait(timeout=30), "gate never released"
        with self.lock:
            self.counters["running"] -= 1
        return SimpleNamespace(runtime_seconds=0.0, phase_seconds={})


class CooperativeStrategy:
    """Spins until the run context tells it to stop (cancel or timeout)."""

    name = "cooperative"

    def __init__(self, started: threading.Event):
        self.started = started

    def run(self, graph, config, *, num_ranks=1, run_context=None):
        context = run_context or RunContext()
        self.started.set()
        while not context.should_stop():
            time.sleep(0.005)
        return SimpleNamespace(runtime_seconds=0.0, phase_seconds={},
                               metadata={"stopped": context.stop_reason})


class TestExecutorScheduling:
    def test_priority_order_drains_highest_first(self, tiny_graph):
        release = threading.Event()
        log, lock, counters = [], threading.Lock(), {}

        def gated(tag):
            return GatedStrategy(release, log, lock, counters, tag)

        with JobExecutor(max_workers=1, record_runs=False) as executor:
            # Occupy the lone worker so the rest genuinely queue.
            executor.submit(tiny_graph, strategy=gated("blocker"), job_id="blocker")
            time.sleep(0.1)
            executor.submit(tiny_graph, strategy=gated("low"), job_id="low", priority=1)
            executor.submit(tiny_graph, strategy=gated("high"), job_id="high", priority=9)
            executor.submit(tiny_graph, strategy=gated("mid"), job_id="mid", priority=5)
            release.set()
            for job_id in ("blocker", "low", "high", "mid"):
                assert executor.wait(job_id, timeout=30).state == JobState.SUCCEEDED
        assert log == ["blocker", "high", "mid", "low"]

    def test_equal_priority_is_fifo(self, tiny_graph):
        release = threading.Event()
        log, lock, counters = [], threading.Lock(), {}
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            executor.submit(tiny_graph, strategy=GatedStrategy(release, log, lock, counters, "b"),
                            job_id="b")
            time.sleep(0.1)
            for tag in ("first", "second", "third"):
                executor.submit(tiny_graph,
                                strategy=GatedStrategy(release, log, lock, counters, tag),
                                job_id=tag)
            release.set()
            for job_id in ("b", "first", "second", "third"):
                executor.wait(job_id, timeout=30)
        assert log == ["b", "first", "second", "third"]

    def test_concurrency_limit_is_enforced(self, tiny_graph):
        release = threading.Event()
        log, lock, counters = [], threading.Lock(), {}
        with JobExecutor(max_workers=2, record_runs=False) as executor:
            for i in range(5):
                executor.submit(tiny_graph,
                                strategy=GatedStrategy(release, log, lock, counters, str(i)),
                                job_id=str(i))
            # Let the pool saturate before opening the gate.
            deadline = time.monotonic() + 5
            while counters.get("running", 0) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            release.set()
            for i in range(5):
                executor.wait(str(i), timeout=30)
        assert counters["peak"] == 2

    def test_duplicate_job_id_rejected(self, tiny_graph):
        release = threading.Event()
        release.set()
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            executor.submit(tiny_graph, job_id="same",
                            strategy=GatedStrategy(release, [], threading.Lock(), {}, "a"))
            with pytest.raises(ValueError, match="same"):
                executor.submit(tiny_graph, job_id="same",
                                strategy=GatedStrategy(release, [], threading.Lock(), {}, "b"))

    def test_submit_after_shutdown_rejected(self, tiny_graph):
        executor = JobExecutor(max_workers=1, record_runs=False)
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            executor.submit(tiny_graph)

    def test_unknown_job_raises_keyerror(self):
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            with pytest.raises(KeyError):
                executor.get("ghost")
            with pytest.raises(KeyError):
                executor.progress("ghost")
            with pytest.raises(KeyError):
                executor.cancel("ghost")
            with pytest.raises(KeyError):
                executor.wait("ghost")

    def test_wait_times_out(self, tiny_graph):
        release = threading.Event()
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            executor.submit(tiny_graph, job_id="slow",
                            strategy=GatedStrategy(release, [], threading.Lock(), {}, "slow"))
            with pytest.raises(TimeoutError):
                executor.wait("slow", timeout=0.05)
            release.set()
            executor.wait("slow", timeout=30)

    def test_checkpointing_requires_directory(self, tiny_graph):
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            with pytest.raises(ValueError, match="checkpoint_dir"):
                executor.submit(tiny_graph, checkpoint_every=2)


class TestExecutorCancellation:
    def test_queued_job_cancelled_immediately_and_never_runs(self, tiny_graph):
        release = threading.Event()
        log, lock, counters = [], threading.Lock(), {}
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            executor.submit(tiny_graph, job_id="blocker",
                            strategy=GatedStrategy(release, log, lock, counters, "blocker"))
            time.sleep(0.1)
            queued = executor.submit(tiny_graph, job_id="victim",
                                     strategy=GatedStrategy(release, log, lock, counters, "victim"))
            executor.cancel("victim")
            # Terminal before the worker ever saw it, started_at never set.
            assert queued.state == JobState.CANCELLED
            assert queued.started_at is None
            release.set()
            executor.wait("blocker", timeout=30)
        assert "victim" not in log

    def test_running_job_cancels_cooperatively(self, tiny_graph):
        started = threading.Event()
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            job = executor.submit(tiny_graph, strategy=CooperativeStrategy(started))
            assert started.wait(timeout=10)
            assert job.state == JobState.RUNNING
            executor.cancel(job.job_id)
            finished = executor.wait(job.job_id, timeout=30)
            assert finished.state == JobState.CANCELLED
            assert finished.result.metadata["stopped"] == "cancelled"

    def test_cancel_terminal_job_is_a_noop(self, tiny_graph, fast_config):
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            job = executor.submit(tiny_graph, config=fast_config)
            executor.wait(job.job_id, timeout=60)
            state_before = job.state
            executor.cancel(job.job_id)
            assert job.state == state_before

    def test_timeout_lands_in_timeout_state(self, tiny_graph):
        started = threading.Event()
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            job = executor.submit(tiny_graph, strategy=CooperativeStrategy(started), timeout=0.2)
            finished = executor.wait(job.job_id, timeout=30)
            assert finished.state == JobState.TIMEOUT
            assert finished.result.metadata["stopped"] == "timeout"

    def test_shutdown_cancel_pending_sweeps_the_queue(self, tiny_graph):
        release = threading.Event()
        log, lock, counters = [], threading.Lock(), {}
        executor = JobExecutor(max_workers=1, record_runs=False)
        executor.submit(tiny_graph, job_id="blocker",
                        strategy=GatedStrategy(release, log, lock, counters, "blocker"))
        time.sleep(0.1)
        queued = executor.submit(tiny_graph, job_id="queued",
                                 strategy=GatedStrategy(release, log, lock, counters, "queued"))
        release.set()
        executor.shutdown(wait=True, cancel_pending=True)
        assert queued.state == JobState.CANCELLED
        assert "queued" not in log

    def test_failed_strategy_lands_in_failed_with_error(self, tiny_graph):
        class Exploding:
            name = "exploding"

            def run(self, graph, config, *, num_ranks=1, run_context=None):
                raise RuntimeError("kaboom")

        with JobExecutor(max_workers=1, record_runs=False) as executor:
            job = executor.submit(tiny_graph, strategy=Exploding())
            finished = executor.wait(job.job_id, timeout=30)
            assert finished.state == JobState.FAILED
            assert "kaboom" in finished.error


# ----------------------------------------------------------------------
# Real runs end to end (sequential strategy, fast config)
# ----------------------------------------------------------------------
class TestExecutorRealRuns:
    def test_job_result_matches_direct_partition(self, planted_graph, fast_config):
        from repro.api import partition

        direct = partition(planted_graph, strategy="sequential", config=fast_config)
        with JobExecutor(max_workers=2, record_runs=False) as executor:
            job = executor.submit(planted_graph, config=fast_config)
            finished = executor.wait(job.job_id, timeout=120)
        assert finished.state == JobState.SUCCEEDED
        assert np.array_equal(finished.result.assignment, direct.assignment)
        assert finished.result.description_length == direct.description_length

    def test_progress_reaches_one_with_finite_eta_along_the_way(self, planted_graph, fast_config):
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            job = executor.submit(planted_graph, config=fast_config)
            executor.wait(job.job_id, timeout=120)
            snapshot = executor.progress(job.job_id)
        assert snapshot.progress == 1.0
        assert snapshot.eta_seconds == 0.0
        assert snapshot.cycles > 0
        assert snapshot.block_trajectory[0][1] >= snapshot.block_trajectory[-1][1]

    def test_finished_job_recorded_in_registry(self, planted_graph, fast_config, tmp_path):
        with JobExecutor(max_workers=1, registry_directory=tmp_path) as executor:
            job = executor.submit(planted_graph, config=fast_config, priority=2)
            executor.wait(job.job_id, timeout=120)
        runs = read_runs(SERVICE_EXPERIMENT, directory=tmp_path)
        assert len(runs) == 1
        assert runs[0].mode == "service"
        assert runs[0].strategy == "sequential"
        assert runs[0].wall_seconds > 0

    def test_preset_string_recorded_as_provenance(self, tiny_graph):
        with JobExecutor(max_workers=1, record_runs=False) as executor:
            job = executor.submit(tiny_graph, config="fast")
            executor.wait(job.job_id, timeout=60)
        assert job.preset == "fast"


# ----------------------------------------------------------------------
# Progress tracker + metrics units
# ----------------------------------------------------------------------
class TestProgressTracker:
    def test_monotone_progress_and_finite_eta(self):
        tracker = ProgressTracker(num_vertices=1000)
        context = RunContext(observers=[tracker])
        tracker.start()
        fractions = []
        blocks = 1000
        for cycle in range(1, 8):
            blocks = max(blocks // 2, 1)
            context.emit_cycle(cycle, blocks, 1e5 - cycle, 3, 10)
            snap = tracker.snapshot()
            fractions.append(snap.progress)
            assert snap.eta_seconds is not None and np.isfinite(snap.eta_seconds)
        assert fractions == sorted(fractions)
        assert 0.0 < fractions[-1] < 1.0

    def test_progress_never_decreases_when_blocks_rebound(self):
        # The bracket-refinement phase revisits larger block counts; the
        # reported fraction must not walk backwards.
        tracker = ProgressTracker(num_vertices=256)
        context = RunContext(observers=[tracker])
        tracker.start()
        for cycle, blocks in enumerate([128, 64, 32, 64, 48], start=1):
            context.emit_cycle(cycle, blocks, 1000.0 + cycle, 1, 1)
            if cycle == 3:
                high_water = tracker.snapshot().progress
        assert tracker.snapshot().progress >= high_water

    def test_overshoot_collapses_remaining_work(self):
        tracker = ProgressTracker(num_vertices=1024)
        context = RunContext(observers=[tracker])
        tracker.start()
        context.emit_cycle(1, 512, 100.0, 1, 1)
        before = tracker.snapshot().progress
        # DL turns upward: the search overshot the minimum.
        context.emit_cycle(2, 256, 150.0, 1, 1)
        after = tracker.snapshot().progress
        assert after > before

    def test_finish_snaps_to_complete(self):
        tracker = ProgressTracker(num_vertices=10)
        tracker.start()
        tracker.finish()
        snap = tracker.snapshot()
        assert snap.progress == 1.0 and snap.eta_seconds == 0.0 and snap.phase == "done"

    def test_snapshot_serializes(self):
        import json

        tracker = ProgressTracker(num_vertices=10)
        json.dumps(tracker.snapshot().to_dict())


class TestMetrics:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_service_metrics_counters(self):
        jobs = [make_job(job_id=f"j{i}") for i in range(4)]
        jobs[0].advance(JobState.RUNNING)
        jobs[1].advance(JobState.RUNNING)
        jobs[1].advance(JobState.SUCCEEDED)
        jobs[2].advance(JobState.CANCELLED)
        out = service_metrics(jobs)
        assert out["jobs_total"] == 4
        assert out["queue_depth"] == 1
        assert out["running"] == 1
        assert out["finished"] == 2
        assert out["states"][JobState.SUCCEEDED] == 1
        assert out["latency_seconds"]["count"] == 1.0
