"""Tests for the description length (Eq. 1-2) and its sparse delta forms."""

import math

import numpy as np
import pytest

from repro.blockmodel.blockmodel import Blockmodel
from repro.blockmodel.deltas import delta_dl_for_merge, delta_dl_for_move, delta_dl_for_move_slow
from repro.blockmodel.entropy import (
    description_length,
    h_function,
    log_likelihood,
    model_complexity_term,
    normalized_description_length,
    null_description_length,
)
from repro.core.reference import DenseBlockmodel, naive_description_length


class TestHFunction:
    def test_h_zero(self):
        assert h_function(0.0) == 0.0

    def test_h_known_value(self):
        # h(1) = 2 log 2 - 0 = 2 log 2
        assert h_function(1.0) == pytest.approx(2 * math.log(2))

    def test_h_monotone_increasing(self):
        xs = np.linspace(0.01, 10, 50)
        values = [h_function(x) for x in xs]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_h_negative_rejected(self):
        with pytest.raises(ValueError):
            h_function(-0.1)


class TestDescriptionLength:
    def test_matches_dense_oracle(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        dense = DenseBlockmodel(planted_graph, planted_graph.true_assignment)
        assert bm.description_length() == pytest.approx(dense.description_length(), rel=1e-12)

    def test_matches_dense_oracle_random_partition(self, hard_graph, rng):
        assignment = rng.integers(0, 7, hard_graph.num_vertices)
        bm = Blockmodel.from_assignment(hard_graph, assignment, num_blocks=7)
        dense = DenseBlockmodel(hard_graph, assignment, 7)
        assert bm.description_length() == pytest.approx(dense.description_length(), rel=1e-12)

    def test_likelihood_zero_for_single_block(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, np.zeros(planted_graph.num_vertices, dtype=int))
        # With one block, B_00 = E = d_out = d_in, so L = E log(1/E).
        expected = planted_graph.num_edges * math.log(1.0 / planted_graph.num_edges)
        assert log_likelihood(bm) == pytest.approx(expected)

    def test_model_term_grows_with_blocks(self, planted_graph):
        v, e = planted_graph.num_vertices, planted_graph.num_edges
        assert model_complexity_term(v, e, 10) > model_complexity_term(v, e, 2)

    def test_model_term_invalid_blocks(self):
        with pytest.raises(ValueError):
            model_complexity_term(10, 10, 0)

    def test_null_dl_matches_single_block_dl(self, planted_graph):
        single = Blockmodel.from_assignment(planted_graph, np.zeros(planted_graph.num_vertices, dtype=int))
        assert null_description_length(planted_graph) == pytest.approx(single.description_length())

    def test_normalized_dl_of_null_model_is_one(self, planted_graph):
        single = Blockmodel.from_assignment(planted_graph, np.zeros(planted_graph.num_vertices, dtype=int))
        assert normalized_description_length(single.description_length(), planted_graph) == pytest.approx(1.0)

    def test_truth_normalized_dl_below_one(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        assert bm.normalized_description_length() < 1.0

    def test_naive_description_length_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            naive_description_length(np.zeros((0, 0)), 0, 0)


class TestMoveDeltas:
    @pytest.mark.parametrize("num_blocks", [3, 8, 25])
    def test_fast_delta_matches_exact_recomputation(self, hard_graph, rng, num_blocks):
        assignment = rng.integers(0, num_blocks, hard_graph.num_vertices)
        bm = Blockmodel.from_assignment(hard_graph, assignment, num_blocks=num_blocks)
        for _ in range(20):
            v = int(rng.integers(hard_graph.num_vertices))
            target = int(rng.integers(num_blocks))
            predicted = delta_dl_for_move(bm, v, target).delta_dl
            trial = bm.copy()
            before = trial.description_length()
            trial.move_vertex(v, target)
            actual = trial.description_length() - before
            assert predicted == pytest.approx(actual, abs=1e-8)

    def test_fast_and_slow_paths_agree(self, planted_graph, rng):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        for _ in range(30):
            v = int(rng.integers(planted_graph.num_vertices))
            target = int(rng.integers(bm.num_blocks))
            fast = delta_dl_for_move(bm, v, target).delta_dl
            slow = delta_dl_for_move_slow(bm, v, target).delta_dl
            assert fast == pytest.approx(slow, abs=1e-9)

    def test_move_to_own_block_is_zero(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        move = delta_dl_for_move(bm, 0, bm.block_of(0))
        assert move.delta_dl == 0.0
        assert not move.is_improvement

    def test_moving_away_from_truth_is_not_improvement_on_average(self, planted_graph, rng):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        deltas = []
        for _ in range(40):
            v = int(rng.integers(planted_graph.num_vertices))
            current = bm.block_of(v)
            target = (current + 1 + int(rng.integers(bm.num_blocks - 1))) % bm.num_blocks
            deltas.append(delta_dl_for_move(bm, v, target).delta_dl)
        assert np.mean(deltas) > 0

    def test_move_delta_with_self_loops(self, rng):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(4, [(0, 0), (0, 1), (1, 2), (2, 3), (3, 0), (1, 1)])
        bm = Blockmodel.from_assignment(g, np.array([0, 0, 1, 1]))
        for v in range(4):
            for target in range(2):
                predicted = delta_dl_for_move(bm, v, target).delta_dl
                trial = bm.copy()
                before = trial.description_length()
                trial.move_vertex(v, target)
                assert predicted == pytest.approx(trial.description_length() - before, abs=1e-9)


class TestMergeDeltas:
    def test_merge_delta_matches_recomputation(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        for r in range(bm.num_blocks):
            for s in range(bm.num_blocks):
                if r == s:
                    continue
                predicted = delta_dl_for_merge(bm, r, s, include_model_term=True)
                target = np.arange(bm.num_blocks)
                target[r] = s
                merged = bm.apply_block_merges(target)
                actual = merged.description_length() - bm.description_length()
                assert predicted == pytest.approx(actual, abs=1e-8)

    def test_merge_into_self_is_zero(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        assert delta_dl_for_merge(bm, 1, 1) == 0.0

    def test_merging_true_blocks_increases_dl(self, planted_graph):
        bm = Blockmodel.from_assignment(planted_graph, planted_graph.true_assignment)
        assert delta_dl_for_merge(bm, 0, 1, include_model_term=True) > 0

    def test_merging_split_block_decreases_dl(self, planted_graph):
        # Split true block 0 into two artificial halves; re-merging them must help.
        assignment = planted_graph.true_assignment.copy()
        members = np.flatnonzero(assignment == 0)
        extra_label = assignment.max() + 1
        assignment[members[: members.size // 2]] = extra_label
        bm = Blockmodel.from_assignment(planted_graph, assignment, relabel=True)
        # Find the labels of the two halves after relabelling.
        half_a = bm.assignment[members[0]]
        half_b = bm.assignment[members[-1]]
        assert delta_dl_for_merge(bm, int(half_a), int(half_b), include_model_term=True) < 0

    def test_ranking_unaffected_by_model_term(self, hard_graph, rng):
        assignment = rng.integers(0, 10, hard_graph.num_vertices)
        bm = Blockmodel.from_assignment(hard_graph, assignment, num_blocks=10)
        pairs = [(0, 1), (0, 2), (3, 4), (5, 6), (7, 8)]
        without = [delta_dl_for_merge(bm, r, s) for r, s in pairs]
        with_term = [delta_dl_for_merge(bm, r, s, include_model_term=True) for r, s in pairs]
        assert np.argsort(without).tolist() == np.argsort(with_term).tolist()
