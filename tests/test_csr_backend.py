"""Tests for the CSR (dense numpy) blockmodel backend and vectorized kernels.

Covers the :class:`CSRBlockMatrix` storage class itself, the batched
``delta_dl_for_moves`` / ``hastings_corrections`` kernels against their
scalar references, and the headline guarantee: the ``"dict"`` and ``"csr"``
backends produce identical partitions and description lengths under a fixed
seed for every MCMC variant.
"""

import numpy as np
import pytest

from repro.blockmodel.blockmodel import Blockmodel
from repro.blockmodel.csr_matrix import CSRBlockMatrix, MAX_DENSE_BLOCKS
from repro.blockmodel.deltas import delta_dl_for_move, delta_dl_for_moves
from repro.blockmodel.sparse_matrix import SparseBlockMatrix
from repro.core.config import SBPConfig
from repro.core.hybrid_mcmc import batch_gibbs_sweep
from repro.core.proposals import (
    acceptance_probabilities,
    acceptance_probability,
    hastings_correction,
    hastings_corrections,
)
from repro.core.sbp import stochastic_block_partition
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph
from repro.graphs.graph import Graph


@pytest.fixture(scope="module")
def equiv_graph() -> Graph:
    """The seeded 200-vertex SBM graph used by the backend equivalence tests."""
    spec = DCSBMSpec(
        num_vertices=200,
        num_communities=4,
        degree_spec=DegreeSequenceSpec(exponent=3.0, min_degree=5, max_degree=25, duplicate=True),
        intra_inter_ratio=3.5,
        block_size_alpha=5.0,
        name="equiv-200",
    )
    return generate_dcsbm_graph(spec, seed=42)


class TestCSRBlockMatrix:
    def test_scalar_api_matches_dict_backend(self):
        rng = np.random.default_rng(0)
        dense = rng.integers(0, 5, size=(6, 6))
        csr = CSRBlockMatrix.from_dense(dense)
        ref = SparseBlockMatrix.from_dense(dense)
        assert csr.total() == ref.total()
        assert csr.nnz() == ref.nnz()
        for i in range(6):
            assert csr.row(i) == ref.row(i)
            assert csr.col(i) == ref.col(i)
            assert csr.row_sum(i) == ref.row_sum(i)
            assert csr.col_sum(i) == ref.col_sum(i)
        assert np.array_equal(csr.row_sums(), ref.row_sums())
        assert np.array_equal(csr.col_sums(), ref.col_sums())
        assert sorted(csr.entries()) == sorted(ref.entries())

    def test_cross_backend_equality(self):
        dense = np.array([[0, 2], [3, 1]])
        csr = CSRBlockMatrix.from_dense(dense)
        ref = SparseBlockMatrix.from_dense(dense)
        assert csr == ref
        assert ref == csr
        csr.add(0, 0, 1)
        assert csr != ref
        assert ref != csr

    def test_add_and_set_maintain_cached_sums(self):
        m = CSRBlockMatrix(3)
        m.add(0, 1, 4)
        m.set(1, 2, 7)
        m.add(0, 1, -4)  # entry returns to zero
        m.set(2, 2, 3)
        m.set(2, 2, 0)
        m.check_consistent()
        assert m.get(0, 1) == 0
        assert m.row_sum(1) == 7
        assert m.col_sum(2) == 7

    def test_add_rejects_negative_total(self):
        m = CSRBlockMatrix(2)
        m.add(0, 1, 2)
        with pytest.raises(ValueError):
            m.add(0, 1, -3)

    def test_get_many_add_many(self):
        m = CSRBlockMatrix(4)
        rows = np.array([0, 1, 0, 3])
        cols = np.array([1, 2, 1, 0])
        m.add_many(rows, cols, np.array([2, 5, 3, 1]))
        # duplicates accumulate: (0, 1) received 2 + 3
        assert m.get(0, 1) == 5
        assert np.array_equal(m.get_many(rows, cols), np.array([5, 5, 5, 1]))
        m.check_consistent()

    def test_add_many_rejects_negative_and_rolls_back(self):
        m = CSRBlockMatrix(2)
        m.add(0, 1, 2)
        with pytest.raises(ValueError):
            m.add_many(np.array([0, 1]), np.array([1, 0]), np.array([-5, 1]))
        assert m.get(0, 1) == 2
        assert m.get(1, 0) == 0
        m.check_consistent()

    def test_copy_is_independent(self):
        m = CSRBlockMatrix(2)
        m.add(0, 1, 1)
        c = m.copy()
        c.add(0, 1, 5)
        assert m.get(0, 1) == 1
        assert c.get(0, 1) == 6
        m.check_consistent()
        c.check_consistent()

    def test_check_consistent_detects_corruption(self):
        m = CSRBlockMatrix(2)
        m.add(0, 1, 1)
        m.data[0, 1] = 9  # corrupt behind the cached sums
        with pytest.raises(AssertionError):
            m.check_consistent()

    def test_size_guard(self):
        with pytest.raises(ValueError):
            CSRBlockMatrix(MAX_DENSE_BLOCKS + 1)
        with pytest.raises(ValueError):
            CSRBlockMatrix(-1)


class TestBlockmodelBackendWiring:
    def test_from_graph_backends_agree(self, equiv_graph):
        bm_dict = Blockmodel.from_graph(equiv_graph, num_blocks=16, matrix_backend="dict")
        bm_csr = Blockmodel.from_graph(equiv_graph, num_blocks=16, matrix_backend="csr")
        assert bm_dict.matrix_backend == "dict"
        assert bm_csr.matrix_backend == "csr"
        assert bm_csr.matrix == bm_dict.matrix
        bm_csr.check_consistency()

    def test_unknown_backend_rejected(self, equiv_graph):
        with pytest.raises(ValueError):
            Blockmodel.from_graph(equiv_graph, matrix_backend="cupy")
        with pytest.raises(ValueError):
            SBPConfig(matrix_backend="cupy")

    def test_move_vertex_matches_dict_backend(self, equiv_graph):
        bm_dict = Blockmodel.from_graph(equiv_graph, num_blocks=8, matrix_backend="dict")
        bm_csr = Blockmodel.from_graph(equiv_graph, num_blocks=8, matrix_backend="csr")
        rng = np.random.default_rng(1)
        for _ in range(50):
            v = int(rng.integers(equiv_graph.num_vertices))
            t = int(rng.integers(8))
            bm_dict.move_vertex(v, t)
            bm_csr.move_vertex(v, t)
        assert bm_csr.matrix == bm_dict.matrix
        bm_csr.check_consistency()

    def test_merges_preserve_backend(self, equiv_graph):
        bm = Blockmodel.from_graph(equiv_graph, num_blocks=8, matrix_backend="csr")
        merge_target = np.arange(8)
        merge_target[7] = 0
        merged = bm.apply_block_merges(merge_target)
        assert merged.matrix_backend == "csr"
        assert merged.num_blocks == 7
        merged.check_consistency()

    def test_refresh_derived_state(self, equiv_graph):
        bm = Blockmodel.from_graph(equiv_graph, num_blocks=8, matrix_backend="csr")
        rng = np.random.default_rng(2)
        bm.assignment[:] = rng.integers(0, 8, size=equiv_graph.num_vertices)
        bm.refresh_derived_state()
        bm.check_consistency()
        assert bm.matrix_backend == "csr"


class TestBatchedKernels:
    def test_delta_dl_for_moves_matches_scalar(self, equiv_graph):
        bm_csr = Blockmodel.from_graph(equiv_graph, num_blocks=12, matrix_backend="csr")
        bm_dict = Blockmodel.from_graph(equiv_graph, num_blocks=12, matrix_backend="dict")
        rng = np.random.default_rng(3)
        vertices = rng.integers(0, equiv_graph.num_vertices, size=80)
        targets = rng.integers(0, 12, size=80)
        batch = delta_dl_for_moves(bm_csr, vertices, targets)
        for k, (v, t) in enumerate(zip(vertices.tolist(), targets.tolist())):
            scalar = delta_dl_for_move(bm_dict, v, t)
            assert batch.delta_dl[k] == pytest.approx(scalar.delta_dl, abs=1e-9)

    def test_hastings_corrections_match_scalar(self, equiv_graph):
        bm_csr = Blockmodel.from_graph(equiv_graph, num_blocks=12, matrix_backend="csr")
        bm_dict = Blockmodel.from_graph(equiv_graph, num_blocks=12, matrix_backend="dict")
        rng = np.random.default_rng(4)
        vertices = rng.integers(0, equiv_graph.num_vertices, size=80)
        targets = rng.integers(0, 12, size=80)
        batch = delta_dl_for_moves(bm_csr, vertices, targets)
        corrections = hastings_corrections(bm_csr, batch)
        for k, (v, t) in enumerate(zip(vertices.tolist(), targets.tolist())):
            move = delta_dl_for_move(bm_dict, v, t)
            if move.from_block == move.to_block:
                assert corrections[k] == 1.0
                continue
            scalar = hastings_correction(bm_dict, move.counts, move.from_block, move.to_block)
            assert corrections[k] == pytest.approx(scalar, abs=1e-9)

    def test_batched_delta_matches_full_recomputation(self, equiv_graph):
        bm = Blockmodel.from_graph(equiv_graph, num_blocks=10, matrix_backend="csr")
        rng = np.random.default_rng(5)
        for _ in range(10):
            v = int(rng.integers(equiv_graph.num_vertices))
            t = int(rng.integers(10))
            if t == bm.block_of(v):
                continue
            batch = delta_dl_for_moves(bm, np.array([v]), np.array([t]))
            before = bm.description_length()
            after_model = bm.copy()
            after_model.move_vertex(v, t)
            assert batch.delta_dl[0] == pytest.approx(after_model.description_length() - before, abs=1e-7)

    def test_delta_dl_for_moves_requires_batched_backend(self, equiv_graph):
        bm = Blockmodel.from_graph(equiv_graph, num_blocks=4, matrix_backend="dict")
        with pytest.raises(TypeError):
            delta_dl_for_moves(bm, np.array([0]), np.array([1]))

    def test_acceptance_probabilities_match_scalar(self):
        class _Eval:
            def __init__(self, delta_dl, hastings):
                self.delta_dl = delta_dl
                self.hastings = hastings

        deltas = np.array([-5.0, 0.0, 2.5, -100.0, 300.0, 1.0])
        hastings = np.array([1.0, 0.5, 2.0, 1e-300, 1e-300, 0.0])
        batch = acceptance_probabilities(deltas, hastings, beta=3.0)
        for k in range(deltas.shape[0]):
            scalar = acceptance_probability(_Eval(float(deltas[k]), float(hastings[k])), beta=3.0)
            assert batch[k] == pytest.approx(scalar, rel=1e-12, abs=0.0)


class TestBackendEquivalence:
    @pytest.mark.parametrize("variant", ["metropolis_hastings", "batch_gibbs", "hybrid"])
    def test_identical_partitions_and_dl(self, equiv_graph, variant):
        """The acceptance criterion: both backends, same seed → same result."""
        config = SBPConfig.fast(seed=7).with_overrides(mcmc_variant=variant)
        result_dict = stochastic_block_partition(equiv_graph, config.with_overrides(matrix_backend="dict"))
        result_csr = stochastic_block_partition(equiv_graph, config.with_overrides(matrix_backend="csr"))
        assert np.array_equal(result_dict.blockmodel.assignment, result_csr.blockmodel.assignment)
        assert result_csr.description_length == pytest.approx(result_dict.description_length, rel=1e-9)
        assert result_csr.blockmodel.matrix_backend == "csr"

    def test_sweep_level_equivalence(self, equiv_graph):
        """A single batch-Gibbs sweep leaves both backends in identical states."""
        config = SBPConfig(seed=0, mcmc_variant="batch_gibbs")
        bm_dict = Blockmodel.from_graph(equiv_graph, num_blocks=16, matrix_backend="dict")
        bm_csr = Blockmodel.from_graph(equiv_graph, num_blocks=16, matrix_backend="csr")
        vertices = np.arange(equiv_graph.num_vertices)
        for sweep in range(3):
            res_dict = batch_gibbs_sweep(bm_dict, vertices, config, np.random.default_rng(sweep))
            res_csr = batch_gibbs_sweep(bm_csr, vertices, config, np.random.default_rng(sweep))
            assert res_dict.moves == res_csr.moves
            assert np.array_equal(bm_dict.assignment, bm_csr.assignment)
            assert bm_csr.matrix == bm_dict.matrix
        bm_csr.check_consistency()
