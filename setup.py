"""Setup shim.

All project metadata lives in ``pyproject.toml``; this file exists only so
that ``pip install -e .`` can fall back to the legacy ``setup.py develop``
code path on environments without the ``wheel`` package (such as the offline
environment this reproduction targets).
"""

from setuptools import setup

setup()
