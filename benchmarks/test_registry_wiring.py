"""Regression tests for the benchmark-harness ↔ registry wiring.

``bench_utils.run_once`` used to swallow the benchmark's extra-info channel;
it now attaches the full ``RunRecord`` via ``benchmark.extra_info`` AND
appends it to the experiment registry, both built from the *same*
pytest-benchmark measurement — these tests pin that the two reports carry
identical timings, that the experiment name derives from the module file
name, and that settings-driven metadata (mode/config/seed/backend/transport)
lands in the record without per-module edits.

The module rides in ``benchmarks/`` so it exercises the real fixture stack
(``benchmark`` + the session ``settings``/``report`` fixtures) under the
tier-1 run.
"""

from __future__ import annotations

import json

from bench_utils import REGISTRY_TOGGLE_ENV, run_once

from repro.core.config import SBPConfig
from repro.harness.settings import ExperimentSettings
from repro.registry import SCHEMA_VERSION, RunRecord, read_runs

EXPERIMENT = "registry_wiring"  # this module's file stem, minus "test_"


def _workload():
    """A tiny deterministic stand-in for a table/figure run."""
    total = sum(i * i for i in range(20_000))
    return [
        {"graph": "toy", "value": total, "seconds_block_merge": 0.25, "seconds_mcmc": 0.5},
        {"graph": "toy2", "value": total, "seconds_block_merge": 0.75},
    ]


def test_registry_and_benchmark_json_carry_identical_timings(benchmark, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path))
    rows = run_once(benchmark, _workload)
    assert len(rows) == 2

    runs = read_runs(EXPERIMENT, tmp_path)
    assert len(runs) == 1
    record = runs[0]

    # The registry record and the pytest-benchmark report are the same
    # measurement — not merely close, identical.
    assert record.wall_seconds == benchmark.stats.stats.min
    assert benchmark.extra_info["run_record"] == record.to_dict()
    assert benchmark.extra_info["registry_path"] == str(tmp_path / f"{EXPERIMENT}.jsonl")
    # And the extra_info payload survives JSON (what --benchmark-json emits).
    assert RunRecord.from_dict(json.loads(json.dumps(benchmark.extra_info["run_record"]))) == record

    assert record.experiment == EXPERIMENT
    assert record.schema_version == SCHEMA_VERSION
    # Per-phase timings harvested from the returned rows' seconds_* columns.
    assert record.phase_seconds == {"block_merge": 1.0, "mcmc": 0.5}
    assert record.peak_rss_mb > 0
    assert record.git_rev != ""


def test_settings_metadata_lands_in_the_record(benchmark, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path))
    bench_settings = ExperimentSettings(
        mode="smoke",
        config=SBPConfig.fast().with_overrides(matrix_backend="csr", transport="processes"),
    )

    def _with_settings(settings):
        assert settings.mode == "smoke"
        return [{"ok": True}]

    run_once(benchmark, _with_settings, bench_settings)
    (record,) = read_runs(EXPERIMENT, tmp_path)
    assert record.mode == "smoke"
    assert record.config == bench_settings.config.to_dict()
    assert record.seed == bench_settings.seed
    assert record.backend == "csr"
    assert record.transport == "processes"
    assert record.phase_seconds == {}


def test_harness_runs_record_a_real_phase_breakdown(benchmark, tmp_path, monkeypatch):
    """A workload dispatching through ``run_algorithm`` gets ``SBPResult``
    phase timings in its record even when its rows carry no ``seconds_*``
    columns — the registry phase log, not row harvesting, is the source."""
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path))
    from repro.graphs.generators.parameter_sweep import parameter_sweep_graph
    from repro.harness.experiments import run_algorithm

    bench_settings = ExperimentSettings.smoke()
    graph = parameter_sweep_graph("TTT33", scale=0.01, seed=bench_settings.seed)

    def _run(settings):
        result = run_algorithm("sequential", graph, 1, settings.config)
        return [{"graph": "TTT33", "num_blocks": result.num_communities}]  # no seconds_* columns

    run_once(benchmark, _run, bench_settings)
    (record,) = read_runs(EXPERIMENT, tmp_path)
    assert set(record.phase_seconds) >= {"block_merge", "mcmc"}
    assert all(v >= 0.0 for v in record.phase_seconds.values())
    assert sum(record.phase_seconds.values()) > 0.0


def test_matching_preset_is_named(benchmark, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path))
    bench_settings = ExperimentSettings(mode="smoke", config=SBPConfig.fast())
    run_once(benchmark, lambda settings: [], bench_settings)
    (record,) = read_runs(EXPERIMENT, tmp_path)
    assert record.preset == "fast"


def test_registry_toggle_disables_append_but_not_extra_info(benchmark, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path))
    monkeypatch.setenv(REGISTRY_TOGGLE_ENV, "0")
    run_once(benchmark, _workload)
    assert read_runs(EXPERIMENT, tmp_path) == []
    assert benchmark.extra_info["run_record"]["experiment"] == EXPERIMENT
    assert "registry_path" not in benchmark.extra_info


def test_runs_accumulate_across_invocations(benchmark, tmp_path, monkeypatch):
    """Append-only: a second benchmark session extends history, never resets it."""
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path))
    seeded = read_runs(EXPERIMENT, tmp_path)
    assert seeded == []
    run_once(benchmark, _workload)
    first = read_runs(EXPERIMENT, tmp_path)
    assert len(first) == 1
    # Simulate a later session by appending the same record again (run_once
    # can only drive one pytest-benchmark round per test).
    from repro.registry import append_run

    append_run(first[0], tmp_path)
    assert len(read_runs(EXPERIMENT, tmp_path)) == 2
