"""Table III — the 16 exhaustive parameter-sweep graphs.

Regenerates all 16 TTT33 … FFF150 graphs and verifies the structural contrast
the paper builds the sweep around: removing the minimum-degree truncation
makes the graphs dramatically sparser.
"""

import numpy as np
from bench_utils import run_once

from repro.harness.experiments import run_table3


def test_table3_parameter_sweep_graphs(benchmark, settings, report):
    rows = run_once(benchmark, run_table3, settings)
    report(rows, "table3_parameter_sweep_graphs", "Table III: exhaustive parameter-sweep graphs")
    assert len(rows) == 16

    dense = [r["average_degree"] for r in rows if r["truncated_min_degree"]]
    sparse = [r["average_degree"] for r in rows if not r["truncated_min_degree"]]
    assert np.mean(dense) > 2.5 * np.mean(sparse)
    # Both community-count variants are represented.
    assert {r["paper_communities"] for r in rows} == {33, 150}
