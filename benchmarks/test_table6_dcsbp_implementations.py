"""Table VI — reference (python-style) vs optimised DC-SBP implementations.

The paper compares the original batch-parallel python DC-SBP against its
optimised (sparse, hybrid-MCMC) C++ translation: comparable or better NMI at
a large runtime reduction.  Here the "reference" rows use the batch-Gibbs
MCMC engine and the "optimised" rows use the hybrid engine with the sparse
delta machinery; the same who-wins shape is expected.
"""

import math

from bench_utils import run_once

from repro.harness.experiments import run_table6


def test_table6_reference_vs_optimized_dcsbp(benchmark, settings, report):
    num_ranks = 8 if max(settings.rank_counts) >= 8 else max(settings.rank_counts)
    rows = run_once(benchmark, run_table6, settings, num_ranks)
    report(rows, "table6_dcsbp_implementations",
           "Table VI: reference vs optimised DC-SBP (NMI and measured runtime)")
    assert len(rows) == len(settings.challenge_graph_ids)
    for row in rows:
        # The optimised implementation must not lose accuracy relative to the
        # reference one (paper: NMI matches or improves on every graph).
        if not math.isnan(row["optimized_nmi"]) and not math.isnan(row["reference_nmi"]):
            assert row["optimized_nmi"] >= row["reference_nmi"] - 0.15
        assert row["optimized_runtime_s"] > 0 and row["reference_runtime_s"] > 0
