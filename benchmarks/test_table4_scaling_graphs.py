"""Table IV — synthetic strong-scaling graphs (1M / 2M / 4M family)."""

from bench_utils import run_once

from repro.harness.experiments import run_table4


def test_table4_scaling_graphs(benchmark, settings, report):
    rows = run_once(benchmark, run_table4, settings)
    report(rows, "table4_scaling_graphs", "Table IV: synthetic scaling graphs (paper vs regenerated)")
    assert {row["graph"] for row in rows} == {"1M", "2M", "4M"}
    by_id = {row["graph"]: row for row in rows}
    # The 1 : 2 : 4 size progression must be preserved at any scale factor.
    assert by_id["2M"]["generated_vertices"] > 1.5 * by_id["1M"]["generated_vertices"]
    assert by_id["4M"]["generated_vertices"] > 1.5 * by_id["2M"]["generated_vertices"]
