"""Fig. 4 — EDiSt strong scaling and NMI on the synthetic scaling graphs.

Expected shape from the paper: modelled runtime falls as ranks are added and
eventually levels off, the level-off point moves out for larger graphs, and
NMI stays flat at every rank count.
"""

from bench_utils import run_once

from repro.harness.experiments import run_fig4


def test_fig4_edist_strong_scaling(benchmark, settings, report):
    rows = run_once(benchmark, run_fig4, settings)
    report(rows, "fig4_strong_scaling", "Fig. 4: EDiSt strong scaling (modelled runtime) and NMI")
    assert len(rows) == len(settings.scaling_graph_ids) * len(settings.scaling_rank_counts)

    max_ranks = max(settings.scaling_rank_counts)
    for graph_id in settings.scaling_graph_ids:
        series = [r for r in rows if r["graph"] == graph_id]
        baseline = next(r for r in series if r["num_ranks"] == 1)
        at_scale = next(r for r in series if r["num_ranks"] == max_ranks)
        # Runtime improves with ranks (modestly at reduced scale, where the
        # replicated synchronisation work dominates; see Fig. 3 note) ...
        assert at_scale["modeled_seconds"] <= baseline["modeled_seconds"] * 1.05
        assert at_scale["speedup_vs_1_rank"] > 1.0
        # ... and accuracy does not degrade (the paper's NMI panel is flat).
        assert at_scale["nmi"] >= baseline["nmi"] - 0.15
