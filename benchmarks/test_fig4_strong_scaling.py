"""Fig. 4 — EDiSt strong scaling and NMI on the synthetic scaling graphs.

Expected shape from the paper: modelled runtime falls as ranks are added and
eventually levels off, the level-off point moves out for larger graphs, and
NMI stays flat at every rank count.

Alongside the modelled curve, the benchmark measures *real* wall-clock
scaling on this machine, once per transport (``curve="real-threads"`` /
``"real-processes"``); all curves merge into one
``results/fig4_strong_scaling.{csv,json}`` artifact.  The threads curve
documents the GIL floor; the processes curve is the one that can actually
bend downward — which is asserted when the runner has the cores for it.
"""

import os

from bench_utils import run_once

from repro.harness.experiments import run_fig4, run_fig4_real


def test_fig4_edist_strong_scaling(benchmark, settings, report):
    modeled = run_once(benchmark, run_fig4, settings)
    modeled = [{"curve": "modeled", **row} for row in modeled]
    real = run_fig4_real(settings)
    report(
        modeled + real,
        "fig4_strong_scaling",
        "Fig. 4: EDiSt strong scaling (modelled + real wall-clock) and NMI",
    )
    assert len(modeled) == len(settings.scaling_graph_ids) * len(settings.scaling_rank_counts)

    max_ranks = max(settings.scaling_rank_counts)
    for graph_id in settings.scaling_graph_ids:
        series = [r for r in modeled if r["graph"] == graph_id]
        baseline = next(r for r in series if r["num_ranks"] == 1)
        at_scale = next(r for r in series if r["num_ranks"] == max_ranks)
        # Runtime improves with ranks (modestly at reduced scale, where the
        # replicated synchronisation work dominates; see Fig. 3 note) ...
        assert at_scale["modeled_seconds"] <= baseline["modeled_seconds"] * 1.05
        assert at_scale["speedup_vs_1_rank"] > 1.0
        # ... and accuracy does not degrade (the paper's NMI panel is flat).
        assert at_scale["nmi"] >= baseline["nmi"] - 0.15

    # Both real curves cover the full rank grid, and the transports agree on
    # accuracy (they produce bit-identical partitions, so NMI must match).
    by_key = {(r["curve"], r["graph"], r["num_ranks"]): r for r in real}
    for graph_id in settings.scaling_graph_ids:
        for transport in ("threads", "processes"):
            curve = [r for r in real if r["curve"] == f"real-{transport}" and r["graph"] == graph_id]
            assert sorted(r["num_ranks"] for r in curve) == sorted(settings.scaling_rank_counts)
        for ranks in settings.scaling_rank_counts:
            threads_row = by_key[("real-threads", graph_id, ranks)]
            processes_row = by_key[("real-processes", graph_id, ranks)]
            assert threads_row["nmi"] == processes_row["nmi"]

    # Real CPU parallelism only shows up when there are real CPUs: on a
    # >= 4-core runner, 4 process ranks must beat 4 GIL-sharing thread ranks.
    if os.cpu_count() >= 4 and max_ranks >= 4:
        probe_ranks = max(r for r in settings.scaling_rank_counts if r <= os.cpu_count())
        graph_id = settings.scaling_graph_ids[0]
        threads_seconds = by_key[("real-threads", graph_id, probe_ranks)]["measured_seconds"]
        processes_seconds = by_key[("real-processes", graph_id, probe_ranks)]["measured_seconds"]
        assert processes_seconds * 1.5 < threads_seconds
