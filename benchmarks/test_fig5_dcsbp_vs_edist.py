"""Fig. 5 — best accuracy-preserving DC-SBP vs EDiSt on the scaling graphs.

The paper's argument: DC-SBP is capped at the largest rank count that still
converges (8-16 at full scale) and pays a serial partial-result combination
plus fine-tuning on the root rank, so EDiSt at its much larger usable rank
count ends up faster — up to 23.8× on the synthetic graphs and up to 38×
over single-node shared-memory SBP.  The reproduction checks the who-wins
relationships, not the absolute factors.
"""

from bench_utils import run_once

from repro.harness.experiments import run_fig5


def test_fig5_best_dcsbp_vs_edist(benchmark, settings, report):
    rows = run_once(benchmark, run_fig5, settings)
    report(rows, "fig5_dcsbp_vs_edist", "Fig. 5: best DC-SBP vs EDiSt (modelled runtimes)")
    assert len(rows) == len(settings.scaling_graph_ids)
    for row in rows:
        # EDiSt at the largest rank count is at least as fast as the
        # shared-memory baseline (far faster at paper scale; at reduced scale
        # the replicated synchronisation work narrows the gap).
        assert row["edist_speedup_vs_baseline"] > 0.95
        # EDiSt keeps the baseline accuracy.
        assert row["edist_nmi"] >= row["baseline_nmi"] - 0.15
        # DC-SBP's usable rank count is capped below the largest rank count.
        assert row["dcsbp_best_ranks"] < row["edist_ranks"]
