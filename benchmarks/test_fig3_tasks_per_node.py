"""Fig. 3 — EDiSt runtime with multiple MPI tasks per compute node.

The paper shows that co-locating MPI tasks on one node speeds EDiSt up
(9× at 16 tasks on the 1M graph) because the hybrid MCMC leaves long
single-threaded stretches that extra ranks can fill.  The reproduction runs
EDiSt with a growing task count and reports the modelled single-node runtime
(intra-node latency/bandwidth constants); the expected shape is a monotone
non-increasing runtime with diminishing returns, at unchanged accuracy.
"""

from bench_utils import run_once

from repro.harness.experiments import run_fig3


def test_fig3_tasks_per_node(benchmark, settings, report):
    rows = run_once(benchmark, run_fig3, settings)
    report(rows, "fig3_tasks_per_node", "Fig. 3: EDiSt with multiple MPI tasks on one node")
    assert len(rows) == len(settings.tasks_per_node)

    # Speedup from more tasks per node, with NMI unaffected.  At the reduced
    # benchmark scale the replicated synchronisation work (applying peer
    # moves, rebuilding after merges) is a much larger fraction of the total
    # than at paper scale, so the modelled gain is modest; the shape check is
    # that the maximum task count is no slower than a single task and NMI is
    # flat (the paper reports ~9x at 16 tasks on the full-size 1M graph).
    assert rows[-1]["modeled_seconds"] <= rows[0]["modeled_seconds"] * 1.05
    assert rows[-1]["speedup_vs_1_task"] > 1.0
    nmis = [r["nmi"] for r in rows]
    assert max(nmis) - min(nmis) < 0.2
