"""Fig. 2 — island-vertex fraction induced by round-robin distribution vs NMI.

The paper attributes DC-SBP's collapse to the fraction of vertices stranded
without edges by its data distribution: NMI is robust up to roughly 10 %
islands and collapses beyond ~20 %.  The benchmark reproduces the scatter
(one point per graph × rank count) and checks its monotone-degrading shape
via binned means.
"""

import numpy as np
from bench_utils import run_once

from repro.harness.experiments import run_fig2


def test_fig2_island_fraction_vs_nmi(benchmark, settings, report):
    rows = run_once(benchmark, run_fig2, settings)
    report(rows, "fig2_island_vertices", "Fig. 2: island-vertex fraction vs DC-SBP NMI")
    points = [r for r in rows if r["graph"] != "(binned)"]
    binned = [r for r in rows if r["graph"] == "(binned)"]
    assert points and binned

    # Low-island configurations must on average out-perform high-island ones.
    low = [p["nmi"] for p in points if p["island_fraction"] < 0.10]
    high = [p["nmi"] for p in points if p["island_fraction"] > 0.30]
    if low and high:
        assert np.mean(low) > np.mean(high)
    # Beyond ~30% islands the paper reports NMI resting at ~0.
    if high:
        assert np.mean(high) < 0.35
