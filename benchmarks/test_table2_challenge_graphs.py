"""Table II — Graph-Challenge-style dataset statistics.

Regenerates the six Graph Challenge graphs (scaled) with the from-scratch
DCSBM generator and reports their sizes next to the paper's values.
"""

from bench_utils import run_once

from repro.harness.experiments import run_table2


def test_table2_challenge_graphs(benchmark, settings, report):
    rows = run_once(benchmark, run_table2, settings)
    report(rows, "table2_challenge_graphs", "Table II: Graph Challenge datasets (paper vs regenerated)")
    assert len(rows) == 6
    # Structural sanity: every graph is generated, hard variants share sizes with easy ones.
    assert all(row["generated_edges"] > 0 for row in rows)
    easy = {r["graph"]: r for r in rows if r["difficulty"] == "easy"}
    hard = {r["graph"]: r for r in rows if r["difficulty"] == "hard"}
    assert len(easy) == 3 and len(hard) == 3
