"""Serving-layer throughput: jobs/second through the executor pool.

Submits a batch of identical partitioning jobs to a :class:`JobExecutor`
at concurrency 1, 2, and 4 and measures end-to-end drain time (submit to
last job terminal).  The jobs are real sequential SBP runs on a planted
DCSBM graph, so the numbers capture scheduler + lifecycle overhead on top
of genuine partitioning work — the figure a capacity plan for the HTTP
service would start from.  Results land in
``results/service_throughput.{csv,json}`` and the experiment registry
(``service_throughput``).
"""

import time

from bench_utils import run_once

from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph
from repro.service import JobExecutor, JobState

WORKER_COUNTS = (1, 2, 4)


def _bench_graph(settings):
    smoke = settings.mode == "smoke"
    spec = DCSBMSpec(
        num_vertices=80 if smoke else 160,
        num_communities=4,
        degree_spec=DegreeSequenceSpec(exponent=3.0, min_degree=8, max_degree=30, duplicate=True),
        intra_inter_ratio=4.0,
        block_size_alpha=10.0,
        name="service-bench",
    )
    return generate_dcsbm_graph(spec, seed=settings.seed)


def run_service_throughput(settings):
    graph = _bench_graph(settings)
    jobs_per_batch = 4 if settings.mode == "smoke" else 8
    rows = []
    for workers in WORKER_COUNTS:
        with JobExecutor(max_workers=workers, record_runs=False) as executor:
            start = time.perf_counter()
            submitted = [
                executor.submit(graph, config=settings.config, job_id=f"bench-{workers}-{i}")
                for i in range(jobs_per_batch)
            ]
            for job in submitted:
                executor.wait(job.job_id, timeout=600)
            elapsed = time.perf_counter() - start
            assert all(job.state == JobState.SUCCEEDED for job in submitted)
            latencies = [job.latency_seconds for job in submitted]
        rows.append(
            {
                "max_workers": workers,
                "jobs": jobs_per_batch,
                "seconds_total": round(elapsed, 3),
                "jobs_per_s": round(jobs_per_batch / elapsed, 2),
                "mean_latency_s": round(sum(latencies) / len(latencies), 3),
                "max_latency_s": round(max(latencies), 3),
            }
        )
    return rows


def test_service_throughput(benchmark, settings, report):
    rows = run_once(benchmark, run_service_throughput, settings)
    report(rows, "service_throughput", "Serving layer: jobs/second vs executor concurrency")
    assert len(rows) == len(WORKER_COUNTS)
    by_workers = {r["max_workers"]: r["jobs_per_s"] for r in rows}
    # More workers must not make the pool slower beyond noise: the point of
    # the concurrency limit is throughput, and a regression here means the
    # executor serialised something it shouldn't have.
    assert by_workers[2] >= by_workers[1] * 0.8, rows
    assert by_workers[4] >= by_workers[1] * 0.8, rows
