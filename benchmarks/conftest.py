"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one of the paper's tables or figures via
the harness in :mod:`repro.harness.experiments`.  The ``REPRO_BENCH_MODE``
environment variable selects the sizing preset (``quick`` by default,
``full`` for the closer-to-paper grids, ``smoke`` for CI).  Each benchmark
prints its regenerated table (run pytest with ``-s`` to see it inline) and
writes CSV/JSON copies under ``results/``.
"""

from __future__ import annotations

import pytest

from repro.harness.settings import ExperimentSettings
from repro.harness.tables import format_table, save_rows


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings.from_environment()


@pytest.fixture(scope="session")
def report():
    """Print a regenerated table and persist it under ``results/``."""

    def _report(rows, name: str, title: str) -> None:
        text = format_table(rows, title=title)
        print("\n" + text + "\n")
        save_rows(rows, name)

    return _report


