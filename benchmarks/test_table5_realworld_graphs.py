"""Table V — real-world graphs (structural stand-ins).

The SNAP/SuiteSparse datasets are not redistributable here; the stand-ins
must preserve the density ordering the paper relies on (Twitter densest).
"""

from bench_utils import run_once

from repro.harness.experiments import run_table5


def test_table5_realworld_standins(benchmark, settings, report):
    rows = run_once(benchmark, run_table5, settings)
    report(rows, "table5_realworld_graphs", "Table V: real-world graphs (paper vs stand-ins)")
    assert len(rows) == 5
    by_id = {row["graph"]: row for row in rows}
    # The Twitter graph has by far the highest average degree in the paper;
    # the stand-ins must reproduce that ordering (it drives Fig. 6's story).
    assert by_id["twitter"]["standin_avg_degree"] > by_id["amazon"]["standin_avg_degree"]
    assert by_id["twitter"]["standin_avg_degree"] > by_id["patents"]["standin_avg_degree"]
