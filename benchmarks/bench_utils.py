"""Shared helpers for the benchmark suite (imported by the test modules).

This lives outside ``conftest.py`` because test modules import it by module
name: bare ``conftest`` is ambiguous the moment another suite (``tests/``,
``tests/differential/``) has loaded its own ``conftest.py`` under that name
in a mixed-path pytest invocation.

Besides the single-round timing wrapper, :func:`run_once` is the hook that
wires **every** benchmark module into the experiment registry
(:mod:`repro.registry`): each invocation appends one schema-validated
``RunRecord`` to ``results/registry/<experiment>.jsonl`` and mirrors the same
fields into ``benchmark.extra_info``, so the pytest-benchmark JSON and the
registry always carry identical timings.  Individual benchmark modules need
no edits — the experiment name derives from the module file name
(``test_fig4_strong_scaling.py`` → ``fig4_strong_scaling``), and the sizing
mode / config / seed are picked up from the ``ExperimentSettings`` argument
when the benchmark passes one.

Set ``REPRO_REGISTRY=0`` to skip the registry append (the extra_info mirror
is still populated); ``REPRO_REGISTRY_DIR`` / ``REPRO_RESULTS_DIR`` relocate
the registry.
"""

from __future__ import annotations

import os
import time
import warnings
from pathlib import PurePosixPath
from typing import Dict, Optional

from repro.core.config import SBPConfig, available_presets, config_preset
from repro.harness.settings import ExperimentSettings
from repro.registry import (
    RunRecord,
    append_run,
    collect_provenance,
    drain_phase_log,
    peak_rss_mb,
    reset_phase_log,
)

#: Env var that disables the registry append (any of 0/false/off/no).
REGISTRY_TOGGLE_ENV = "REPRO_REGISTRY"
_FALSEY = ("0", "false", "off", "no")


def _registry_enabled() -> bool:
    return os.environ.get(REGISTRY_TOGGLE_ENV, "1").strip().lower() not in _FALSEY


def _experiment_name(benchmark) -> str:
    """Derive the registry key from the benchmark's module file name.

    ``benchmarks/test_fig4_strong_scaling.py::test_fig4_edist_strong_scaling``
    → ``fig4_strong_scaling`` — the same stem the module's ``results/``
    artifacts use, so registry history and CSV/JSON outputs line up.
    """
    fullname = getattr(benchmark, "fullname", "") or ""
    module_path = fullname.split("::", 1)[0]
    stem = PurePosixPath(module_path.replace("\\", "/")).name
    if stem.endswith(".py"):
        stem = stem[:-3]
    if stem.startswith("test_"):
        stem = stem[len("test_"):]
    return stem or getattr(benchmark, "name", "unknown_experiment")


def _find_settings(args, kwargs) -> Optional[ExperimentSettings]:
    for value in list(args) + list(kwargs.values()):
        if isinstance(value, ExperimentSettings):
            return value
    return None


def _preset_name(config: SBPConfig) -> Optional[str]:
    """The registered preset this config equals, if any (frozen-dataclass eq)."""
    for name in available_presets():
        try:
            if config_preset(name) == config:
                return name
        except ValueError:  # pragma: no cover - registry mutated mid-lookup
            continue
    return None


def _harvest_phase_seconds(result) -> Dict[str, float]:
    """Sum ``seconds_<phase>`` columns across any row dicts in ``result``.

    This is the fallback phase source for workloads that don't dispatch
    through the harness: any ``seconds_*`` columns the returned rows carry
    (the convention ``SBPResult.summary`` uses) are aggregated per phase.
    Harness-driven benchmarks get their breakdown from the registry phase
    log instead (see :func:`run_once`).
    """
    rows = []
    if isinstance(result, (list, tuple)):
        for item in result:
            if isinstance(item, dict):
                rows.append(item)
            elif isinstance(item, (list, tuple)):
                rows.extend(r for r in item if isinstance(r, dict))
    totals: Dict[str, float] = {}
    for row in rows:
        for key, value in row.items():
            if not (isinstance(key, str) and key.startswith("seconds_")):
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            phase = key[len("seconds_"):]
            totals[phase] = totals.get(phase, 0.0) + float(value)
    return totals


def _build_record(
    benchmark, result, args, kwargs, wall_seconds: float, executed_phases: Optional[Dict[str, float]] = None
) -> RunRecord:
    settings = _find_settings(args, kwargs)
    config: Optional[SBPConfig] = settings.config if settings is not None else None
    mode = settings.mode if settings is not None else os.environ.get("REPRO_BENCH_MODE", "quick").lower()
    seed = settings.seed if settings is not None else (config.seed if config is not None else None)
    provenance = collect_provenance()
    return RunRecord(
        experiment=_experiment_name(benchmark),
        mode=mode or "quick",
        wall_seconds=wall_seconds,
        config=config.to_dict() if config is not None else {},
        preset=_preset_name(config) if config is not None else None,
        seed=seed,
        strategy=kwargs.get("strategy") if isinstance(kwargs.get("strategy"), str) else None,
        backend=config.matrix_backend if config is not None else None,
        transport=config.transport if config is not None else None,
        git_rev=provenance["git_rev"],
        git_dirty=provenance["git_dirty"],
        hostname=provenance["hostname"],
        phase_seconds=executed_phases or _harvest_phase_seconds(result),
        peak_rss_mb=peak_rss_mb(),
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are far too slow for statistical repetition; a single
    round still records the wall-clock in the benchmark report.  The round's
    measured time is then recorded as a ``RunRecord`` in the experiment
    registry AND mirrored into ``benchmark.extra_info["run_record"]`` — both
    taken from the *same* pytest-benchmark measurement, so the two reports
    cannot disagree.

    Per-phase timings come from the registry phase log: ``run_algorithm``
    reports every fresh ``SBPResult.phase_seconds`` executed inside the
    measured call, so harness-driven benchmarks get a real breakdown.
    Workloads that bypass the harness fall back to summing any ``seconds_*``
    columns in the returned rows; micro-benchmarks with neither record an
    empty breakdown.
    """
    reset_phase_log()
    start = time.perf_counter()
    try:
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
    finally:
        executed_phases = drain_phase_log()
    fallback_wall = time.perf_counter() - start

    stats = getattr(benchmark, "stats", None)
    # The single round's measurement (min == max at rounds=1); fall back to
    # our own timer when the benchmark machinery is disabled.
    wall_seconds = stats.stats.min if stats is not None else fallback_wall

    try:
        record = _build_record(benchmark, result, args, kwargs, wall_seconds, executed_phases)
    except ValueError as exc:
        # Schema violations are bugs in the wiring, not in the benchmark —
        # surface them with the registry context attached.
        raise ValueError(f"benchmark registry record for {benchmark.fullname!r} is invalid: {exc}") from exc

    benchmark.extra_info["run_record"] = record.to_dict()
    if _registry_enabled():
        try:
            path = append_run(record)
        except OSError as exc:  # pragma: no cover - unwritable results dir
            warnings.warn(f"experiment registry append failed ({exc}); run not recorded")
        else:
            benchmark.extra_info["registry_path"] = str(path)
    return result
