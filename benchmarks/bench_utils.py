"""Shared helpers for the benchmark suite (imported by the test modules).

This lives outside ``conftest.py`` because test modules import it by module
name: bare ``conftest`` is ambiguous the moment another suite (``tests/``,
``tests/differential/``) has loaded its own ``conftest.py`` under that name
in a mixed-path pytest invocation.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are far too slow for statistical repetition; a single
    round still records the wall-clock in the benchmark report.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
