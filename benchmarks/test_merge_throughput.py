"""Microbenchmark: dict vs CSR backend block-merge-phase throughput.

Times one complete block-merge phase (propose x candidates per block, score,
select and apply) on a 1k-vertex DCSBM graph at several block counts.  The
CSR backend scores every candidate of the phase with one batched
``delta_dl_for_merges`` call and memoizes the proposal-walk cumulative sums;
the dict backend is the per-proposal reference path.  The acceptance bar for
the vectorized merge phase is a ≥3× speedup over the per-proposal path on
this graph; results land in ``results/merge_throughput.{csv,json}``.
"""

import time

import numpy as np
from bench_utils import run_once

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import SBPConfig
from repro.core.merges import block_merge_phase
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph

NUM_VERTICES = 1000
BLOCK_COUNTS = (64, 256, 1000)


def _merge_phase_seconds(graph, num_blocks: int, backend: str, config: SBPConfig) -> float:
    """Best-of-3 seconds per block-merge phase for one backend.

    Min-of-repeats timing so transient machine load can't deflate the
    measured speedup (the 3× assertion below gates the tier-1 run).
    """
    best = float("inf")
    for _ in range(3):
        blockmodel = Blockmodel.from_graph(graph, num_blocks=num_blocks, matrix_backend=backend)
        rng = np.random.default_rng(123)
        start = time.perf_counter()
        block_merge_phase(blockmodel, num_blocks // 2, config, rng)
        best = min(best, time.perf_counter() - start)
    return best


def run_merge_throughput():
    spec = DCSBMSpec(
        num_vertices=NUM_VERTICES,
        num_communities=8,
        degree_spec=DegreeSequenceSpec(exponent=3.0, min_degree=5, max_degree=40, duplicate=True),
        intra_inter_ratio=3.0,
        block_size_alpha=5.0,
        name="merge-bench-1k",
    )
    graph = generate_dcsbm_graph(spec, seed=11)
    config = SBPConfig(seed=0)
    rows = []
    for num_blocks in BLOCK_COUNTS:
        dict_seconds = _merge_phase_seconds(graph, num_blocks, "dict", config)
        csr_seconds = _merge_phase_seconds(graph, num_blocks, "csr", config)
        rows.append(
            {
                "num_vertices": NUM_VERTICES,
                "num_blocks": num_blocks,
                "merge_proposals_per_block": config.merge_proposals_per_block,
                "dict_ms_per_phase": round(dict_seconds * 1000, 2),
                "csr_ms_per_phase": round(csr_seconds * 1000, 2),
                "dict_phases_per_s": round(1.0 / dict_seconds, 2),
                "csr_phases_per_s": round(1.0 / csr_seconds, 2),
                "speedup": round(dict_seconds / csr_seconds, 2),
            }
        )
    return rows


def test_merge_throughput(benchmark, report):
    rows = run_once(benchmark, run_merge_throughput)
    report(rows, "merge_throughput", "CSR vs dict backend: block-merge phase throughput (1k vertices)")
    assert len(rows) == len(BLOCK_COUNTS)
    best_speedup = max(r["speedup"] for r in rows)
    # The vectorized merge phase must deliver ≥3× throughput on this graph.
    assert best_speedup >= 3.0, f"CSR merge-phase speedup {best_speedup}x below the 3x bar"
