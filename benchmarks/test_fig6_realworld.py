"""Fig. 6 — DC-SBP vs EDiSt on the real-world graph stand-ins.

Accuracy is measured with the normalised description length (lower is
better), exactly as in the paper, because these graphs have no ground truth.
Expected shape: EDiSt's DL_norm stays flat (and below 1.0) as ranks grow,
while DC-SBP's quality degrades once its subgraphs fragment; on the densest
graph (the Twitter stand-in) DC-SBP survives to more ranks, so the gap there
is smallest.
"""

from bench_utils import run_once

from repro.harness.experiments import run_fig6


def test_fig6_realworld_standins(benchmark, settings, report):
    rows = run_once(benchmark, run_fig6, settings)
    report(rows, "fig6_realworld", "Fig. 6: DC-SBP vs EDiSt on real-world stand-ins (DL_norm, lower is better)")
    max_ranks = max(settings.scaling_rank_counts)

    for graph_id in settings.realworld_graph_ids:
        edist_rows = [r for r in rows if r["graph"] == graph_id and r["algorithm"] == "edist"]
        dcsbp_rows = [r for r in rows if r["graph"] == graph_id and r["algorithm"] == "dcsbp"]
        assert edist_rows and dcsbp_rows

        edist_at_scale = next(r for r in edist_rows if r["num_ranks"] == max_ranks)
        dcsbp_at_scale = next(r for r in dcsbp_rows if r["num_ranks"] == max_ranks)
        edist_baseline = next(r for r in edist_rows if r["num_ranks"] == 1)

        # EDiSt finds real structure (DL_norm < 1) and keeps it at scale.
        assert edist_at_scale["dl_norm"] < 1.0
        assert edist_at_scale["dl_norm"] <= edist_baseline["dl_norm"] + 0.05
        # At the largest rank count EDiSt's model is at least as good as DC-SBP's.
        assert edist_at_scale["dl_norm"] <= dcsbp_at_scale["dl_norm"] + 0.02
