"""Microbenchmark: dict vs CSR blockmodel backend sweep throughput.

Times the batch-Gibbs MCMC sweep (the hot path the CSR backend vectorizes)
on a 1k-vertex DCSBM graph at several block counts and reports the sweep
throughput of both backends.  The acceptance bar for the vectorized backend
is a ≥3× speedup over the dict reference on this graph.
"""

import time

import numpy as np
from bench_utils import run_once

from repro.blockmodel.blockmodel import Blockmodel
from repro.core.config import SBPConfig
from repro.core.hybrid_mcmc import batch_gibbs_sweep
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph

NUM_VERTICES = 1000
BLOCK_COUNTS = (32, 128, 512)
SWEEPS = 3


def _sweep_seconds(graph, num_blocks: int, backend: str, config: SBPConfig) -> float:
    """Best-of-3 seconds per batch-Gibbs sweep for one backend.

    Min-of-repeats timing so transient machine load can't deflate the
    measured speedup (the 3× assertion below gates the tier-1 run).
    """
    vertices = np.arange(graph.num_vertices)
    best = float("inf")
    for repeat in range(3):
        blockmodel = Blockmodel.from_graph(graph, num_blocks=num_blocks, matrix_backend=backend)
        rng = np.random.default_rng(123)
        start = time.perf_counter()
        for _ in range(SWEEPS):
            batch_gibbs_sweep(blockmodel, vertices, config, rng)
        best = min(best, (time.perf_counter() - start) / SWEEPS)
    return best


def run_backend_throughput():
    spec = DCSBMSpec(
        num_vertices=NUM_VERTICES,
        num_communities=8,
        degree_spec=DegreeSequenceSpec(exponent=3.0, min_degree=5, max_degree=40, duplicate=True),
        intra_inter_ratio=3.0,
        block_size_alpha=5.0,
        name="backend-bench-1k",
    )
    graph = generate_dcsbm_graph(spec, seed=11)
    config = SBPConfig(seed=0, mcmc_variant="batch_gibbs")
    rows = []
    for num_blocks in BLOCK_COUNTS:
        dict_seconds = _sweep_seconds(graph, num_blocks, "dict", config)
        csr_seconds = _sweep_seconds(graph, num_blocks, "csr", config)
        rows.append(
            {
                "num_vertices": NUM_VERTICES,
                "num_blocks": num_blocks,
                "dict_ms_per_sweep": round(dict_seconds * 1000, 2),
                "csr_ms_per_sweep": round(csr_seconds * 1000, 2),
                "dict_sweeps_per_s": round(1.0 / dict_seconds, 2),
                "csr_sweeps_per_s": round(1.0 / csr_seconds, 2),
                "speedup": round(dict_seconds / csr_seconds, 2),
            }
        )
    return rows


def test_backend_throughput(benchmark, report):
    rows = run_once(benchmark, run_backend_throughput)
    report(rows, "backend_throughput", "CSR vs dict backend: batch-Gibbs sweep throughput (1k vertices)")
    assert len(rows) == len(BLOCK_COUNTS)
    best_speedup = max(r["speedup"] for r in rows)
    # The vectorized backend must deliver ≥3× sweep throughput on this graph.
    assert best_speedup >= 3.0, f"CSR backend speedup {best_speedup}x below the 3x bar"
